"""Heartbeat failure detection: membership the coordinator can trust.

The coordinator (PR 6) only learns a node is dead by burning a slice
of a live query's deadline on it; the paper's reconfigurable array
does better — a bad processing element is detected by the fabric and
routed around *before* the next wave starts.  :class:`HealthMonitor`
is that detector for the serving tier: a background loop heartbeats
every :class:`~repro.service.cluster.coordinator.NodeChannel` on a
jittered interval and maintains a **membership** set the coordinator
consults at fan-out, so a down node is skipped before scatter instead
of discovered per-request.

State machine, per node:

* **up** — the steady state.  Every heartbeat pings the channel;
  ``eject_after`` *consecutive* failed probes eject the node (it
  leaves the membership, fan-outs skip it, its span degrades
  coverage).
* **down** — probation.  Heartbeats keep probing (the half-open
  analogue of the circuit breaker): ``readmit_after`` consecutive
  successful probes readmit the node, and its channel breaker is
  reset so the first real query is not short-circuited by stale
  failure history.

Probes use :meth:`NodeChannel.ping`, which never raises — any fault
is simply a failed probe.  The heartbeat interval is jittered by a
seeded RNG so a fleet of monitors does not synchronize its probe
bursts against the same node.

All transitions are metered: ``healthd_nodes_up`` (gauge),
``healthd_ejections_total`` / ``healthd_readmissions_total``
(counters), ``healthd_probes_total``, and a
``healthd_recovery_seconds`` histogram measuring ejection-to-
readmission time — the serving tier's time-to-recovery.

The loop is a daemon thread (:meth:`start` / :meth:`stop`), but every
piece of logic lives in :meth:`tick` so tests drive the monitor
synchronously with a fake clock and fake channels — determinism
first, exactly like the chaos harness.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Mapping

from ...obs import NULL_OBS, Observability

__all__ = ["HealthMonitor", "NodeHealth"]


class NodeHealth:
    """One node's view from the monitor: state + streak counters."""

    __slots__ = (
        "node_id",
        "up",
        "consecutive_failures",
        "consecutive_successes",
        "down_since",
        "ejections",
        "readmissions",
    )

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.up = True
        self.consecutive_failures = 0
        self.consecutive_successes = 0
        self.down_since: float | None = None
        self.ejections = 0
        self.readmissions = 0

    def describe(self) -> dict[str, object]:
        return {
            "up": self.up,
            "consecutive_failures": self.consecutive_failures,
            "consecutive_successes": self.consecutive_successes,
            "ejections": self.ejections,
            "readmissions": self.readmissions,
        }


class HealthMonitor:
    """Jittered heartbeat loop over a coordinator's node channels.

    Parameters
    ----------
    channels:
        ``node_id -> channel`` mapping; each channel needs a
        non-raising ``ping() -> bool`` and (optionally) a ``breaker``
        attribute to reset on readmission.  The coordinator passes its
        live ``channels`` dict, so a reattached channel (new address
        after a respawn) is probed without re-registration.
    interval:
        Nominal seconds between heartbeats.
    jitter:
        Fraction of ``interval`` the seeded RNG may add or subtract
        per beat (``0.2`` → each beat lands within ±20%).
    eject_after:
        Consecutive failed probes before an up node is ejected.
    readmit_after:
        Consecutive successful probation probes before a down node is
        readmitted.
    on_transition:
        Optional ``(node_id, up) -> None`` hook fired after every
        membership change (outside the lock).
    clock / seed:
        Injectable monotonic clock and jitter seed, for deterministic
        tests.
    """

    def __init__(
        self,
        channels: Mapping[int, object],
        interval: float = 0.5,
        jitter: float = 0.2,
        eject_after: int = 3,
        readmit_after: int = 1,
        on_transition: Callable[[int, bool], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
        seed: int = 0,
        obs: Observability | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be within [0, 1), got {jitter}")
        if eject_after < 1:
            raise ValueError(f"eject_after must be positive, got {eject_after}")
        if readmit_after < 1:
            raise ValueError(f"readmit_after must be positive, got {readmit_after}")
        self.channels = channels
        self.interval = interval
        self.jitter = jitter
        self.eject_after = eject_after
        self.readmit_after = readmit_after
        self.on_transition = on_transition
        self._clock = clock
        self._rng = random.Random(f"healthd:{seed}")
        self.obs = obs if obs is not None else NULL_OBS
        self._lock = threading.Lock()
        self._health: dict[int, NodeHealth] = {
            node_id: NodeHealth(node_id) for node_id in channels
        }
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.ticks = 0
        registry = self.obs.registry
        self._g_up = registry.gauge(
            "healthd_nodes_up", "Nodes currently in the health monitor's membership"
        )
        self._g_node_up = {
            node_id: registry.gauge(
                f"healthd_node_up_{node_id}",
                f"Node {node_id} membership per the health monitor (1/0)",
            )
            for node_id in channels
        }
        self._m_probes = registry.counter(
            "healthd_probes_total", "Heartbeat probes issued"
        )
        self._m_ejections = registry.counter(
            "healthd_ejections_total", "Nodes ejected after consecutive probe failures"
        )
        self._m_readmissions = registry.counter(
            "healthd_readmissions_total", "Nodes readmitted after probation probes"
        )
        self._h_recovery = registry.histogram(
            "healthd_recovery_seconds", "Ejection-to-readmission time per incident"
        )
        self._g_up.set(len(self._health))
        for gauge in self._g_node_up.values():
            gauge.set(1.0)

    # ------------------------------------------------------------------
    # Membership queries (what the coordinator consults at fan-out)
    # ------------------------------------------------------------------
    def is_up(self, node_id: int) -> bool:
        """Membership verdict; nodes the monitor never met count as up."""
        with self._lock:
            health = self._health.get(node_id)
            return True if health is None else health.up

    @property
    def up_nodes(self) -> set[int]:
        with self._lock:
            return {nid for nid, h in self._health.items() if h.up}

    @property
    def down_nodes(self) -> set[int]:
        with self._lock:
            return {nid for nid, h in self._health.items() if not h.up}

    # ------------------------------------------------------------------
    # The heartbeat itself
    # ------------------------------------------------------------------
    def tick(self) -> dict[int, bool]:
        """Probe every channel once; apply transitions; return membership.

        This is the whole monitor — the background thread just calls
        it on a jittered cadence.  Probes run outside the lock (a ping
        is network IO); transitions are applied under it.
        """
        transitions: list[tuple[int, bool]] = []
        for node_id, channel in list(self.channels.items()):
            alive = bool(channel.ping())
            self._m_probes.inc()
            with self._lock:
                health = self._health.get(node_id)
                if health is None:  # channel added after construction
                    health = self._health[node_id] = NodeHealth(node_id)
                    self._g_node_up.setdefault(
                        node_id,
                        self.obs.registry.gauge(
                            f"healthd_node_up_{node_id}",
                            f"Node {node_id} membership per the health monitor (1/0)",
                        ),
                    )
                if health.up:
                    if alive:
                        health.consecutive_failures = 0
                    else:
                        health.consecutive_failures += 1
                        if health.consecutive_failures >= self.eject_after:
                            health.up = False
                            health.down_since = self._clock()
                            health.consecutive_successes = 0
                            health.ejections += 1
                            transitions.append((node_id, False))
                else:
                    if alive:
                        health.consecutive_successes += 1
                        if health.consecutive_successes >= self.readmit_after:
                            health.up = True
                            health.consecutive_failures = 0
                            health.readmissions += 1
                            if health.down_since is not None:
                                self._h_recovery.observe(
                                    self._clock() - health.down_since
                                )
                            health.down_since = None
                            transitions.append((node_id, True))
                    else:
                        health.consecutive_successes = 0
        self.ticks += 1
        for node_id, up in transitions:
            self._apply_transition(node_id, up)
        with self._lock:
            membership = {nid: h.up for nid, h in self._health.items()}
        self._g_up.set(sum(membership.values()))
        return membership

    def _apply_transition(self, node_id: int, up: bool) -> None:
        gauge = self._g_node_up.get(node_id)
        if gauge is not None:
            gauge.set(1.0 if up else 0.0)
        if up:
            self._m_readmissions.inc()
            self.obs.log.info("healthd.readmitted", node=node_id)
            # Stale failure history must not short-circuit the first
            # real query after a heal: close the channel's breaker.
            channel = self.channels.get(node_id)
            breaker = getattr(channel, "breaker", None)
            if breaker is not None:
                breaker.record_success()
        else:
            self._m_ejections.inc()
            self.obs.log.warning("healthd.ejected", node=node_id)
        if self.on_transition is not None:
            self.on_transition(node_id, up)

    # ------------------------------------------------------------------
    # Background loop
    # ------------------------------------------------------------------
    def _next_beat(self) -> float:
        """The next sleep: ``interval`` jittered by the seeded RNG."""
        if self.jitter == 0.0:
            return self.interval
        return self.interval * (1.0 + self.jitter * (2.0 * self._rng.random() - 1.0))

    def start(self) -> "HealthMonitor":
        if self._thread is not None:
            return self
        self._stop.clear()

        def _loop() -> None:
            while not self._stop.wait(self._next_beat()):
                try:
                    self.tick()
                except Exception as exc:  # noqa: BLE001 - the monitor must survive
                    self.obs.log.error("healthd.tick-failed", error=str(exc))

        self._thread = threading.Thread(
            target=_loop, name="repro-healthd", daemon=True
        )
        self._thread.start()
        self.obs.log.info(
            "healthd.started", nodes=len(self._health), interval=self.interval
        )
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=10)
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def describe(self) -> dict[str, object]:
        with self._lock:
            nodes = {str(nid): h.describe() for nid, h in self._health.items()}
            up = sum(1 for h in self._health.values() if h.up)
        return {
            "running": self.running,
            "interval": self.interval,
            "eject_after": self.eject_after,
            "readmit_after": self.readmit_after,
            "ticks": self.ticks,
            "nodes_up": up,
            "nodes": nodes,
        }

    def __enter__(self) -> "HealthMonitor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
