"""Cluster topology: which node owns which slice of the database.

The paper partitions the comparison across processing elements so each
holds only a fraction of the problem in its reduced memory space; at
service scale the same move splits a :class:`~repro.service.index.
DatabaseIndex` across N shard *nodes*, each a full
:class:`~repro.service.net.TcpSearchServer` over its own sub-index.

The split is :func:`repro.parallel.sharding.even_spans` over the
**global record order** — contiguous spans, node 0 first.  Contiguity
is what makes the coordinator's merge bit-identical to a single-node
ranking: the repo-wide tie-break is ascending global record index, and
with contiguous ascending spans, ``(-score, node_rank, within-node
order)`` *is* ``(-score, global_index)`` (see
:mod:`repro.service.cluster.merge`).

A :class:`ClusterTopology` is the deployable description: one
:class:`NodeSpec` per node with its record span, its primary address
and any replica addresses.  It round-trips through a JSON manifest so
``repro cluster partition`` / ``serve`` / ``query`` can hand off.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Sequence

from ...align.scoring import decode
from ...io.atomic import atomic_write
from ...parallel.sharding import even_spans
from ..index import DEFAULT_SHARD_BP, DatabaseIndex

__all__ = ["NodeSpec", "ClusterTopology", "partition_index"]


@dataclass(frozen=True)
class NodeSpec:
    """One shard node: a contiguous record span behind an address.

    ``start``/``stop`` delimit the node's half-open global record span
    (``even_spans`` output).  An **empty span** (``start == stop``) is
    legal — more nodes than records — and such a node owns zero
    records: it is never queried and can never degrade coverage.

    ``address`` is ``host:port`` (may be empty before the node is
    bound); ``replicas`` are addresses serving the *same* span, used
    for hedged reads and failover.  ``index_path`` optionally records
    where the node's sub-index file lives (the ``partition`` CLI
    writes it so ``serve`` can find it).
    """

    node_id: int
    start: int
    stop: int
    address: str = ""
    replicas: tuple[str, ...] = ()
    index_path: str = ""

    @property
    def records(self) -> int:
        return self.stop - self.start

    @property
    def empty(self) -> bool:
        return self.stop <= self.start

    def with_address(self, address: str, replicas: Sequence[str] = ()) -> "NodeSpec":
        return replace(self, address=address, replicas=tuple(replicas))


@dataclass(frozen=True)
class ClusterTopology:
    """An ordered set of :class:`NodeSpec` covering the whole database.

    ``version`` is the *source* index's content hash: every node must
    be a partition of that exact database or the coordinator's merged
    ranking would silently mix generations.
    """

    nodes: tuple[NodeSpec, ...]
    total_records: int
    version: str = ""
    source: str = ""

    def __post_init__(self) -> None:
        expected = 0
        for rank, node in enumerate(self.nodes):
            if node.node_id != rank:
                raise ValueError(
                    f"node ids must be 0..N-1 in order, got {node.node_id} at {rank}"
                )
            if node.start != expected or node.stop < node.start:
                raise ValueError(
                    f"node {rank} span [{node.start}, {node.stop}) is not the "
                    f"contiguous continuation of the previous span (expected "
                    f"start {expected})"
                )
            expected = node.stop
        if expected != self.total_records:
            raise ValueError(
                f"spans cover {expected} records, topology claims {self.total_records}"
            )

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def addresses(self) -> list[str]:
        return [node.address for node in self.nodes]

    @property
    def active_nodes(self) -> list[NodeSpec]:
        """Nodes that own at least one record (the only ones worth querying)."""
        return [node for node in self.nodes if not node.empty]

    def node(self, node_id: int) -> NodeSpec:
        return self.nodes[node_id]

    def with_addresses(
        self,
        addresses: Sequence[str],
        replicas: Sequence[Sequence[str]] | None = None,
    ) -> "ClusterTopology":
        """A copy of this topology bound to concrete addresses."""
        if len(addresses) != len(self.nodes):
            raise ValueError(
                f"{len(addresses)} addresses for {len(self.nodes)} nodes"
            )
        bound = tuple(
            node.with_address(
                address, replicas[rank] if replicas is not None else ()
            )
            for rank, (node, address) in enumerate(zip(self.nodes, addresses))
        )
        return replace(self, nodes=bound)

    # -- manifest --------------------------------------------------------
    def to_manifest(self) -> dict:
        return {
            "magic": "repro-cluster",
            "total_records": self.total_records,
            "version": self.version,
            "source": self.source,
            "nodes": [
                {
                    "node_id": node.node_id,
                    "start": node.start,
                    "stop": node.stop,
                    "address": node.address,
                    "replicas": list(node.replicas),
                    "index_path": node.index_path,
                }
                for node in self.nodes
            ],
        }

    def save(self, path: str | Path) -> None:
        atomic_write(path, json.dumps(self.to_manifest(), indent=2) + "\n")

    @classmethod
    def from_manifest(cls, manifest: dict) -> "ClusterTopology":
        if manifest.get("magic") != "repro-cluster":
            raise ValueError("not a repro-cluster manifest")
        nodes = tuple(
            NodeSpec(
                node_id=int(node["node_id"]),
                start=int(node["start"]),
                stop=int(node["stop"]),
                address=str(node.get("address", "")),
                replicas=tuple(node.get("replicas", ())),
                index_path=str(node.get("index_path", "")),
            )
            for node in manifest["nodes"]
        )
        return cls(
            nodes=nodes,
            total_records=int(manifest["total_records"]),
            version=str(manifest.get("version", "")),
            source=str(manifest.get("source", "")),
        )

    @classmethod
    def load(cls, path: str | Path) -> "ClusterTopology":
        try:
            manifest = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"{path}: not a readable cluster manifest ({exc})") from exc
        return cls.from_manifest(manifest)

    @classmethod
    def from_record_counts(
        cls,
        counts: Sequence[int],
        addresses: Sequence[str],
        version: str = "",
        source: str = "",
    ) -> "ClusterTopology":
        """Topology from per-node record counts, in node order.

        This is the address-list deployment path: probe each running
        node for its record count, then declare the spans contiguous
        in the given order.  Correct ranking then *requires* the nodes
        to actually hold contiguous partitions in that order — which
        is exactly what :func:`partition_index` produces.
        """
        if len(counts) != len(addresses):
            raise ValueError(f"{len(counts)} counts for {len(addresses)} addresses")
        nodes = []
        start = 0
        for rank, (count, address) in enumerate(zip(counts, addresses)):
            if count < 0:
                raise ValueError(f"node {rank} has negative record count {count}")
            nodes.append(
                NodeSpec(node_id=rank, start=start, stop=start + count, address=address)
            )
            start += count
        return cls(
            nodes=tuple(nodes), total_records=start, version=version, source=source
        )


def partition_index(
    index: DatabaseIndex,
    nodes: int,
    shard_bp: int = DEFAULT_SHARD_BP,
) -> tuple[ClusterTopology, list[DatabaseIndex]]:
    """Split ``index`` into ``nodes`` contiguous sub-indexes.

    Record order is preserved end to end: node ``k`` gets the
    ``even_spans(record_count, nodes)[k]`` slice of the global record
    sequence, re-sharded locally at ``shard_bp``.  With more nodes
    than records the trailing nodes get **empty** sub-indexes (zero
    records, zero shards of payload) — they serve, answer instantly,
    and report full coverage over nothing.

    Returns the (unbound) topology and one sub-index per node.
    """
    if nodes < 1:
        raise ValueError(f"need at least one node, got {nodes}")
    total = index.record_count
    spans = even_spans(total, nodes)
    records = [
        (name, decode(codes)) for _gidx, name, codes in index.iter_records()
    ]
    specs: list[NodeSpec] = []
    parts: list[DatabaseIndex] = []
    for rank, (lo, hi) in enumerate(spans):
        part = DatabaseIndex.build(
            records[lo:hi],
            shard_bp=shard_bp,
            source=f"{index.source}#node{rank}[{lo}:{hi}]",
        )
        specs.append(NodeSpec(node_id=rank, start=lo, stop=hi))
        parts.append(part)
    topology = ClusterTopology(
        nodes=tuple(specs),
        total_records=total,
        version=index.version,
        source=index.source,
    )
    return topology, parts
