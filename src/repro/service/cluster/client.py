"""`ClusterClient`: the one-object face of a shard-node cluster.

Code written against :class:`~repro.service.client.SearchClient`
ports by swapping the object: ``search()`` / ``search_batch()`` return
the same :class:`~repro.service.engine.SearchResponse` shape —
globally ranked hits, coverage, degraded-node set, merged metrics.

Three ways to point it at a cluster:

* ``ClusterClient(topology)`` — a bound
  :class:`~repro.service.cluster.topology.ClusterTopology` (what
  :class:`~repro.service.cluster.local.LocalCluster` hands out);
* ``ClusterClient.from_manifest(path)`` — the JSON manifest
  ``repro cluster serve`` writes;
* ``ClusterClient.from_addresses([...])`` — real deployments: probe
  each running node's ``stats`` for its record count and declare the
  spans contiguous in address order (the order
  :func:`~repro.service.cluster.topology.partition_index` shipped
  them in).
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

from ...obs import Observability
from .. import QueryOptions
from ..client import SearchClient
from ..engine import SearchResponse
from .coordinator import ClusterCoordinator
from .topology import ClusterTopology

__all__ = ["ClusterClient"]


class ClusterClient:
    """Search a shard-node cluster as if it were one server."""

    def __init__(self, topology: ClusterTopology, **coordinator_kwargs) -> None:
        self.topology = topology
        self.coordinator = ClusterCoordinator(topology, **coordinator_kwargs)

    # -- constructors ----------------------------------------------------
    @classmethod
    def from_manifest(cls, path: str | Path, **coordinator_kwargs) -> "ClusterClient":
        return cls(ClusterTopology.load(path), **coordinator_kwargs)

    @classmethod
    def from_addresses(
        cls,
        addresses: Sequence[str],
        timeout: float | None = 10.0,
        obs: Observability | None = None,
        **coordinator_kwargs,
    ) -> "ClusterClient":
        """Probe each address for its record count; spans follow order."""
        counts = []
        versions = []
        for address in addresses:
            with SearchClient(address, timeout=timeout) as probe:
                stats = probe.stats()
            counts.append(int(stats.get("records", 0)))
            versions.append(str(stats.get("version", "")))
        topology = ClusterTopology.from_record_counts(
            counts, list(addresses), version=versions[0] if versions else ""
        )
        if obs is not None:
            coordinator_kwargs.setdefault("obs", obs)
        coordinator_kwargs.setdefault("timeout", timeout)
        return cls(topology, **coordinator_kwargs)

    # -- search ----------------------------------------------------------
    def search(
        self, query: str, options: QueryOptions | None = None
    ) -> SearchResponse:
        return self.coordinator.search(query, options)

    def search_batch(
        self, queries: Sequence[str], options: QueryOptions | None = None
    ) -> list[SearchResponse]:
        return self.coordinator.search_batch(queries, options)

    # -- admin -----------------------------------------------------------
    def ping(self) -> bool:
        """True when every non-empty node answers a ping."""
        return bool(self.coordinator.health()["ready"])

    def health(self) -> Mapping[str, object]:
        return self.coordinator.health()

    def stats(self) -> Mapping[str, object]:
        return self.coordinator.stats()

    # -- observability ---------------------------------------------------
    @property
    def last_trace_id(self) -> str | None:
        """Trace id of the most recent (batch) search, if tracing is on."""
        return self.coordinator.last_trace_id

    def trace(self, trace_id: str | None = None) -> str:
        """Rendered stitched trace (or the trace listing with no id)."""
        return self.coordinator.trace(trace_id)

    def trace_tree(self, trace_id: str):
        """The stitched :class:`~repro.obs.Span` tree, or ``None``."""
        return self.coordinator.trace_tree(trace_id)

    def fleet_metrics(self) -> str:
        """Aggregated Prometheus exposition across every node."""
        return self.coordinator.fleet_metrics()

    def fleet_snapshot(self) -> Mapping[str, object]:
        """Aggregated JSON metrics snapshot across every node."""
        return self.coordinator.fleet_snapshot()

    def close(self) -> None:
        self.coordinator.close()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
