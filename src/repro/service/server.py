"""Minimal stdlib request loop around a :class:`SearchEngine`.

The paper's deployment is already server-shaped — a fixed database,
queries streaming in, a few bytes of ranked results streaming out —
and this module is the smallest faithful realization of it: no
sockets, no threads, just two interchangeable front-ends over the
engine:

* :meth:`SearchServer.serve` — a line protocol over text streams
  (stdin/stdout in ``repro serve``, ``io.StringIO`` in tests)::

      scan ACGTACGT top=5 min_score=10 retrieve=1 deadline_ms=250 metrics=1
      stats
      metrics
      trace
      trace t000002
      health
      quit

  ``stats`` is the engine/index/cache summary plus a metrics snapshot
  (counters, gauges, histogram quantiles) when the engine carries a
  live registry; ``metrics`` is the raw Prometheus text exposition;
  ``trace`` lists the tracer's ring of recent request traces and
  ``trace <id>`` renders one span tree.

* :meth:`SearchServer.serve_queue` — queue-in / report-out: consume
  :class:`QueryRequest` objects from one ``queue.Queue``, emit
  :class:`~repro.service.engine.SearchResponse` objects on another
  until a ``None`` sentinel arrives.  This is the embedding point a
  later async/socket front-end wraps.

Failure is part of the protocol, never an exception: a bad or failing
request line answers with one structured line —

    error <taxonomy-code> <message>

where the code is ``bad-request`` for malformed input, a
:class:`~repro.service.resilience.ServiceError` subclass code
(``shard-failure`` / ``worker-timeout`` / ``index-corrupt``) for
service faults, and ``internal`` for anything unexpected.  A degraded
(partial-coverage) answer leads with a ``degraded coverage=... shards=...``
line so clients can tell partial from complete.  The queue front-end
likewise never dies mid-stream: a failing request puts the exception
object itself on the response queue and the loop keeps consuming.
"""

from __future__ import annotations

import queue
from typing import TextIO

from ..obs.metrics import PeriodicDumper
from . import QueryOptions, resolve_query_options
from .engine import SearchEngine, SearchResponse
from .protocol import (
    classify_exception,
    format_error_line,
    parse_option_tokens,
)

__all__ = ["QueryRequest", "SearchServer"]


class QueryRequest:
    """One search request as the queue front-end carries it.

    The request is ``query`` plus a :class:`~repro.service.QueryOptions`;
    the old ``top=``/``min_score=``/``retrieve=`` keywords still
    construct one (with a :class:`DeprecationWarning`), and read-only
    properties keep the old attribute access working.  Construction
    never validates — a bad request must reach the engine and come
    back as a structured rejection, not explode in the producer.
    """

    __slots__ = ("query", "options")

    def __init__(
        self,
        query: str,
        options: QueryOptions | None = None,
        *,
        top: int | None = None,
        min_score: int | None = None,
        retrieve: int | None = None,
    ) -> None:
        self.query = query
        self.options = resolve_query_options(
            options, top=top, min_score=min_score, retrieve=retrieve
        )

    @property
    def top(self) -> int:
        return self.options.top

    @property
    def min_score(self) -> int:
        return self.options.min_score

    @property
    def retrieve(self) -> int:
        return self.options.retrieve

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, QueryRequest)
            and self.query == other.query
            and self.options == other.options
        )

    def __hash__(self) -> int:
        return hash((self.query, self.options))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"QueryRequest({self.query!r}, {self.options!r})"


class SearchServer:
    """Request loop over a :class:`SearchEngine`."""

    def __init__(
        self,
        engine: SearchEngine,
        defaults: QueryOptions | None = None,
        *,
        top: int | None = None,
        min_score: int | None = None,
        retrieve: int | None = None,
        dumper: PeriodicDumper | None = None,
    ) -> None:
        self.engine = engine
        self.obs = engine.obs
        self.defaults = resolve_query_options(
            defaults, top=top, min_score=min_score, retrieve=retrieve
        )
        self.dumper = dumper
        self.served = 0

    # ------------------------------------------------------------------
    # Text front-end
    # ------------------------------------------------------------------
    def handle_line(self, line: str) -> str | None:
        """One request line -> response text (``None`` means shut down).

        A pure adapter over :mod:`repro.service.protocol`: option
        parsing (:func:`~repro.service.protocol.parse_option_tokens`)
        and failure formatting
        (:func:`~repro.service.protocol.classify_exception` +
        :func:`~repro.service.protocol.format_error_line`) are the
        exact helpers the TCP front-end uses, so validation and error
        lines cannot drift between the two.  Never raises: every
        failure renders as one ``error <taxonomy-code> <message>``
        line so a single bad request (or a failing backend) cannot
        tear down the loop.
        """
        tokens = line.strip().split()
        if not tokens or tokens[0].startswith("#"):
            return ""
        verb = tokens[0].lower()
        if verb in ("quit", "exit", "shutdown"):
            return None
        try:
            if verb == "stats":
                lines = [f"{k}: {v}" for k, v in self.engine.describe().items()]
                lines.extend(self._metrics_lines())
                return "\n".join(lines)
            if verb == "metrics":
                text = self.obs.registry.render_prometheus()
                return text.rstrip("\n") if text else "# no metrics registered"
            if verb == "trace":
                return self._handle_trace(tokens[1:])
            if verb == "health":
                return "\n".join(
                    f"{k}: {v}" for k, v in self.engine.health().items()
                )
            if verb == "scan":
                if len(tokens) < 2:
                    raise ValueError("scan needs a query sequence")
                options = parse_option_tokens(tokens[2:])
                with_metrics = bool(options.pop("metrics", 0))
                request = QueryRequest(
                    query=tokens[1], options=self.defaults.replace(**options)
                )
                response = self.submit(request)
                return response.render(
                    max_rows=request.options.top, with_metrics=with_metrics
                )
            raise ValueError(
                f"unknown verb {verb!r} "
                "(use scan / stats / metrics / trace / health / quit)"
            )
        except Exception as exc:  # noqa: BLE001 - the loop must survive anything
            return format_error_line(*classify_exception(exc))

    def _metrics_lines(self) -> list[str]:
        """Counter/gauge/histogram summary lines for the ``stats`` verb."""
        snapshot = self.obs.registry.snapshot()
        lines: list[str] = []
        for name, value in snapshot["counters"].items():
            lines.append(f"{name}: {value:g}")
        for name, value in snapshot["gauges"].items():
            lines.append(f"{name}: {value:g}")
        for name, data in snapshot["histograms"].items():
            lines.append(
                f"{name}: count={data['count']} sum={data['sum']:.4g}s "
                f"p50={data['p50']:.4g}s p90={data['p90']:.4g}s p99={data['p99']:.4g}s"
            )
        return lines

    def _handle_trace(self, args: list[str]) -> str:
        """``trace`` lists recent traces; ``trace <id>`` renders one."""
        tracer = self.obs.tracer
        if not tracer.enabled:
            return "# tracing disabled (engine has no live tracer)"
        if not args:
            recent = tracer.recent
            if not recent:
                return "# no traces recorded"
            return "\n".join(
                f"{span.trace_id} {span.name} {span.duration * 1e3:.3f}ms "
                f"spans={sum(1 for _ in span.walk())}"
                for span in reversed(recent)
            )
        span = tracer.get(args[0])
        if span is None:
            raise ValueError(f"unknown trace id {args[0]!r} (see 'trace' for the ring)")
        return span.render()

    def serve(self, in_stream: TextIO, out_stream: TextIO) -> int:
        """Run the line protocol until EOF or ``quit``; returns requests served.

        ``handle_line`` already converts failures into ``error`` lines;
        the extra guard here is belt-and-braces so that no exception —
        whatever its origin — can escape the request loop.
        """
        for line in in_stream:
            try:
                response = self.handle_line(line)
            except Exception as exc:  # noqa: BLE001 - keep serving, always
                response = format_error_line(*classify_exception(exc))
            if response is None:
                break
            if response:
                out_stream.write(response + "\n")
                out_stream.flush()
            if self.dumper is not None:
                self.dumper.maybe_dump()
        if self.dumper is not None:
            self.dumper.dump()
        return self.served

    # ------------------------------------------------------------------
    # Queue front-end
    # ------------------------------------------------------------------
    def submit(self, request: QueryRequest) -> SearchResponse:
        """Run one request through the engine."""
        response = self.engine.search(request.query, request.options)
        self.served += 1
        return response

    def serve_queue(
        self,
        requests: "queue.Queue[QueryRequest | None]",
        responses: "queue.Queue[SearchResponse | Exception]",
    ) -> int:
        """Queue-in / report-out loop; a ``None`` request stops it.

        Every request gets exactly one response object, in order; a
        request the engine rejects or fails on yields the exception
        itself on the response queue (so callers can match requests to
        outcomes positionally) and the loop keeps serving.  Responses
        already emitted remain on the queue after shutdown — the
        sentinel stops intake, it does not discard output.
        """
        while True:
            request = requests.get()
            try:
                if request is None:
                    if self.dumper is not None:
                        self.dumper.dump()
                    return self.served
                try:
                    responses.put(self.submit(request))
                except Exception as exc:  # noqa: BLE001 - loop must survive
                    responses.put(exc)
                if self.dumper is not None:
                    self.dumper.maybe_dump()
            finally:
                requests.task_done()
