"""Minimal stdlib request loop around a :class:`SearchEngine`.

The paper's deployment is already server-shaped — a fixed database,
queries streaming in, a few bytes of ranked results streaming out —
and this module is the smallest faithful realization of it: no
sockets, no threads, just two interchangeable front-ends over the
engine:

* :meth:`SearchServer.serve` — a line protocol over text streams
  (stdin/stdout in ``repro serve``, ``io.StringIO`` in tests)::

      scan ACGTACGT top=5 min_score=10 retrieve=1 metrics=1
      stats
      quit

* :meth:`SearchServer.serve_queue` — queue-in / report-out: consume
  :class:`QueryRequest` objects from one ``queue.Queue``, emit
  :class:`~repro.service.engine.SearchResponse` objects on another
  until a ``None`` sentinel arrives.  This is the embedding point a
  later async/socket front-end wraps.
"""

from __future__ import annotations

import queue
from dataclasses import dataclass
from typing import TextIO

from .engine import SearchEngine, SearchResponse

__all__ = ["QueryRequest", "SearchServer"]


@dataclass(frozen=True)
class QueryRequest:
    """One search request as the queue front-end carries it."""

    query: str
    top: int = 10
    min_score: int = 1
    retrieve: int = 0


class SearchServer:
    """Request loop over a :class:`SearchEngine`."""

    def __init__(
        self, engine: SearchEngine, top: int = 10, min_score: int = 1, retrieve: int = 0
    ) -> None:
        self.engine = engine
        self.defaults = QueryRequest("", top=top, min_score=min_score, retrieve=retrieve)
        self.served = 0

    # ------------------------------------------------------------------
    # Text front-end
    # ------------------------------------------------------------------
    def _parse_options(self, tokens: list[str]) -> dict[str, int]:
        options: dict[str, int] = {}
        for token in tokens:
            if "=" not in token:
                raise ValueError(f"malformed option {token!r} (expected key=value)")
            key, _, value = token.partition("=")
            key = key.replace("-", "_")
            if key not in ("top", "min_score", "retrieve", "metrics"):
                raise ValueError(f"unknown option {key!r}")
            options[key] = int(value)
        return options

    def handle_line(self, line: str) -> str | None:
        """One request line -> response text (``None`` means shut down)."""
        tokens = line.strip().split()
        if not tokens or tokens[0].startswith("#"):
            return ""
        verb = tokens[0].lower()
        if verb in ("quit", "exit", "shutdown"):
            return None
        try:
            if verb == "stats":
                return "\n".join(f"{k}: {v}" for k, v in self.engine.describe().items())
            if verb == "scan":
                if len(tokens) < 2:
                    raise ValueError("scan needs a query sequence")
                options = self._parse_options(tokens[2:])
                with_metrics = bool(options.pop("metrics", 0))
                request = QueryRequest(
                    query=tokens[1],
                    top=options.get("top", self.defaults.top),
                    min_score=options.get("min_score", self.defaults.min_score),
                    retrieve=options.get("retrieve", self.defaults.retrieve),
                )
                response = self.submit(request)
                return response.render(max_rows=request.top, with_metrics=with_metrics)
            raise ValueError(f"unknown verb {verb!r} (use scan / stats / quit)")
        except ValueError as exc:
            return f"ERROR: {exc}"

    def serve(self, in_stream: TextIO, out_stream: TextIO) -> int:
        """Run the line protocol until EOF or ``quit``; returns requests served."""
        for line in in_stream:
            response = self.handle_line(line)
            if response is None:
                break
            if response:
                out_stream.write(response + "\n")
                out_stream.flush()
        return self.served

    # ------------------------------------------------------------------
    # Queue front-end
    # ------------------------------------------------------------------
    def submit(self, request: QueryRequest) -> SearchResponse:
        """Run one request through the engine."""
        response = self.engine.search(
            request.query,
            top=request.top,
            min_score=request.min_score,
            retrieve=request.retrieve,
        )
        self.served += 1
        return response

    def serve_queue(
        self,
        requests: "queue.Queue[QueryRequest | None]",
        responses: "queue.Queue[SearchResponse]",
    ) -> int:
        """Queue-in / report-out loop; a ``None`` request stops it."""
        while True:
            request = requests.get()
            try:
                if request is None:
                    return self.served
                responses.put(self.submit(request))
            finally:
                requests.task_done()
