"""Asyncio TCP front-end: the host↔board interface over a socket.

The paper's deployment model (section 5) is a host streaming queries
to a resident accelerator and reading a few bytes of ranked results
back; :class:`TcpSearchServer` is that interface made real for the
software service.  It wraps the existing :class:`SearchEngine`
machinery — the embedding point ``serve_queue`` promised — with:

* **concurrent connections**, each pipelining many in-flight requests
  over one socket (frames are matched by request id, so responses may
  return out of submission order);
* **bounded backpressure** — at most ``max_inflight`` search requests
  in flight server-wide; excess requests are *rejected immediately*
  with a structured ``overloaded`` error frame instead of queueing
  without bound;
* **adaptive admission** (``adaptive=True``, the default) — the
  in-flight bound is an :class:`~repro.service.guard.AdaptiveLimiter`
  that starts at ``max_inflight`` and AIMD-adjusts it: on-time
  completions grow the limit back toward the ceiling, deadline misses
  and timeouts cut it multiplicatively, so a server whose sweeps have
  slowed (hot index reload, noisy neighbour, degraded disk) sheds
  load *before* queueing work it cannot finish;
* **deadline-aware shedding** — once the
  :class:`~repro.service.guard.ServiceTimeTracker` has warmed up, a
  search whose remaining ``deadline_ms`` budget is smaller than the
  observed p90 sweep time is refused at admission with
  ``overloaded`` (which the client SDK retries with backoff): it
  would occupy a sweep slot and then expire, which under overload is
  precisely the work to drop first.  An idle server always admits,
  so a stale service-time estimate can never latch into refusing
  every request;
* **cross-request micro-batching** — search requests arriving within
  ``batch_window`` seconds are coalesced (grouped by identical
  :class:`~repro.service.QueryOptions`) into one
  :meth:`SearchEngine.search_batch` sweep, so concurrent clients share
  a single pass over the index exactly as SWAPHI keeps many queries
  resident against one database;
* **idle / request timeouts** — a silent connection is closed after
  ``idle_timeout``; a request exceeding ``request_timeout`` answers
  with a ``timeout`` error frame;
* **graceful drain** — :meth:`stop` refuses new work (``overloaded``
  frames), lets in-flight requests finish and flushes their responses
  before closing connections.

The engine runs on a single dispatch thread (one
:class:`~concurrent.futures.ThreadPoolExecutor` worker), which both
keeps the asyncio loop responsive during sweeps and serializes access
to the engine the way ``serve_queue`` does.

All bytes on the wire are produced and consumed by
:mod:`repro.service.protocol`; nothing here encodes frames by hand.
"""

from __future__ import annotations

import asyncio
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..obs import Observability
from . import QueryOptions
from .engine import SearchEngine
from .guard import AdaptiveLimiter, ServiceTimeTracker
from .resilience import BadRequest, Deadline, DeadlineExceeded, Overloaded, RequestTimeout
from . import protocol

__all__ = ["ServerConfig", "TcpSearchServer", "ServerThread"]


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs for one :class:`TcpSearchServer`.

    ``batch_window`` is the micro-batching horizon: once a search
    request arrives, the dispatcher waits up to this many seconds for
    more requests (up to ``batch_max``) before sweeping them together;
    ``0.0`` disables coalescing entirely — every request becomes its
    own sweep, which is the configuration the throughput benchmark
    compares against.

    ``adaptive`` turns ``max_inflight`` from a static bound into the
    *ceiling* of an AIMD limiter that shrinks toward ``min_inflight``
    when requests miss their deadlines.  ``shed_percentile`` /
    ``shed_min_samples`` tune deadline-aware admission shedding
    (``shed_min_samples`` observations warm the tracker before any
    shedding happens).
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_inflight: int = 64
    adaptive: bool = True
    min_inflight: int = 1
    shed_percentile: float = 0.9
    shed_min_samples: int = 20
    batch_window: float = 0.002
    batch_max: int = 32
    idle_timeout: float | None = None
    request_timeout: float | None = None
    drain_timeout: float = 10.0
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be positive, got {self.max_inflight}")
        if not 1 <= self.min_inflight <= self.max_inflight:
            raise ValueError(
                f"min_inflight must be in [1, max_inflight], got {self.min_inflight}"
            )
        if not 0.0 < self.shed_percentile < 1.0:
            raise ValueError(
                f"shed_percentile must be in (0, 1), got {self.shed_percentile}"
            )
        if self.shed_min_samples < 1:
            raise ValueError(
                f"shed_min_samples must be positive, got {self.shed_min_samples}"
            )
        if self.batch_window < 0:
            raise ValueError(f"batch_window cannot be negative, got {self.batch_window}")
        if self.batch_max < 1:
            raise ValueError(f"batch_max must be positive, got {self.batch_max}")


@dataclass
class _Pending:
    """One accepted search request waiting for (or in) a sweep.

    ``deadline`` is the request's end-to-end budget, anchored at
    receipt (``deadline_ms`` re-anchors on the server clock — wall
    clocks are not shared, remaining budgets are).
    """

    request_id: int
    query: str
    options: QueryOptions
    writer: asyncio.StreamWriter
    received: float
    deadline: Deadline | None = None
    done: bool = False
    trace_id: str | None = None
    parent_span: str | None = None


class TcpSearchServer:
    """Asyncio TCP server speaking the versioned frame protocol.

    Parameters
    ----------
    engine:
        The resident :class:`SearchEngine` all connections share.
    config:
        Network/batching/backpressure knobs (:class:`ServerConfig`).
    defaults:
        Per-server default :class:`~repro.service.QueryOptions`, the
        base each request's ``options`` mapping overrides.
    obs:
        Observability bundle; defaults to the engine's.  A live bundle
        gains connection/in-flight gauges, frame counters and a
        ``net.batch`` span (with ``net.recv``/``net.send`` children)
        enveloping every batched ``engine.search`` span.
    """

    def __init__(
        self,
        engine: SearchEngine,
        config: ServerConfig | None = None,
        defaults: QueryOptions | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.engine = engine
        self.config = config if config is not None else ServerConfig()
        self.defaults = defaults if defaults is not None else QueryOptions()
        self.obs = obs if obs is not None else engine.obs
        self.host = self.config.host
        self.port = self.config.port
        self.served = 0
        self._inflight = 0
        self._connections = 0
        self._draining = False
        self._server: asyncio.AbstractServer | None = None
        self._dispatcher: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.Queue[_Pending] | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._conn_versions: dict[asyncio.StreamWriter, int] = {}
        self._drained: asyncio.Event | None = None
        self._exec = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-net-dispatch"
        )
        # Adaptive admission: the limiter starts at the ceiling, so a
        # fault-free run is indistinguishable from the static bound.
        self.limiter: AdaptiveLimiter | None = (
            AdaptiveLimiter(
                initial=self.config.max_inflight,
                min_limit=self.config.min_inflight,
                max_limit=self.config.max_inflight,
            )
            if self.config.adaptive
            else None
        )
        self.service_times = ServiceTimeTracker(
            min_samples=self.config.shed_min_samples
        )
        registry = self.obs.registry
        self._g_connections = registry.gauge(
            "net_connections", "Open TCP connections"
        )
        self._g_inflight = registry.gauge(
            "net_inflight", "Search requests accepted and not yet answered"
        )
        self._m_frames_in = registry.counter(
            "net_frames_read_total", "Protocol frames read from clients"
        )
        self._m_frames_out = registry.counter(
            "net_frames_written_total", "Protocol frames written to clients"
        )
        self._m_requests = registry.counter(
            "net_requests_total", "Search requests accepted over TCP"
        )
        self._m_rejected = registry.counter(
            "net_rejected_total", "Search requests rejected by backpressure"
        )
        self._m_errors = registry.counter(
            "net_errors_total", "Error frames sent to clients"
        )
        self._m_batches = registry.counter(
            "net_batches_total", "Micro-batches dispatched to the engine"
        )
        self._m_batched = registry.counter(
            "net_batched_requests_total", "Search requests carried by micro-batches"
        )
        self._h_request = registry.histogram(
            "net_request_seconds", "Accept-to-response latency over TCP"
        )
        self._g_limit = registry.gauge(
            "net_admission_limit", "Current adaptive in-flight admission limit"
        )
        self._g_limit.set(self._admission_limit())
        self._m_shed = registry.counter(
            "net_shed_total",
            "Requests shed at admission (budget below observed p90 service time)",
        )
        self._m_limit_cuts = registry.counter(
            "net_limit_cuts_total",
            "Multiplicative cuts applied to the adaptive admission limit",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind, start accepting connections, start the dispatcher."""
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._drained = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        self.obs.log.info("net.listening", host=self.host, port=self.port)

    async def stop(self) -> None:
        """Graceful drain: no new work, finish in-flight, then close.

        New connections are refused and new search frames answered
        with ``overloaded`` the moment draining starts; requests
        already accepted run to completion (bounded by
        ``drain_timeout``) and their responses are flushed before
        their connections close.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._drained is not None:
            if self._inflight == 0:
                self._drained.set()
            try:
                await asyncio.wait_for(
                    self._drained.wait(), self.config.drain_timeout
                )
            except (asyncio.TimeoutError, TimeoutError):
                self.obs.log.warning(
                    "net.drain-timeout", inflight=self._inflight
                )
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        for writer in list(self._writers):
            writer.close()
        self._exec.shutdown(wait=True)
        self.obs.log.info("net.stopped", served=self.served)

    def run_blocking(self, ready=None, reload_signal: int | None = None) -> None:
        """Start and serve until SIGINT/SIGTERM; then drain gracefully.

        Explicit loop signal handlers (not Python's default
        KeyboardInterrupt) so that graceful drain also runs when the
        process was started with an inherited SIG_IGN disposition —
        the fate of every ``cmd &`` child of a non-interactive shell,
        CI steps included — and when a supervisor sends SIGTERM.

        ``ready`` (if given) is called with this server once the port
        is bound — the CLI uses it to announce the address.

        ``reload_signal`` (e.g. ``signal.SIGHUP``) arms hot index
        reload: on that signal the engine's index loader runs off the
        event loop and the fresh generation swaps in under live
        traffic.  A failed reload is logged and the old generation
        keeps serving.
        """

        async def _main() -> None:
            await self.start()
            if ready is not None:
                ready(self)
            loop = asyncio.get_running_loop()
            stopping = loop.create_future()

            def _request_stop() -> None:
                if not stopping.done():
                    stopping.set_result(None)

            def _reload_done(future) -> None:
                exc = future.exception()
                if exc is not None:
                    self.obs.log.error("net.reload-failed", error=str(exc))

            def _request_reload() -> None:
                future = loop.run_in_executor(None, self.engine.reload_index)
                future.add_done_callback(_reload_done)

            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, _request_stop)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass  # non-unix loop: fall back to KeyboardInterrupt
            if reload_signal is not None:
                try:
                    loop.add_signal_handler(reload_signal, _request_reload)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
            try:
                await stopping
            except asyncio.CancelledError:
                pass
            finally:
                await self.stop()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:  # pragma: no cover - non-unix fallback
            pass

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._draining:
            writer.close()
            return
        self._connections += 1
        self._g_connections.set(self._connections)
        self._writers.add(writer)
        peer = writer.get_extra_info("peername")
        self.obs.log.debug("net.connect", peer=str(peer))
        try:
            while True:
                frame = await self._read_frame(reader)
                if frame is None:
                    break
                try:
                    await self._handle_frame(frame, writer)
                except Exception as exc:  # noqa: BLE001 - keep the connection alive
                    request_id = frame.get("id") if isinstance(frame, dict) else None
                    rid = request_id if isinstance(request_id, int) else None
                    await self._send(
                        writer,
                        protocol.error_frame(
                            rid,
                            *protocol.classify_exception(exc),
                            version=self._version_for(writer),
                        ),
                    )
                    self._m_errors.inc()
        except protocol.ProtocolError as exc:
            # The byte stream itself is broken (bad length prefix,
            # oversized frame, garbage JSON): answer once, then close —
            # there is no trustworthy way to resynchronize.
            try:
                await self._send(
                    writer, protocol.error_frame(None, exc.code, str(exc))
                )
                self._m_errors.inc()
            except (ConnectionError, RuntimeError):
                pass
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        finally:
            self._writers.discard(writer)
            self._conn_versions.pop(writer, None)
            self._connections -= 1
            self._g_connections.set(self._connections)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass
            self.obs.log.debug("net.disconnect", peer=str(peer))

    async def _read_frame(self, reader: asyncio.StreamReader) -> dict | None:
        """Read one frame; ``None`` on clean EOF; idle timeout closes."""
        try:
            header = await self._maybe_idle(reader.readexactly(protocol.HEADER.size))
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean EOF between frames
            raise protocol.ProtocolError(
                f"connection closed mid-header ({len(exc.partial)} bytes)"
            ) from None
        except (asyncio.TimeoutError, TimeoutError):
            self.obs.log.debug("net.idle-close")
            return None
        length = protocol.frame_length(header, self.config.max_frame_bytes)
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise protocol.ProtocolError(
                f"connection closed mid-frame ({len(exc.partial)} of {length} bytes)"
            ) from None
        self._m_frames_in.inc()
        return protocol.decode_frame(body)

    def _maybe_idle(self, coro):
        if self.config.idle_timeout is None:
            return coro
        return asyncio.wait_for(coro, self.config.idle_timeout)

    async def _send(self, writer: asyncio.StreamWriter, frame: dict) -> None:
        writer.write(protocol.encode_frame(frame))
        await writer.drain()
        self._m_frames_out.inc()

    def _version_for(self, writer: asyncio.StreamWriter) -> int:
        """The protocol version negotiated (or implied) on this connection."""
        return self._conn_versions.get(writer, protocol.PROTOCOL_VERSION)

    async def _handle_frame(self, frame: dict, writer: asyncio.StreamWriter) -> None:
        ftype = frame.get("type")
        if ftype == "hello":
            version = protocol.negotiate(frame)
            self._conn_versions[writer] = version
            await self._send(writer, protocol.hello_reply(version))
            return
        request = protocol.parse_request(frame)
        if writer not in self._conn_versions and frame.get("v") in (
            protocol.SUPPORTED_VERSIONS
        ):
            # A hello-less client implicitly claims the version in "v";
            # reply frames honour it for the rest of the connection.
            self._conn_versions[writer] = frame["v"]
        version = self._version_for(writer)
        if request.verb == "ping":
            await self._send(
                writer,
                protocol.result_frame(request.request_id, {"pong": True}, version),
            )
            return
        if request.verb == "health":
            await self._send(
                writer,
                protocol.result_frame(
                    request.request_id, self._health_payload(), version
                ),
            )
            return
        if request.verb == "reload":
            # Index loading is blocking file IO: run it off the event
            # loop.  Traffic keeps flowing on the old generation until
            # the fully-loaded new one swaps in.
            assert self._loop is not None
            generation = await self._loop.run_in_executor(
                None, self.engine.reload_index
            )
            await self._send(
                writer,
                protocol.result_frame(
                    request.request_id, {"generation": generation}, version
                ),
            )
            return
        if request.verb == "ingest":
            ingest = self.engine.ingest
            if ingest is None:
                raise BadRequest(
                    "ingest is not enabled on this server "
                    "(start it with an ingest directory)"
                )
            # The WAL append fsyncs before acknowledging — blocking
            # file IO, so run it off the event loop like ``reload``.
            # A full/failing disk surfaces as an error frame
            # (code ``read-only``) while searches keep serving the
            # live generation.
            assert self._loop is not None
            record = request.record or {}
            ack = await self._loop.run_in_executor(
                None, ingest.ingest, record["name"], record["sequence"]
            )
            await self._send(
                writer,
                protocol.result_frame(request.request_id, {"ingest": ack}, version),
            )
            return
        if request.verb in ("stats", "metrics", "trace"):
            payload = self._admin_payload(request.verb, request.arg)
            await self._send(
                writer, protocol.result_frame(request.request_id, payload, version)
            )
            return
        # verb == "search"
        if self._draining:
            raise Overloaded("server is draining; retry against another instance")
        limit = self._admission_limit()
        if self._inflight >= limit:
            self._m_rejected.inc()
            raise Overloaded(
                f"{self._inflight} requests in flight (limit {limit}); retry later"
            )
        options = protocol.options_from_wire(request.options, self.defaults)
        deadline = None
        if options.deadline_ms is not None:
            # Re-anchor the budget on the server's monotonic clock; a
            # budget that is already gone is rejected at admission —
            # sweeping for a caller that stopped waiting wastes the
            # whole board.
            deadline = Deadline.after_ms(options.deadline_ms)
            if deadline.expired:
                raise DeadlineExceeded(
                    f"deadline_ms={options.deadline_ms} already expired at admission"
                )
            # Deadline-aware shedding: once warmed up, refuse a budget
            # the observed p90 says we cannot honour.  A shed at
            # admission never feeds the limiter — the request did no
            # work, so it is evidence of the *client's* budget, not of
            # this server slowing down.  Two deliberate choices keep
            # the mechanism stable: the refusal is ``Overloaded`` (the
            # SDK backs off and retries it, so shedding cannot trigger
            # a retry storm the way an instant terminal error would),
            # and an *idle* server always admits (the sweep refreshes
            # the service-time estimate, so a stale, pessimistic p90
            # can never latch the server into refusing everything).
            if self.config.adaptive and self._inflight > 0:
                p90 = self.service_times.percentile(self.config.shed_percentile)
                remaining = deadline.remaining()
                if p90 is not None and remaining < p90:
                    self._m_shed.inc()
                    raise Overloaded(
                        f"remaining budget {remaining * 1e3:.1f}ms is below "
                        f"the observed p{int(self.config.shed_percentile * 100)} "
                        f"service time {p90 * 1e3:.1f}ms; shed at admission"
                    )
        assert self._queue is not None and self._loop is not None
        self._inflight += 1
        self._g_inflight.set(self._inflight)
        self._m_requests.inc()
        await self._queue.put(
            _Pending(
                request_id=request.request_id,
                query=request.query,
                options=options,
                writer=writer,
                received=self._loop.time(),
                deadline=deadline,
                trace_id=request.trace_id,
                parent_span=request.parent_span,
            )
        )

    def _admission_limit(self) -> int:
        """The in-flight bound this instant (adaptive or static)."""
        if self.limiter is not None:
            return self.limiter.limit
        return self.config.max_inflight

    def _observe_outcome(self, frame: dict, seconds: float) -> None:
        """Feed one settled request into the limiter.

        Only genuine latency failures — the server's own timeout or an
        expired end-to-end budget on *accepted* work — drive the
        multiplicative decrease; everything else (including non-latency
        errors like ``bad-request``) is an on-time completion.  Service
        times are observed separately in :meth:`_process_group`, sweep
        only, so the shedding estimate never inflates with queue wait.
        """
        del seconds  # accept-to-response; the histogram already has it
        code = frame.get("code") if frame.get("type") == "error" else None
        missed = code in (RequestTimeout.code, DeadlineExceeded.code)
        if self.limiter is None:
            return
        if missed:
            if self.limiter.on_overload():
                self._m_limit_cuts.inc()
                self.obs.log.warning(
                    "net.limit-cut", limit=self.limiter.limit, code=code
                )
        else:
            self.limiter.on_success()
        self._g_limit.set(self.limiter.limit)

    def _health_payload(self) -> dict:
        """The ``health`` verb: engine readiness plus this front-end's state."""
        health = dict(self.engine.health())
        health["draining"] = self._draining
        health["connections"] = self._connections
        health["inflight"] = self._inflight
        health["limit"] = self._admission_limit()
        health["adaptive"] = self.limiter is not None
        health["served"] = self.served
        return {"health": health}

    def _admin_payload(self, verb: str, arg: str | None) -> dict:
        if verb == "stats":
            stats = {str(k): str(v) for k, v in self.engine.describe().items()}
            stats["net connections"] = str(self._connections)
            stats["net inflight"] = str(self._inflight)
            stats["net limit"] = str(self._admission_limit())
            if self.limiter is not None:
                described = self.limiter.describe()
                stats["net limit cuts"] = str(described["cuts"])
                stats["net deadline misses"] = str(described["misses"])
            stats["net served"] = str(self.served)
            return {"stats": stats}
        if verb == "metrics":
            return {"text": self.obs.registry.render_prometheus()}
        tracer = self.obs.tracer
        if not tracer.enabled:
            return {"text": "# tracing disabled (engine has no live tracer)"}
        if arg:
            span = tracer.get(arg)
            if span is None:
                raise ValueError(f"unknown trace id {arg!r} (see 'trace' for the ring)")
            # ``tree`` is the structured form a coordinator stitches
            # with; ``text`` stays for humans and old clients.
            return {"text": span.render(), "tree": span.to_payload()}
        recent = tracer.recent
        if not recent:
            return {"text": "# no traces recorded"}
        return {
            "text": "\n".join(
                f"{span.trace_id} {span.name} {span.duration * 1e3:.3f}ms "
                f"spans={sum(1 for _ in span.walk())}"
                for span in reversed(recent)
            )
        }

    # ------------------------------------------------------------------
    # Dispatch: micro-batching across connections
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        assert self._queue is not None and self._loop is not None
        while True:
            batch = [await self._queue.get()]
            window = self.config.batch_window
            if window > 0:
                deadline = self._loop.time() + window
                while len(batch) < self.config.batch_max:
                    remaining = deadline - self._loop.time()
                    if remaining <= 0:
                        break
                    try:
                        batch.append(
                            await asyncio.wait_for(self._queue.get(), remaining)
                        )
                    except (asyncio.TimeoutError, TimeoutError):
                        break
            self._m_batches.inc()
            self._m_batched.inc(len(batch))
            # Requests whose budget ran out while queued are answered
            # now, not swept: the caller has already given up.  Under
            # adaptive admission the same check is *predictive* — a
            # budget still nominally alive but smaller than the
            # observed p90 sweep time would burn a full board pass and
            # miss anyway, so it is answered here too.  Dropping doomed
            # work at dispatch is where deadline-awareness pays: the
            # queue wait is already known exactly, unlike at admission.
            p90 = (
                self.service_times.percentile(self.config.shed_percentile)
                if self.config.adaptive
                else None
            )
            live: list[_Pending] = []
            for item in batch:
                doomed = None
                if item.deadline is not None:
                    if item.deadline.expired:
                        doomed = "deadline expired while queued for dispatch"
                    elif p90 is not None and item.deadline.remaining() < p90:
                        self._m_shed.inc()
                        doomed = (
                            f"remaining budget "
                            f"{item.deadline.remaining() * 1e3:.1f}ms cannot "
                            f"cover the observed "
                            f"p{int(self.config.shed_percentile * 100)} sweep "
                            f"time {p90 * 1e3:.1f}ms; dropped before sweep"
                        )
                if doomed is not None:
                    await self._deliver(
                        [item],
                        [
                            protocol.error_frame(
                                item.request_id,
                                DeadlineExceeded.code,
                                doomed,
                                version=self._version_for(item.writer),
                            )
                        ],
                    )
                else:
                    live.append(item)
            # Group by options (a sweep shares one parameter set) and by
            # remote trace context: traced requests come one-per-search
            # from a coordinator, and keeping contexts separate means
            # each adopted ``net.batch`` span lands in the ring under
            # exactly one caller's trace id.  Untraced requests
            # (trace_id None) still coalesce freely.
            groups: dict[tuple[QueryOptions, str | None], list[_Pending]] = {}
            for item in live:
                groups.setdefault((item.options, item.trace_id), []).append(item)
            for (options, _trace_id), items in groups.items():
                future = self._loop.run_in_executor(
                    self._exec, self._process_group, options, items
                )
                if self.config.request_timeout is not None:
                    try:
                        await asyncio.wait_for(future, self.config.request_timeout)
                    except (asyncio.TimeoutError, TimeoutError):
                        # The sweep thread keeps running; answer now and
                        # let the done-guard drop its late responses.
                        frames = [
                            protocol.error_frame(
                                item.request_id,
                                "timeout",
                                f"request exceeded {self.config.request_timeout:.3g}s",
                            )
                            for item in items
                        ]
                        await self._deliver(items, frames)
                else:
                    await future

    def _process_group(self, options: QueryOptions, items: list[_Pending]) -> None:
        """Sweep one options-group of a batch (runs on the dispatch thread).

        The ``net.batch`` span envelopes the engine's own
        ``engine.search`` span; ``net.recv`` records how long the
        oldest request waited between socket and sweep, ``net.send``
        the time to flush every response frame back out.  A group that
        arrived with a remote trace context *adopts* it: the whole
        subtree lands in this server's ring under the coordinator's
        trace id, where ``trace <id>`` can fetch it for stitching.
        """
        assert self._loop is not None
        tracer = self.obs.tracer
        with tracer.adopt(
            "net.batch",
            trace_id=items[0].trace_id,
            parent_span=items[0].parent_span,
            requests=len(items),
            top=options.top,
        ):
            now = self._loop.time()
            oldest = max((now - item.received for item in items), default=0.0)
            tracer.add_span("net.recv", seconds=oldest, requests=len(items))
            # Members of one group share a deadline_ms budget but were
            # anchored at their own receipt instants; the group sweeps
            # under the tightest one so no member overruns its budget.
            deadline = None
            anchored = [item.deadline for item in items if item.deadline is not None]
            if anchored:
                deadline = min(anchored, key=lambda d: d.expires_at)
            try:
                t_sweep = time.monotonic()
                responses = self.engine.search_batch(
                    [item.query for item in items], options, deadline=deadline
                )
                # Service time is the sweep alone, not queue + sweep:
                # shedding asks "can this budget cover the work once it
                # reaches the front", and a queue-inflated estimate
                # latches into rejecting everything under overload.
                self.service_times.observe(time.monotonic() - t_sweep)
                frames = [
                    protocol.response_frame(
                        item.request_id, response, self._version_for(item.writer)
                    )
                    for item, response in zip(items, responses)
                ]
            except Exception as exc:  # noqa: BLE001 - answer, never die
                code, message = protocol.classify_exception(exc)
                frames = [
                    protocol.error_frame(
                        item.request_id,
                        code,
                        message,
                        version=self._version_for(item.writer),
                    )
                    for item in items
                ]
                self.obs.log.warning("net.batch-failed", code=code, error=message)
            t_send = time.monotonic()
            asyncio.run_coroutine_threadsafe(
                self._deliver(items, frames), self._loop
            ).result()
            tracer.add_span(
                "net.send", seconds=time.monotonic() - t_send, frames=len(frames)
            )

    async def _deliver(self, items: list[_Pending], frames: list[dict]) -> None:
        """Write one frame per pending item; settles in-flight accounting."""
        assert self._loop is not None
        for item, frame in zip(items, frames):
            if item.done:
                continue
            item.done = True
            try:
                await self._send(item.writer, frame)
            except (ConnectionError, RuntimeError):
                pass  # client went away; the answer dies with it
            if frame.get("type") == "error":
                self._m_errors.inc()
            else:
                self.served += 1
            elapsed = self._loop.time() - item.received
            self._h_request.observe(elapsed)
            self._observe_outcome(frame, elapsed)
            self._inflight -= 1
            self._g_inflight.set(self._inflight)
        if self._draining and self._inflight == 0 and self._drained is not None:
            self._drained.set()


class ServerThread:
    """Run a :class:`TcpSearchServer` on a background event loop.

    The embedding tests and benchmarks need: ``with
    ServerThread(engine) as handle:`` gives a bound ``handle.host`` /
    ``handle.port`` and a server that drains cleanly on exit.
    """

    def __init__(
        self,
        engine: SearchEngine,
        config: ServerConfig | None = None,
        defaults: QueryOptions | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.server = TcpSearchServer(engine, config=config, defaults=defaults, obs=obs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "ServerThread":
        self._loop = asyncio.new_event_loop()

        def _run() -> None:
            assert self._loop is not None
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self.server.start())
            except BaseException as exc:  # noqa: BLE001 - surface to starter
                self._startup_error = exc
                self._ready.set()
                return
            self._ready.set()
            self._loop.run_forever()
            self._loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-net-server", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self) -> None:
        if self._loop is None or self._thread is None:
            return
        if not self._loop.is_closed():
            future = asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop)
            try:
                future.result(timeout=self.server.config.drain_timeout + 10)
            except (TimeoutError, RuntimeError):  # pragma: no cover - defensive
                pass
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
