"""Crash-safe live-index lifecycle: WAL-backed streaming ingest.

The paper's accelerator reloads its database between queries; PR 5
carried that to the serving tier as the :class:`IndexManager`
generation swap.  This module closes the remaining gap — *growing* the
database while serving, surviving the process dying at any instant:

1. **Journal.**  Every ingested record is appended to a write-ahead
   journal segment first: a length-prefixed, CRC-checksummed record,
   fsynced before the ingest is acknowledged.  An ack therefore means
   the bytes are durable — nothing acknowledged can be lost short of
   the disk itself lying.
2. **Seal.**  Once a segment holds ``seal_every`` records it is
   sealed (renamed ``.log`` → ``.sealed``) and a fresh active segment
   starts.  Sealed segments are immutable.
3. **Compact.**  A sealed segment's records are compacted into one
   *delta shard* — a normal format-v2 ``.npz`` index with its own
   sha256 shard digest — published with the full atomic-write
   discipline (temp → fsync → rename → dir fsync).
4. **Publish.**  The ingest manifest (the list of live deltas) is
   atomically replaced, the retired segment deleted, and the combined
   base+deltas index swapped live via :meth:`IndexManager.reload` —
   in-flight sweeps finish on their generation, new requests see the
   new one, stale cache generations are purged.

**Recovery** replays the directory after a crash: leftover temp files
are discarded, the active segment's torn tail (a record whose length
prefix, payload, or CRC is incomplete) is truncated away, sealed-but-
uncompacted segments are compacted exactly as the crashed process
would have, and every manifest delta is loaded with its digest
checked — a delta whose content no longer matches is *quarantined*
through the existing degraded-coverage machinery (the server answers
with partial coverage) instead of crashing or serving garbage.

Every filesystem step crosses a labeled :class:`FaultFS` barrier, so
the chaos suite (``repro.service.chaos.run_ingest_chaos``) can kill
the process at each one and assert the lifecycle invariant: recovery
always lands on a consistent generation serving exactly the
acknowledged records, never a torn shard, with rankings bit-identical
to a fault-free run.

When the disk itself fails (ENOSPC / EIO), the service degrades to
**read-only**: ingests are refused with :class:`IngestReadOnly`
(wire code ``read-only``) while the live index keeps answering
searches untouched.
"""

from __future__ import annotations

import hashlib
import io
import json
import struct
import threading
import time
import zlib
from dataclasses import replace
from pathlib import Path
from typing import Callable, Iterator, Sequence

import numpy as np

from ..align.scoring import decode, encode
from ..obs import NULL_OBS, Observability
from .guard import IndexManager
from .index import DatabaseIndex, IndexFormatError, Shard
from .resilience import CrashPoint, FaultFS, IndexCorrupt, ServiceError

__all__ = [
    "INGEST_FORMAT",
    "IngestError",
    "IngestReadOnly",
    "Journal",
    "JournalReplay",
    "IngestService",
    "combine_indexes",
]

#: Ingest directory format version (stamped into the manifest).
INGEST_FORMAT = 1

_WAL_MAGIC = b"repro-wal\x01"
#: Per-record header: payload byte length + CRC32 of the payload.
_REC_HEADER = struct.Struct(">II")
_MANIFEST_MAGIC = "repro-ingest"
_MANIFEST_NAME = "MANIFEST.json"


class IngestError(ServiceError):
    """The ingest directory's on-disk state is structurally invalid."""

    code = "ingest-failed"


class IngestReadOnly(ServiceError):
    """Ingest is suspended (disk failing); searches keep serving."""

    code = "read-only"


# ----------------------------------------------------------------------
# Write-ahead journal
# ----------------------------------------------------------------------
class JournalReplay:
    """Result of replaying one journal segment.

    ``records`` are the complete, checksum-verified entries;
    ``good_bytes`` is the byte length of the valid prefix; ``torn`` is
    True when trailing bytes past that prefix had to be discarded (a
    record whose header, payload, or CRC the crash cut short).
    """

    def __init__(self, records: list[tuple[str, str]], good_bytes: int, torn: bool) -> None:
        self.records = records
        self.good_bytes = good_bytes
        self.torn = torn


class Journal:
    """One append-only WAL segment of ingested records.

    Record framing mirrors the network protocol's length-prefix
    discipline, plus a CRC32 so a torn tail is *detected*, never
    guessed at::

        +---------+---------+----------------------+
        | len: >I | crc: >I |  JSON payload (UTF-8) |
        +---------+---------+----------------------+

    Appends go through :class:`FaultFS` barriers ``journal.append``
    and ``journal.sync``; :meth:`append` returns only after the fsync,
    so its return *is* the durability acknowledgement.
    """

    def __init__(self, path: str | Path, fs: FaultFS) -> None:
        self.path = Path(path)
        self.fs = fs
        self.count = 0
        if not self.path.exists():
            written = fs.append(self.path, _WAL_MAGIC, "journal.create")
            if written < len(_WAL_MAGIC):
                raise _short_write("journal.create", written, len(_WAL_MAGIC))
            fs.fsync(self.path, "journal.create-sync")
        else:
            self.count = len(self.replay(self.path).records)

    def append(self, name: str, sequence: str) -> int:
        """Durably append one record; returns its segment-local index.

        Raises ``OSError`` on disk failure (including a short write,
        which leaves a torn-but-detectable tail for recovery to cut).
        """
        payload = json.dumps(
            {"name": name, "sequence": sequence}, separators=(",", ":")
        ).encode("utf-8")
        frame = _REC_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        written = self.fs.append(self.path, frame, "journal.append")
        if written < len(frame):
            raise _short_write("journal.append", written, len(frame))
        self.fs.fsync(self.path, "journal.sync")
        self.count += 1
        return self.count - 1

    @staticmethod
    def replay(path: str | Path) -> JournalReplay:
        """Replay a segment, stopping at the first torn record.

        Never raises on a damaged tail — a crash can legitimately cut
        a record anywhere — but a file too short to hold the magic, or
        holding the wrong magic, is :class:`IngestError`: that is not
        a torn append, it is not a journal.
        """
        data = Path(path).read_bytes()
        if len(data) < len(_WAL_MAGIC):
            if _WAL_MAGIC.startswith(data):
                # Crash mid-create: a torn prefix of the magic itself.
                # good_bytes=0 tells recovery to recreate the segment.
                return JournalReplay([], 0, True)
            raise IngestError(f"{path}: not a repro WAL segment")
        if not data.startswith(_WAL_MAGIC):
            raise IngestError(f"{path}: not a repro WAL segment")
        if len(data) == len(_WAL_MAGIC):
            return JournalReplay([], len(data), False)
        records: list[tuple[str, str]] = []
        offset = len(_WAL_MAGIC)
        while offset < len(data):
            header = data[offset : offset + _REC_HEADER.size]
            if len(header) < _REC_HEADER.size:
                return JournalReplay(records, offset, True)
            length, crc = _REC_HEADER.unpack(header)
            body = data[offset + _REC_HEADER.size : offset + _REC_HEADER.size + length]
            if len(body) < length or zlib.crc32(body) != crc:
                return JournalReplay(records, offset, True)
            try:
                entry = json.loads(body.decode("utf-8"))
                records.append((str(entry["name"]), str(entry["sequence"])))
            except (UnicodeDecodeError, ValueError, KeyError, TypeError):
                # CRC matched but content is garbage: treat as torn at
                # this record — nothing past a bad record is trusted.
                return JournalReplay(records, offset, True)
            offset += _REC_HEADER.size + length
        return JournalReplay(records, offset, False)


def _short_write(label: str, written: int, wanted: int) -> OSError:
    import errno

    return OSError(
        errno.ENOSPC, f"short write at {label}: {written} of {wanted} bytes"
    )


# ----------------------------------------------------------------------
# Index combination (base + delta shards)
# ----------------------------------------------------------------------
def combine_indexes(
    parts: Sequence[DatabaseIndex], source: str | None = None
) -> DatabaseIndex:
    """One index over ``parts`` in order: base first, then each delta.

    Shard ids and record starts are re-based so the combined index has
    the exact record numbering an index built from the concatenated
    records would — which is what makes combined rankings bit-identical
    to a from-scratch rebuild (ranking ties break on global record
    index).  Quarantined shards stay quarantined under their new ids.
    """
    if not parts:
        raise ValueError("combine_indexes needs at least one part")
    shards: list[Shard] = []
    degraded: list[int] = []
    record_offset = 0
    digest = hashlib.sha256()
    for part in parts:
        id_offset = len(shards)
        bad = set(part.degraded)
        for shard in part.shards:
            new_id = id_offset + shard.shard_id
            shards.append(
                replace(shard, shard_id=new_id, start=record_offset + shard.start)
            )
            if shard.shard_id in bad:
                degraded.append(new_id)
        record_offset += part.record_count
        digest.update(part.version.encode("ascii"))
        digest.update(b"\x00")
    if len(parts) == 1:
        return parts[0]
    return DatabaseIndex(
        shards,
        version=digest.hexdigest(),
        source=source or f"{parts[0].source}+{len(parts) - 1} deltas",
        degraded=degraded,
    )


# ----------------------------------------------------------------------
# The lifecycle
# ----------------------------------------------------------------------
class IngestService:
    """Crash-safe streaming ingest bolted onto an :class:`IndexManager`.

    On construction the service *recovers* the ingest directory (see
    the module docstring), takes over the manager's loader so every
    reload serves base + live deltas, and swaps the recovered state
    live.  ``manager``'s pre-existing loader (or, failing that, its
    current index) becomes the immutable base.

    All public methods are thread-safe; the lifecycle itself is
    serialized by one lock, so a seal/compact/publish cycle is atomic
    with respect to concurrent ingests.
    """

    def __init__(
        self,
        manager: IndexManager,
        directory: str | Path,
        *,
        base_loader: Callable[[], DatabaseIndex] | None = None,
        seal_every: int = 64,
        fs: FaultFS | None = None,
        obs: Observability | None = None,
    ) -> None:
        if seal_every < 1:
            raise ValueError(f"seal_every must be positive, got {seal_every}")
        self.manager = manager
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.seal_every = seal_every
        self.fs = fs if fs is not None else FaultFS()
        self.obs = obs if obs is not None else NULL_OBS
        self.read_only = False
        self.read_only_reason: str | None = None
        self.acked = 0  # records acknowledged this process lifetime
        self.recovered_records = 0
        self.recovery_seconds = 0.0
        self._lock = threading.Lock()
        self._deltas: list[dict] = []
        self._next_segment = 1
        self._journal: Journal | None = None
        if base_loader is not None:
            self._base_loader = base_loader
        elif manager.loader is not None:
            self._base_loader = manager.loader
        else:
            base_index = manager.current()[0]
            self._base_loader = lambda: base_index
        registry = self.obs.registry
        self._m_ingested = registry.counter(
            "ingest_records_total", "Records durably acknowledged by ingest"
        )
        self._m_seals = registry.counter(
            "ingest_seals_total", "Journal segments sealed and compacted"
        )
        self._m_quarantined = registry.counter(
            "ingest_deltas_quarantined_total",
            "Delta shards refused at load for digest mismatch",
        )
        self._g_read_only = registry.gauge(
            "ingest_read_only", "1 when ingest is suspended on disk failure"
        )
        self._g_pending = registry.gauge(
            "ingest_pending_records", "Journal records not yet compacted"
        )
        self._g_recovery = registry.gauge(
            "ingest_recovery_seconds", "Wall time of the last startup recovery"
        )
        self.recover()

    # -- paths ----------------------------------------------------------
    def _segment_path(self, segment: int, sealed: bool = False) -> Path:
        suffix = "sealed" if sealed else "log"
        return self.directory / f"wal-{segment:010d}.{suffix}"

    def _delta_path(self, segment: int) -> Path:
        return self.directory / f"delta-{segment:010d}.npz"

    @property
    def _manifest_path(self) -> Path:
        return self.directory / _MANIFEST_NAME

    # -- recovery -------------------------------------------------------
    def recover(self) -> None:
        """Replay the directory into a consistent, served state."""
        started = time.perf_counter()
        with self._lock:
            for tmp in self.directory.glob("*.tmp"):
                tmp.unlink(missing_ok=True)
            self._deltas, compacted = self._read_manifest()
            # Retire any segment the manifest already covers (crash
            # landed between manifest publish and segment removal).
            pending: list[tuple[int, Path]] = []
            active: list[tuple[int, Path]] = []
            for path in sorted(self.directory.glob("wal-*")):
                segment = int(path.stem.split("-")[1])
                if segment in compacted:
                    self.fs.remove(path, "segment.retire")
                elif path.suffix == ".sealed":
                    pending.append((segment, path))
                else:
                    active.append((segment, path))
            if len(active) > 1:
                raise IngestError(
                    f"{self.directory}: {len(active)} active journal segments"
                )
            # Compact sealed segments the crashed process never finished.
            for segment, path in sorted(pending):
                replayed = Journal.replay(path)
                if replayed.torn:
                    # Sealing happens strictly after every record of the
                    # segment was fsynced; a torn sealed segment means
                    # the disk dropped acknowledged bytes.  Cut the tail
                    # and serve what survived rather than refusing all.
                    if replayed.good_bytes >= len(_WAL_MAGIC):
                        self.fs.truncate(path, replayed.good_bytes)
                    self.obs.log.warning(
                        "ingest.sealed-segment-torn",
                        segment=segment,
                        kept=len(replayed.records),
                    )
                self._compact(segment, path, replayed.records)
            # Repair the active segment's torn tail and adopt it.
            highest = max(
                [seg for seg, _ in active]
                + [entry["segment"] for entry in self._deltas]
                + [0]
            )
            if active:
                segment, path = active[0]
                replayed = Journal.replay(path)
                if replayed.torn:
                    if replayed.good_bytes >= len(_WAL_MAGIC):
                        self.fs.truncate(path, replayed.good_bytes)
                    else:
                        # Crash mid-create: nothing durable yet, start over.
                        path.unlink(missing_ok=True)
                    self.obs.log.warning(
                        "ingest.torn-tail-truncated",
                        segment=segment,
                        good_bytes=replayed.good_bytes,
                        kept=len(replayed.records),
                    )
                self._journal = Journal(path, self.fs)
                self._next_segment = segment
                self.recovered_records = len(replayed.records)
            else:
                self._next_segment = highest + 1
                self._journal = Journal(
                    self._segment_path(self._next_segment), self.fs
                )
                self.recovered_records = 0
            # Land on a consistent generation: base + every live delta.
            # Acknowledged records recovered from the active journal are
            # compacted right now — an ack means *served after restart*,
            # not "served once enough traffic arrives to trip a seal".
            self.manager.loader = self._load_combined
            if self._journal.count:
                try:
                    self._seal_locked()
                except OSError as exc:
                    # Disk still failing at restart: serve what loads,
                    # keep the journal intact, refuse further ingests.
                    self._enter_read_only(exc)
            self.manager.reload()
            self._g_pending.set(self._journal.count)
        self.recovery_seconds = time.perf_counter() - started
        self._g_recovery.set(self.recovery_seconds)
        self.obs.log.info(
            "ingest.recovered",
            deltas=len(self._deltas),
            journal_records=self._journal.count,
            seconds=round(self.recovery_seconds, 6),
        )

    def _read_manifest(self) -> tuple[list[dict], set[int]]:
        path = self._manifest_path
        if not path.exists():
            return [], set()
        try:
            manifest = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise IngestError(f"{path}: unreadable ingest manifest ({exc})") from None
        if manifest.get("magic") != _MANIFEST_MAGIC:
            raise IngestError(f"{path}: not a repro ingest manifest")
        deltas = [
            {
                "segment": int(entry["segment"]),
                "file": str(entry["file"]),
                "records": int(entry["records"]),
            }
            for entry in manifest.get("deltas", [])
        ]
        return deltas, {entry["segment"] for entry in deltas}

    def _write_manifest(self) -> None:
        manifest = {
            "magic": _MANIFEST_MAGIC,
            "format": INGEST_FORMAT,
            "deltas": self._deltas,
        }
        self.fs.publish(
            self._manifest_path,
            (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode("utf-8"),
            "manifest",
        )

    # -- serving view ---------------------------------------------------
    def _load_combined(self) -> DatabaseIndex:
        parts = [self._base_loader()]
        for entry in list(self._deltas):
            path = self.directory / entry["file"]
            try:
                delta = DatabaseIndex.load(path, on_corrupt="quarantine", obs=self.obs)
            except (IndexFormatError, IndexCorrupt, OSError) as exc:
                # The delta file itself is unreadable (digest-failing
                # content, truncated npz, vanished file).  Refuse to
                # serve it — a placeholder of fully quarantined shards
                # keeps record numbering and surfaces partial coverage
                # through the existing degraded machinery.
                self._m_quarantined.inc()
                self.obs.log.error(
                    "ingest.delta-quarantined", file=entry["file"], error=str(exc)
                )
                delta = _quarantined_placeholder(entry)
            parts.append(delta)
        return combine_indexes(parts)

    # -- the write path -------------------------------------------------
    def ingest(self, name: str, sequence: str) -> dict[str, object]:
        """Durably accept one record; seal/compact/publish when due.

        Returns an ack payload (segment, segment-local sequence,
        pending count, live generation).  Raises
        :class:`IngestReadOnly` once the disk has failed, and
        ``ValueError`` (→ ``bad-request``) on malformed input.
        """
        if not name or "\n" in name:
            raise ValueError(f"record name must be newline-free and non-empty: {name!r}")
        if not sequence:
            raise ValueError("record sequence must be non-empty")
        try:
            decode(encode(sequence))
        except (ValueError, UnicodeEncodeError):
            raise ValueError(f"sequence is not ASCII: {sequence[:40]!r}") from None
        with self._lock:
            self._check_writable()
            try:
                seq = self._journal.append(name, sequence)
                published = None
                if self._journal.count >= self.seal_every:
                    published = self._seal_locked()
            except OSError as exc:
                self._enter_read_only(exc)
                raise IngestReadOnly(
                    f"ingest suspended: {self.read_only_reason}"
                ) from None
            self.acked += 1
            self._m_ingested.inc()
            self._g_pending.set(self._journal.count)
            return {
                "segment": self._next_segment if published is None else published,
                "seq": seq,
                "pending": self._journal.count,
                "generation": self.manager.generation,
            }

    def seal(self) -> int | None:
        """Force-seal the active segment (flush without waiting for
        ``seal_every``); returns the sealed segment id, or None when
        the journal holds nothing."""
        with self._lock:
            self._check_writable()
            try:
                sealed = self._seal_locked()
            except OSError as exc:
                self._enter_read_only(exc)
                raise IngestReadOnly(
                    f"ingest suspended: {self.read_only_reason}"
                ) from None
            self._g_pending.set(self._journal.count)
            return sealed

    def _seal_locked(self) -> int | None:
        if self._journal.count == 0:
            return None
        segment = self._next_segment
        active = self._segment_path(segment)
        sealed = self._segment_path(segment, sealed=True)
        # Seal: rename is the commit point; every record in the file is
        # already fsynced, so the sealed segment is complete by
        # construction.
        self.fs.replace(active, sealed, "seal.rename")
        self.fs.fsync_dir(self.directory, "seal.dirsync")
        # New active segment *before* compaction: if compaction crashes,
        # recovery finds a sealed segment plus an empty active one.
        self._next_segment = segment + 1
        self._journal = Journal(self._segment_path(self._next_segment), self.fs)
        records = Journal.replay(sealed).records
        self._compact(segment, sealed, records)
        self.manager.reload()
        return segment

    def _compact(self, segment: int, sealed_path: Path, records: list[tuple[str, str]]) -> None:
        """Sealed segment → delta shard → manifest → retire segment."""
        if records:
            delta_path = self._delta_path(segment)
            index = DatabaseIndex.build(
                records, shards=1, source=f"delta-{segment:010d}"
            )
            self.fs.publish(delta_path, _index_bytes(index), "delta")
            self._deltas.append(
                {
                    "segment": segment,
                    "file": delta_path.name,
                    "records": len(records),
                }
            )
            self._write_manifest()
        self.fs.remove(sealed_path, "segment.retire")
        self._m_seals.inc()
        self.obs.log.info(
            "ingest.compacted", segment=segment, records=len(records)
        )

    # -- read-only degradation -----------------------------------------
    def _check_writable(self) -> None:
        if self.read_only:
            raise IngestReadOnly(f"ingest suspended: {self.read_only_reason}")

    def _enter_read_only(self, exc: OSError) -> None:
        self.read_only = True
        self.read_only_reason = str(exc)
        self._g_read_only.set(1)
        self.obs.log.error("ingest.read-only", error=str(exc))

    def resume(self) -> None:
        """Clear read-only after the operator fixed the disk."""
        with self._lock:
            self.read_only = False
            self.read_only_reason = None
            self._g_read_only.set(0)
            self.obs.log.info("ingest.resumed")

    # -- introspection --------------------------------------------------
    @property
    def pending(self) -> int:
        """Acknowledged records not yet compacted into a delta."""
        journal = self._journal
        return journal.count if journal is not None else 0

    def served_names(self) -> Iterator[str]:
        """Names of every record the live generation serves."""
        index = self.manager.current()[0]
        for shard in index.active_shards:
            yield from shard.names

    def describe(self) -> dict[str, object]:
        return {
            "directory": str(self.directory),
            "read_only": self.read_only,
            "read_only_reason": self.read_only_reason,
            "acked": self.acked,
            "pending": self.pending,
            "deltas": len(self._deltas),
            "delta_records": sum(e["records"] for e in self._deltas),
            "seal_every": self.seal_every,
            "recovery_seconds": round(self.recovery_seconds, 6),
        }


def _index_bytes(index: DatabaseIndex) -> bytes:
    """A saved index's exact npz bytes, without touching disk twice."""
    buffer = io.BytesIO()
    # DatabaseIndex.save writes atomically through the real filesystem;
    # the ingest path needs the bytes so FaultFS can own every barrier.
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-delta-") as scratch:
        path = Path(scratch) / "delta.npz"
        index.save(path)
        buffer.write(path.read_bytes())
    return buffer.getvalue()


def _quarantined_placeholder(entry: dict) -> DatabaseIndex:
    """A stand-in for an unreadable delta: right record count, every
    shard quarantined, so numbering holds and coverage reports the
    loss."""
    count = int(entry["records"])
    names = tuple(f"<lost:{entry['file']}:{k}>" for k in range(count))
    shard = Shard(
        shard_id=0,
        start=0,
        names=names,
        offsets=np.zeros(count + 1, dtype=np.int64),
        payload=np.zeros(0, dtype=np.uint8),
    )
    return DatabaseIndex(
        [shard],
        version=f"lost-{entry['file']}",
        source=f"<quarantined {entry['file']}>",
        degraded=[0],
    )
