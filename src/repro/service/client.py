"""Client SDK for the networked search service.

Two call styles over the same wire protocol
(:mod:`repro.service.protocol`):

* :class:`SearchClient` — synchronous, blocking sockets, a small
  connection pool, and :class:`~repro.service.resilience.RetryPolicy`
  -driven retries on transient failures (connection loss, protocol
  breakage, ``overloaded`` rejections).  ``search()`` returns the very
  same :class:`~repro.service.engine.SearchResponse` shape the
  in-process engine yields — rankings, coverage, degraded-shard set,
  per-request metrics — so code written against
  ``SearchEngine.search`` ports by swapping the object.
* :class:`AsyncSearchClient` — asyncio, one connection, unlimited
  pipelining: every request gets an id, a background reader task
  resolves the matching future as response frames arrive (in any
  order).

Error frames are raised as their taxonomy classes
(:func:`~repro.service.protocol.error_for_code`): a remote
``bad-request`` raises :class:`~repro.service.resilience.BadRequest`,
which is also a ``ValueError`` — the same exception contract the
in-process engine has.  Taxonomy errors are *answers*, not transport
failures, so they are never retried (except ``overloaded``, which is
the server explicitly saying "retry later").
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from typing import Callable, Iterable, Mapping, Sequence

from ..obs import NULL_OBS, Observability
from . import QueryOptions, resolve_query_options
from .engine import SearchResponse
from .guard import CircuitBreaker, HedgePolicy
from .resilience import Overloaded, RetryPolicy, ServiceError
from . import protocol

__all__ = ["SearchClient", "AsyncSearchClient"]

#: Errors worth reconnect-and-retry: the transport broke, not the request.
_TRANSPORT_ERRORS = (ConnectionError, OSError, EOFError, protocol.ProtocolError)


def _split_address(host: str, port: int | None) -> tuple[str, int]:
    """Accept ``("host", port)`` or a single ``"host:port"`` string."""
    if port is not None:
        return host, port
    head, sep, tail = host.rpartition(":")
    if not sep:
        raise ValueError(f"address {host!r} needs a port (host:port)")
    try:
        return head, int(tail)
    except ValueError:
        raise ValueError(f"address {host!r} has a non-integer port") from None


class _Connection:
    """One blocking socket that has completed the hello handshake.

    ``version`` is the protocol version the hello negotiated; frames
    sent on this connection are encoded for it (a v1 server never sees
    the v2-only ``deadline_ms`` key or verbs).
    """

    def __init__(self, host: str, port: int, timeout: float | None) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout)
        try:
            self.send(protocol.hello_frame())
            self.version = protocol.check_hello_reply(self.recv())
        except BaseException:
            self.close()
            raise

    def send(self, frame: dict) -> None:
        self.sock.sendall(protocol.encode_frame(frame))

    def _read_exact(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self.sock.recv(remaining)
            if not chunk:
                raise EOFError(f"server closed the connection ({n - remaining} of {n} bytes)")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv(self) -> dict:
        header = self._read_exact(protocol.HEADER.size)
        return protocol.decode_frame(self._read_exact(protocol.frame_length(header)))

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass


class SearchClient:
    """Synchronous client with connection pooling and retries.

    Parameters
    ----------
    host, port:
        Server address; ``SearchClient("127.0.0.1:9876")`` also works.
    defaults:
        Client-side default :class:`~repro.service.QueryOptions`
        applied when ``search()`` is called without options.
    retry:
        :class:`~repro.service.resilience.RetryPolicy` for transient
        failures; defaults to ``RetryPolicy(retries=2)``.  Taxonomy
        errors other than ``overloaded`` are answers and never retried.
    pool_size:
        Connections kept open between calls (grown on demand, excess
        closed on release).
    timeout:
        Socket timeout per blocking operation, seconds.
    breaker:
        Optional :class:`~repro.service.guard.CircuitBreaker`.  Every
        network attempt asks the breaker for admission first: an open
        circuit raises :class:`~repro.service.guard.CircuitOpen`
        without touching the socket.  Failures are recorded per the
        taxonomy (``bad-request`` answers are *successes* for breaker
        purposes — they say nothing about endpoint health).
    hedge:
        Optional :class:`~repro.service.guard.HedgePolicy`.  When the
        policy can name a delay, ``search()`` that has not answered
        within it issues a duplicate request on a second connection
        and the first answer wins.
    obs:
        Observability bundle; meters hedges and adopts the breaker
        (when the breaker has no live bundle of its own).
    connection_factory:
        Hook replacing ``_Connection`` — how the chaos harness splices
        fault-injecting sockets under a real client.  Must accept
        ``(host, port, timeout)`` and expose ``send``/``recv``/
        ``close`` plus a ``version`` attribute.
    """

    def __init__(
        self,
        host: str,
        port: int | None = None,
        defaults: QueryOptions | None = None,
        retry: RetryPolicy | None = None,
        pool_size: int = 2,
        timeout: float | None = 30.0,
        breaker: CircuitBreaker | None = None,
        hedge: HedgePolicy | None = None,
        obs: Observability | None = None,
        connection_factory: Callable[..., _Connection] | None = None,
    ) -> None:
        self.host, self.port = _split_address(host, port)
        self.defaults = defaults if defaults is not None else QueryOptions()
        self.retry = retry if retry is not None else RetryPolicy(retries=2)
        self.pool_size = pool_size
        self.timeout = timeout
        self.breaker = breaker
        self.hedge = hedge
        self.obs = obs if obs is not None else NULL_OBS
        if breaker is not None and self.obs.enabled and not breaker.obs.enabled:
            breaker.bind_obs(self.obs)
        self._m_hedges = self.obs.registry.counter(
            "client_hedges_total", "Hedged duplicate requests issued"
        )
        self._m_hedge_wins = self.obs.registry.counter(
            "client_hedge_wins_total", "Hedged requests that answered first"
        )
        self._connect = (
            connection_factory if connection_factory is not None else _Connection
        )
        self._pool: list[_Connection] = []
        self._lock = threading.Lock()
        self._next_id = 0

    # -- connection pool ------------------------------------------------
    def _acquire(self) -> _Connection:
        with self._lock:
            if self._pool:
                return self._pool.pop()
        return self._connect(self.host, self.port, self.timeout)

    def _release(self, conn: _Connection) -> None:
        with self._lock:
            if len(self._pool) < self.pool_size:
                self._pool.append(conn)
                return
        conn.close()

    def close(self) -> None:
        """Close every pooled connection."""
        with self._lock:
            pool, self._pool = self._pool, []
        for conn in pool:
            conn.close()

    def __enter__(self) -> "SearchClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _request_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    # -- request plumbing -----------------------------------------------
    def _roundtrip(self, build: Callable[[int], dict], token: str) -> dict:
        """Send one frame, read its reply; retry transport failures.

        ``build`` maps the connection's negotiated protocol version to
        the frame to send — the frame cannot be built earlier because
        a v1 server must never see v2-only keys.

        A broken connection is discarded and a fresh one dialed on the
        next attempt; ``overloaded`` answers back off via the retry
        policy's deterministic jittered delays.  The breaker (when
        configured) gates every attempt and is fed every outcome.
        """
        last: BaseException | None = None
        for attempt in range(self.retry.retries + 1):
            if attempt:
                time.sleep(self.retry.delay(attempt - 1, token))
            if self.breaker is not None:
                self.breaker.allow()
            conn: _Connection | None = None
            try:
                conn = self._acquire()
                conn.send(build(conn.version))
                reply = conn.recv()
            except _TRANSPORT_ERRORS as exc:
                if conn is not None:
                    conn.close()
                if self.breaker is not None:
                    self.breaker.record_failure(exc)
                last = exc
                continue
            self._release(conn)
            if reply.get("type") == "error":
                error = protocol.error_for_code(
                    reply.get("code", "internal"), reply.get("message", "")
                )
                if self.breaker is not None:
                    self.breaker.record_failure(error)
                if isinstance(error, Overloaded) and attempt < self.retry.retries:
                    last = error
                    continue
                raise error
            if self.breaker is not None:
                self.breaker.record_success()
            return reply
        assert last is not None
        raise last

    # -- public API -----------------------------------------------------
    def search(
        self,
        query: str,
        options: QueryOptions | int | None = None,
        *,
        top: int | None = None,
        min_score: int | None = None,
        retrieve: int | None = None,
        trace_id: str | None = None,
        parent_span: str | None = None,
    ) -> SearchResponse:
        """One remote search; same signature family as ``SearchEngine.search``.

        The legacy ``top=``/``min_score=``/``retrieve=`` keywords work
        (with a :class:`DeprecationWarning`), exactly as on the engine.

        ``trace_id``/``parent_span`` propagate a distributed trace
        context so the server's span tree joins the caller's trace;
        when omitted, the context of the span currently open on this
        thread (if any) is injected automatically.
        """
        resolved = resolve_query_options(
            options, self.defaults, top=top, min_score=min_score, retrieve=retrieve
        )
        if trace_id is None:
            current = self.obs.tracer.current()
            if current is not None and current.trace_id:
                trace_id = current.trace_id
                parent_span = parent_span or current.name
        hedge_after = self.hedge.delay() if self.hedge is not None else None
        if hedge_after is None:
            return self._search_once(query, resolved, trace_id, parent_span)
        return self._search_hedged(query, resolved, hedge_after, trace_id, parent_span)

    def _search_once(
        self,
        query: str,
        resolved: QueryOptions,
        trace_id: str | None = None,
        parent_span: str | None = None,
    ) -> SearchResponse:
        request_id = self._request_id()
        t0 = time.monotonic()
        reply = self._roundtrip(
            lambda version: protocol.search_request(
                request_id,
                query,
                resolved,
                version,
                trace_id=trace_id,
                parent_span=parent_span,
            ),
            token=f"search-{request_id}",
        )
        if self.hedge is not None:
            self.hedge.observe(time.monotonic() - t0)
        return self._parse_search_reply(reply, request_id)

    def _search_hedged(
        self,
        query: str,
        resolved: QueryOptions,
        delay: float,
        trace_id: str | None = None,
        parent_span: str | None = None,
    ) -> SearchResponse:
        """Primary request, plus a duplicate if it is slow; first answer wins.

        Both attempts run :meth:`_search_once` on their own pooled
        connection (with their own request ids), so the loser's late
        answer lands on its own socket and is simply discarded with
        it.  If every attempt fails, the primary's error is raised.
        """
        done = threading.Event()
        lock = threading.Lock()
        state: dict = {"reply": None, "winner": None, "errors": [], "finished": 0}

        def attempt(label: str) -> None:
            try:
                response = self._search_once(query, resolved, trace_id, parent_span)
            except BaseException as exc:  # noqa: BLE001 - collected, re-raised
                with lock:
                    state["errors"].append(exc)
                    state["finished"] += 1
                done.set()
                return
            with lock:
                if state["reply"] is None:
                    state["reply"] = response
                    state["winner"] = label
                state["finished"] += 1
            done.set()

        threads = [threading.Thread(target=attempt, args=("primary",), daemon=True)]
        threads[0].start()
        if not done.wait(delay):
            self._m_hedges.inc()
            self.obs.log.debug("client.hedge", after=f"{delay:.4f}s")
            hedge_thread = threading.Thread(
                target=attempt, args=("hedge",), daemon=True
            )
            threads.append(hedge_thread)
            hedge_thread.start()
        while True:
            done.wait()
            with lock:
                if state["reply"] is not None:
                    if state["winner"] == "hedge":
                        self._m_hedge_wins.inc()
                    return state["reply"]
                if state["finished"] >= len(threads):
                    raise state["errors"][0]
                done.clear()

    @staticmethod
    def _parse_search_reply(reply: dict, request_id: int) -> SearchResponse:
        if reply.get("id") != request_id:
            raise protocol.ProtocolError(
                f"response id {reply.get('id')!r} does not match request {request_id}"
            )
        return protocol.parse_response(reply)

    def search_pipelined(
        self,
        queries: Sequence[str],
        options: QueryOptions | None = None,
        trace_id: str | None = None,
        parent_span: str | None = None,
    ) -> list[SearchResponse | ServiceError]:
        """Send every query on one connection before reading any reply.

        This is the batch-friendly path: all frames land inside the
        server's micro-batching window, so N queries cost one sweep.
        Returns one entry per query, in order — a
        :class:`SearchResponse`, or the taxonomy error that query
        earned (a failing query must not mask its neighbours'
        answers).  Transport failures raise after closing the
        connection; no retry, since partial batches are ambiguous.
        """
        resolved = resolve_query_options(options, self.defaults)
        ids = [self._request_id() for _ in queries]
        conn = self._acquire()
        try:
            for request_id, query in zip(ids, queries):
                conn.send(
                    protocol.search_request(
                        request_id,
                        query,
                        resolved,
                        conn.version,
                        trace_id=trace_id,
                        parent_span=parent_span,
                    )
                )
            by_id: dict[int, dict] = {}
            for _ in ids:
                reply = conn.recv()
                reply_id = reply.get("id")
                if not isinstance(reply_id, int) or reply_id not in set(ids):
                    raise protocol.ProtocolError(
                        f"unexpected response id {reply_id!r} in pipelined batch"
                    )
                by_id[reply_id] = reply
        except _TRANSPORT_ERRORS:
            conn.close()
            raise
        self._release(conn)
        results: list[SearchResponse | ServiceError] = []
        for request_id in ids:
            reply = by_id[request_id]
            if reply.get("type") == "error":
                results.append(
                    protocol.error_for_code(
                        reply.get("code", "internal"), reply.get("message", "")
                    )
                )
            else:
                results.append(protocol.parse_response(reply))
        return results

    def _admin(self, verb: str, arg: str | None = None) -> dict:
        request_id = self._request_id()
        reply = self._roundtrip(
            lambda version: protocol.admin_request(request_id, verb, arg, version),
            token=f"{verb}-{request_id}",
        )
        if reply.get("type") != "result" or reply.get("id") != request_id:
            raise protocol.ProtocolError(
                f"expected a result frame for {verb!r}, got {reply.get('type')!r}"
            )
        payload = reply.get("payload")
        if not isinstance(payload, dict):
            raise protocol.ProtocolError(f"{verb!r} result payload must be an object")
        return payload

    def stats(self) -> Mapping[str, str]:
        """The server's engine/index/cache summary plus net gauges."""
        return self._admin("stats")["stats"]

    def metrics(self) -> str:
        """The server's Prometheus text exposition."""
        return self._admin("metrics")["text"]

    def trace(self, trace_id: str | None = None) -> str:
        """List recent traces, or render one span tree by id."""
        return self._admin("trace", trace_id)["text"]

    def trace_tree(self, trace_id: str) -> dict | None:
        """One trace as a structured span-tree payload (None if absent).

        This is the stitching path: a coordinator fetches each node's
        half of a distributed trace by the shared id and grafts it
        under its own fan-out span.  Servers that predate the ``tree``
        payload (or no longer hold the id) yield ``None``.
        """
        try:
            payload = self._admin("trace", trace_id)
        except ServiceError:
            return None
        tree = payload.get("tree")
        return tree if isinstance(tree, dict) else None

    def ping(self) -> bool:
        """Round-trip liveness check."""
        return bool(self._admin("ping").get("pong"))

    def health(self) -> Mapping[str, object]:
        """The server's liveness/readiness snapshot (protocol v2+)."""
        return self._admin("health")["health"]

    def reload(self) -> int:
        """Ask the server to hot-reload its index; returns the new generation."""
        return int(self._admin("reload")["generation"])

    def ingest(self, name: str, sequence: str) -> Mapping[str, object]:
        """Stream one record into the server's write-ahead journal.

        The acknowledgement means the record is fsynced into the
        server's journal — durable across a crash — not yet that it is
        searchable; the server seals and publishes it within one
        segment rotation.  Transport retries make ingest at-least-once:
        a retried record may land twice in the database, never zero
        times once acked.  A full or failing server disk raises
        :class:`~repro.service.resilience.ServiceError` with code
        ``read-only`` (protocol v2+ only).
        """
        request_id = self._request_id()
        reply = self._roundtrip(
            lambda version: protocol.ingest_request(
                request_id, name, sequence, version
            ),
            token=f"ingest-{request_id}",
        )
        if reply.get("type") != "result" or reply.get("id") != request_id:
            raise protocol.ProtocolError(
                f"expected a result frame for ingest, got {reply.get('type')!r}"
            )
        payload = reply.get("payload")
        ack = payload.get("ingest") if isinstance(payload, dict) else None
        if not isinstance(ack, dict):
            raise protocol.ProtocolError("ingest result payload must be an object")
        return ack


class AsyncSearchClient:
    """Asyncio client: one connection, id-matched pipelining.

    Usage::

        client = await AsyncSearchClient.connect(host, port)
        try:
            responses = await asyncio.gather(
                *(client.search(q) for q in queries)
            )
        finally:
            await client.close()

    Every in-flight request owns a future keyed by its id; a reader
    task resolves futures as frames arrive, in whatever order the
    server answers.  Connection loss fails every pending future with
    the underlying error.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        defaults: QueryOptions | None = None,
        version: int = protocol.PROTOCOL_VERSION,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.version = version
        self.defaults = defaults if defaults is not None else QueryOptions()
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._closed = False
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int | None = None,
        defaults: QueryOptions | None = None,
    ) -> "AsyncSearchClient":
        host, port = _split_address(host, port)
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(protocol.encode_frame(protocol.hello_frame()))
        await writer.drain()
        header = await reader.readexactly(protocol.HEADER.size)
        body = await reader.readexactly(protocol.frame_length(header))
        version = protocol.check_hello_reply(protocol.decode_frame(body))
        return cls(reader, writer, defaults=defaults, version=version)

    async def _read_loop(self) -> None:
        try:
            while True:
                header = await self._reader.readexactly(protocol.HEADER.size)
                body = await self._reader.readexactly(protocol.frame_length(header))
                frame = protocol.decode_frame(body)
                future = self._pending.pop(frame.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(frame)
        except (asyncio.IncompleteReadError, ConnectionError, protocol.ProtocolError) as exc:
            self._fail_pending(exc)
        except asyncio.CancelledError:
            self._fail_pending(ConnectionError("client closed"))
            raise

    def _fail_pending(self, exc: BaseException) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(
                    ConnectionError(f"connection lost with request in flight: {exc}")
                )

    async def _roundtrip(self, frame: dict, request_id: int) -> dict:
        if self._closed:
            raise ConnectionError("client is closed")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(protocol.encode_frame(frame))
        await self._writer.drain()
        reply = await future
        if reply.get("type") == "error":
            raise protocol.error_for_code(
                reply.get("code", "internal"), reply.get("message", "")
            )
        return reply

    async def search(
        self, query: str, options: QueryOptions | None = None
    ) -> SearchResponse:
        """One remote search; pipeline freely with ``asyncio.gather``."""
        resolved = resolve_query_options(options, self.defaults)
        self._next_id += 1
        request_id = self._next_id
        reply = await self._roundtrip(
            protocol.search_request(request_id, query, resolved, self.version),
            request_id,
        )
        return protocol.parse_response(reply)

    async def _admin(self, verb: str, arg: str | None = None) -> dict:
        self._next_id += 1
        request_id = self._next_id
        reply = await self._roundtrip(
            protocol.admin_request(request_id, verb, arg, self.version), request_id
        )
        payload = reply.get("payload")
        if not isinstance(payload, dict):
            raise protocol.ProtocolError(f"{verb!r} result payload must be an object")
        return payload

    async def stats(self) -> Mapping[str, str]:
        return (await self._admin("stats"))["stats"]

    async def ping(self) -> bool:
        return bool((await self._admin("ping")).get("pong"))

    async def health(self) -> Mapping[str, object]:
        return (await self._admin("health"))["health"]

    async def close(self) -> None:
        """Cancel the reader, fail any pending requests, close the socket."""
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass
