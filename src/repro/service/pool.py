"""Worker pool mapping index shards across cores.

Each task sweeps one :class:`~repro.service.index.Shard` with the
phase-1 locate kernel — the software row sweep or a simulated
:class:`~repro.core.accelerator.SWAccelerator` — for a *batch* of
queries at once, and returns only the per-shard top-k candidate
tuples ``(score, global_index, i, j)``.  That is the paper's
deployment contract scaled out: the expensive O(m·n) sweep happens
next to the data, and "only a few bytes" per record travel back.

Correctness contract: merging per-shard candidates with the key
``(-score, global_index)`` reproduces :func:`repro.scan.scan_database`
rankings **bit-identically** — the scanner stable-sorts database-order
hits by descending score, which is exactly that total order.  A
per-shard top-k can never evict a global top-k member under a total
order, so the truncation is lossless.  The property test in
``tests/test_service_engine.py`` pins this across worker counts.

Workers are plain ``multiprocessing`` processes (fork where available,
spawn otherwise); a :class:`WorkerSpec` describes how each task builds
its kernel so accelerator state never needs to cross the process
boundary.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from ..align.scoring import LinearScoring, SubstitutionMatrix
from ..kernels import KernelBackend, HwSimBackend, available_backends, default_kernel, get_backend
from .index import DatabaseIndex

__all__ = [
    "Candidate",
    "ShardSweep",
    "WorkerSpec",
    "ShardWorkerPool",
    "merge_candidates",
    "shard_task",
]

#: ``(score, global_index, i, j)`` — the pool's wire format for one
#: database hit, deliberately tiny (the paper's three-word readout
#: plus the record id it belongs to).
Candidate = tuple[int, int, int, int]


@dataclass(frozen=True)
class WorkerSpec:
    """How a worker builds its locate kernel.

    ``kind`` names a :mod:`repro.kernels` backend, or one of two
    legacy aliases: ``"software"`` (the process-default backend —
    ``REPRO_KERNEL`` when set, else ``reference``) and
    ``"accelerator"`` (the ``hw-sim`` backend with ``elements`` /
    ``engine`` as configured).  The spec — not the kernel — is what
    crosses the process boundary, so device state is built fresh in
    each worker.
    """

    kind: str = "software"
    elements: int = 100
    engine: str = "emulator"

    def __post_init__(self) -> None:
        if self.kind not in ("software", "accelerator") and (
            self.kind not in available_backends()
        ):
            raise ValueError(
                f"unknown worker kind {self.kind!r} (use 'software', "
                f"'accelerator', or one of: {', '.join(available_backends())})"
            )
        if self.elements < 1:
            raise ValueError(f"need at least one element, got {self.elements}")

    def resolved_kernel(self) -> str:
        """The registry backend name this spec resolves to.

        Resolved at call time (not construction) so a spec pickled
        into a worker subprocess honours that process's environment.
        """
        if self.kind == "software":
            return default_kernel()
        if self.kind == "accelerator":
            return "hw-sim"
        return self.kind

    def make_backend(
        self, scheme: LinearScoring | SubstitutionMatrix
    ) -> KernelBackend:
        """The kernel backend a worker sweeps with."""
        name = self.resolved_kernel()
        if name == "hw-sim":
            # A fresh device per worker: accelerator state never
            # crosses the process boundary.
            return HwSimBackend(elements=self.elements, engine=self.engine)
        return get_backend(name)

    def make_locate(
        self, scheme: LinearScoring | SubstitutionMatrix
    ) -> Callable[..., object]:
        return self.make_backend(scheme).locate


@dataclass(frozen=True)
class ShardSweep:
    """One shard's sweep result for a batch of queries."""

    shard_id: int
    candidates: tuple[tuple[Candidate, ...], ...]  # per query
    cells: int
    records: int
    seconds: float
    worker: str


def shard_task(
    shard,
    queries: Sequence[str],
    scheme: LinearScoring | SubstitutionMatrix,
    spec: WorkerSpec,
    min_score: int,
    k: int,
) -> tuple:
    """The picklable argument tuple one shard sweep task carries.

    Shared by the plain pool and the supervised pool so both feed
    :func:`_sweep_shard` identical work — which is what keeps their
    healthy-path results byte-for-byte interchangeable.
    """
    return (
        shard.shard_id,
        shard.start,
        shard.offsets,
        shard.payload,
        tuple(queries),
        scheme,
        spec,
        min_score,
        k,
    )


def _sweep_shard(
    args: tuple,
) -> ShardSweep:
    """Sweep one shard for every query (runs inside a worker process)."""
    (shard_id, start, offsets, payload, queries, scheme, spec, min_score, k) = args
    backend = spec.make_backend(scheme)
    t0 = time.perf_counter()
    n_records = len(offsets) - 1
    records = [
        payload[int(offsets[r]) : int(offsets[r + 1])] for r in range(n_records)
    ]
    # One batched call: every query × every record of the shard in one
    # kernel invocation, so a batched backend amortizes its row sweeps
    # across the whole shard (single-pair backends fall back to the
    # equivalent pairwise loop inside ``locate_batch``).
    hits = backend.locate_batch(queries, records, scheme)
    cells = 0
    per_query: list[list[Candidate]] = [[] for _ in queries]
    for r, codes in enumerate(records):
        gidx = start + r
        for qi, query in enumerate(queries):
            cells += len(query) * len(codes)
            hit = hits[qi][r]
            if hit.score >= min_score:
                per_query[qi].append((hit.score, gidx, hit.i, hit.j))
    topk = tuple(
        tuple(heapq.nsmallest(k, cands, key=lambda c: (-c[0], c[1])))
        for cands in per_query
    )
    return ShardSweep(
        shard_id=shard_id,
        candidates=topk,
        cells=cells,
        records=n_records,
        seconds=time.perf_counter() - t0,
        worker=f"worker-{os.getpid()}",
    )


def merge_candidates(
    sweeps: Sequence[ShardSweep], n_queries: int, k: int
) -> list[list[Candidate]]:
    """Merge per-shard top-k lists into global top-k per query.

    Sorting by ``(-score, global_index)`` is the scanner's stable-sort
    order, so the merged ranking is bit-identical to a sequential
    :func:`~repro.scan.scan_database` over the same records.
    """
    merged: list[list[Candidate]] = []
    for qi in range(n_queries):
        pooled = [c for sweep in sweeps for c in sweep.candidates[qi]]
        pooled.sort(key=lambda c: (-c[0], c[1]))
        merged.append(pooled[:k])
    return merged


class ShardWorkerPool:
    """Maps shard sweeps over a process pool (or inline for 1 worker).

    A pool is created per sweep call: the fork/spawn cost is tens of
    milliseconds, far below the O(m·n) sweep it amortizes against, and
    it keeps the class free of cross-call process lifecycle.
    """

    def __init__(self, workers: int = 1, spec: WorkerSpec | None = None) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.workers = workers
        self.spec = spec if spec is not None else WorkerSpec()

    @property
    def healthy(self) -> bool:
        """The plain pool has no supervision; it is always "healthy".

        (A worker crash aborts the sweep with the raw multiprocessing
        error — use :class:`~repro.service.resilience.SupervisedWorkerPool`
        when that is not acceptable.)
        """
        return True

    @property
    def quarantined(self) -> tuple[int, ...]:
        return ()

    @staticmethod
    def _context() -> multiprocessing.context.BaseContext:
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else "spawn")

    def sweep(
        self,
        index: DatabaseIndex,
        queries: Sequence[str],
        scheme: LinearScoring | SubstitutionMatrix,
        min_score: int,
        k: int,
        deadline=None,
        spec: WorkerSpec | None = None,
    ) -> list[ShardSweep]:
        """Sweep every active shard for every query; per-shard results.

        Shards the index has quarantined at load time (see
        ``DatabaseIndex.load(..., on_corrupt="quarantine")``) are
        excluded here exactly as the supervised pool excludes them.

        ``deadline`` (a :class:`~repro.service.resilience.Deadline`) is
        enforced at shard granularity: checked before each inline shard
        sweep, and once more after a parallel map — the plain pool has
        no supervision to kill a worker mid-shard, so a deadline below
        sweep time surfaces as soon as the kernel yields control.

        ``spec`` overrides the pool's own kernel spec for this sweep
        only — the engine passes it when a request's
        ``QueryOptions.kernel`` names a different backend.
        """
        spec = spec if spec is not None else self.spec
        tasks = [
            shard_task(shard, queries, scheme, spec, min_score, k)
            for shard in index.active_shards
        ]
        if self.workers == 1 or len(tasks) <= 1:
            sweeps = []
            for task in tasks:
                if deadline is not None:
                    deadline.check("shard sweep")
                sweeps.append(_sweep_shard(task))
            return sweeps
        if deadline is not None:
            deadline.check("batch sweep")
        n_procs = min(self.workers, len(tasks))
        with self._context().Pool(processes=n_procs) as pool:
            sweeps = pool.map(_sweep_shard, tasks, chunksize=1)
        if deadline is not None:
            deadline.check("batch sweep")
        return sweeps

    @staticmethod
    def busy_seconds(sweeps: Sequence[ShardSweep]) -> dict[str, float]:
        """Total sweep seconds per worker (for utilization reporting)."""
        busy: dict[str, float] = {}
        for sweep in sweeps:
            busy[sweep.worker] = busy.get(sweep.worker, 0.0) + sweep.seconds
        return busy
