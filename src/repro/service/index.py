"""Persistent sharded database index for the search service.

The one-shot scanner (:func:`repro.scan.scan_database`) re-parses and
re-encodes the FASTA database on every call.  The database-search
engines the related work builds on the same kernel (SWAPHI's
multi-pass database search, ALAE's index-accelerated local alignment)
all preprocess the database once into a persistent structure and sweep
that; this module is the equivalent here.

A :class:`DatabaseIndex` holds the database as fixed-size **shards**:
contiguous runs of records whose sequences are pre-encoded into one
``uint8`` payload per shard (structure-of-arrays, so a shard ships to
a worker process as three flat buffers instead of thousands of Python
strings).  The index carries a **content-hash version stamp** computed
over record names and sequence bytes; the result cache keys on it, so
a rebuilt index over changed data can never serve stale rankings.

Shards default to ~256 KBP of sequence, small enough that a pool maps
them across cores with good load balance and large enough that the
per-task overhead vanishes against the O(m·n) sweep.
"""

from __future__ import annotations

import hashlib
import io
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..align.scoring import decode, encode
from ..io.atomic import atomic_write
from ..io.fasta import FastaRecord, stream_fasta
from ..parallel.sharding import even_spans

__all__ = [
    "DEFAULT_SHARD_BP",
    "INDEX_FORMAT",
    "IndexFormatError",
    "Shard",
    "DatabaseIndex",
]

#: Target encoded sequence bytes per shard.
DEFAULT_SHARD_BP = 256 * 1024

#: On-disk format revision; bumped whenever the layout changes so a
#: stale file loads as an explicit error instead of garbage.
#: Revision 2 added per-shard content hashes (``shard_hashes``) so a
#: corrupted shard is detected at load time instead of silently
#: ranking against garbage.
INDEX_FORMAT = 2

_MAGIC = "repro-index"


class IndexFormatError(ValueError):
    """The file is not a readable index of the current format."""


def _shard_digest(shard: "Shard") -> str:
    """Content hash of one shard (names + record boundaries + payload)."""
    digest = hashlib.sha256()
    digest.update("\n".join(shard.names).encode("utf-8"))
    digest.update(b"\x00")
    digest.update(np.ascontiguousarray(shard.offsets, dtype=np.int64).tobytes())
    digest.update(b"\x00")
    digest.update(np.ascontiguousarray(shard.payload, dtype=np.uint8).tobytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class Shard:
    """One contiguous run of pre-encoded database records.

    ``offsets[k]:offsets[k+1]`` delimits record ``k``'s encoded
    sequence inside ``payload``; ``start`` is the global index of the
    shard's first record, which is what lets per-shard results merge
    back into database order (the repo-wide tie-break).
    """

    shard_id: int
    start: int
    names: tuple[str, ...]
    offsets: np.ndarray
    payload: np.ndarray

    def __len__(self) -> int:
        return len(self.names)

    @property
    def bp(self) -> int:
        """Total encoded sequence length of the shard."""
        return int(self.offsets[-1])

    def record(self, k: int) -> tuple[str, np.ndarray]:
        """Name and encoded sequence of local record ``k`` (a view)."""
        return self.names[k], self.payload[int(self.offsets[k]) : int(self.offsets[k + 1])]

    def iter_records(self) -> Iterator[tuple[int, str, np.ndarray]]:
        """Yield ``(global_index, name, codes)`` for every record."""
        for k in range(len(self.names)):
            name, codes = self.record(k)
            yield self.start + k, name, codes


def _coerce(rec: FastaRecord | tuple[str, str] | str) -> tuple[str, str]:
    """The same record coercion :func:`repro.scan.scan_database` uses."""
    if isinstance(rec, FastaRecord):
        return rec.identifier, rec.sequence
    if isinstance(rec, tuple):
        return rec
    return "", rec


class DatabaseIndex:
    """Sharded, pre-encoded view of a sequence database.

    Build once with :meth:`build` / :meth:`from_fasta`, persist with
    :meth:`save` / :meth:`load`, and hand to a
    :class:`~repro.service.engine.SearchEngine`.  Record order — and
    therefore ranking tie-breaks — is exactly the input order.
    """

    def __init__(
        self,
        shards: Sequence[Shard],
        version: str,
        source: str = "<records>",
        degraded: Sequence[int] = (),
    ) -> None:
        self.shards = list(shards)
        self.version = version
        self.source = source
        #: Shard ids quarantined at load time (content-hash mismatch).
        #: Degraded shards keep their slot — record numbering and
        #: ranking tie-breaks are unchanged — but are excluded from
        #: sweeps, so responses over this index report partial coverage.
        self.degraded = tuple(sorted(set(degraded)))
        # Cumulative record starts for global-index lookup.
        self._starts = [shard.start for shard in self.shards]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        records: Iterable[FastaRecord] | Iterable[tuple[str, str]] | Sequence[str],
        shard_bp: int = DEFAULT_SHARD_BP,
        shards: int | None = None,
        source: str = "<records>",
    ) -> "DatabaseIndex":
        """Encode ``records`` into an index.

        ``shard_bp`` bounds encoded bytes per shard (the default keeps
        per-task pickling cheap).  ``shards``, when given, overrides it
        and splits the records into exactly that many near-even spans
        (by record count) — useful for benchmarks that want one shard
        per worker.
        """
        if shard_bp < 1:
            raise ValueError(f"shard_bp must be positive, got {shard_bp}")
        names: list[str] = []
        codes: list[np.ndarray] = []
        digest = hashlib.sha256()
        for rec in records:
            name, seq = _coerce(rec)
            if "\n" in name:
                raise ValueError(f"record name may not contain newlines: {name!r}")
            encoded = encode(seq)
            digest.update(name.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(encoded.tobytes())
            digest.update(b"\x01")
            names.append(name)
            codes.append(encoded)

        if shards is not None:
            if shards < 1:
                raise ValueError(f"need at least one shard, got {shards}")
            spans = even_spans(len(names), shards)
        else:
            spans = []
            lo = 0
            bp = 0
            for k, c in enumerate(codes):
                if bp >= shard_bp and k > lo:
                    spans.append((lo, k))
                    lo, bp = k, 0
                bp += len(c)
            spans.append((lo, len(names)))

        built: list[Shard] = []
        for shard_id, (lo, hi) in enumerate(spans):
            lengths = [len(c) for c in codes[lo:hi]]
            offsets = np.zeros(hi - lo + 1, dtype=np.int64)
            np.cumsum(lengths, out=offsets[1:])
            payload = (
                np.concatenate(codes[lo:hi])
                if hi > lo
                else np.zeros(0, dtype=np.uint8)
            )
            built.append(
                Shard(
                    shard_id=shard_id,
                    start=lo,
                    names=tuple(names[lo:hi]),
                    offsets=offsets,
                    payload=payload,
                )
            )
        return cls(built, version=digest.hexdigest(), source=source)

    @classmethod
    def from_fasta(
        cls,
        path: str | Path,
        shard_bp: int = DEFAULT_SHARD_BP,
        shards: int | None = None,
        alphabet: str | None = None,
    ) -> "DatabaseIndex":
        """Build an index by streaming a FASTA file record by record."""
        return cls.build(
            stream_fasta(path, alphabet), shard_bp=shard_bp, shards=shards, source=str(path)
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def record_count(self) -> int:
        return sum(len(shard) for shard in self.shards)

    @property
    def total_bp(self) -> int:
        return sum(shard.bp for shard in self.shards)

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def active_shards(self) -> list[Shard]:
        """Shards eligible for sweeping (quarantined ones excluded)."""
        if not self.degraded:
            return self.shards
        excluded = set(self.degraded)
        return [shard for shard in self.shards if shard.shard_id not in excluded]

    def cells(self, query_length: int) -> int:
        """Matrix cells one full sweep of ``query_length`` bp costs."""
        return query_length * self.total_bp

    def record(self, global_index: int) -> tuple[str, np.ndarray]:
        """Name and encoded sequence of the record at ``global_index``."""
        if not 0 <= global_index < self.record_count:
            raise IndexError(f"record {global_index} out of range")
        # Rightmost shard whose start <= global_index.
        lo, hi = 0, len(self._starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._starts[mid] <= global_index:
                lo = mid
            else:
                hi = mid - 1
        shard = self.shards[lo]
        return shard.record(global_index - shard.start)

    def sequence(self, global_index: int) -> str:
        """Decoded sequence text (for alignment retrieval)."""
        return decode(self.record(global_index)[1])

    def iter_records(self) -> Iterator[tuple[int, str, np.ndarray]]:
        for shard in self.shards:
            yield from shard.iter_records()

    def describe(self) -> dict[str, object]:
        """Summary stats for reports and the ``serve`` stats verb."""
        info: dict[str, object] = {
            "source": self.source,
            "version": self.version[:12],
            "records": self.record_count,
            "shards": self.shard_count,
            "total bp": self.total_bp,
        }
        if self.degraded:
            info["degraded shards"] = ",".join(str(s) for s in self.degraded)
        return info

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the index as a single ``.npz`` file (no pickling)."""
        meta = json.dumps(
            {
                "magic": _MAGIC,
                "format": INDEX_FORMAT,
                "version": self.version,
                "source": self.source,
            }
        )
        lengths = np.concatenate(
            [np.diff(shard.offsets) for shard in self.shards]
        ) if self.shards else np.zeros(0, dtype=np.int64)
        shard_counts = np.array([len(shard) for shard in self.shards], dtype=np.int64)
        payload = (
            np.concatenate([shard.payload for shard in self.shards])
            if self.shards
            else np.zeros(0, dtype=np.uint8)
        )
        names_blob = np.frombuffer(
            "\n".join(name for shard in self.shards for name in shard.names).encode("utf-8"),
            dtype=np.uint8,
        )
        shard_hashes = np.frombuffer(
            "\n".join(_shard_digest(shard) for shard in self.shards).encode("ascii"),
            dtype=np.uint8,
        )
        buffer = io.BytesIO()
        np.savez_compressed(
            buffer,
            meta=np.frombuffer(meta.encode("utf-8"), dtype=np.uint8),
            names_blob=names_blob,
            record_lengths=lengths.astype(np.int64),
            shard_counts=shard_counts,
            shard_hashes=shard_hashes,
            payload=payload,
        )
        # Crash-safe replacement: a process dying mid-save must never
        # leave a torn index where a complete one used to be.
        atomic_write(path, buffer.getvalue())

    @classmethod
    def load(
        cls, path: str | Path, on_corrupt: str = "raise", obs=None
    ) -> "DatabaseIndex":
        """Read an index written by :meth:`save`.

        ``obs`` is an optional :class:`~repro.obs.Observability`
        bundle; when given, the load reports its wall time and shard
        health (``index_load_seconds``, ``index_shards``,
        ``index_degraded_shards`` gauges) and logs one line per
        quarantined shard — the previously silent path an operator
        most needs to see.

        Raises :class:`IndexFormatError` when the file is not an index
        or was written by a different format revision — callers should
        rebuild from FASTA in that case.  Truncated or garbage input
        of any flavor surfaces as :class:`IndexFormatError` too, never
        as a raw NumPy/zipfile exception.

        Each shard's stored content hash is re-verified against its
        bytes.  A mismatch — bit rot, a torn write, a tampered file —
        raises :class:`~repro.service.resilience.IndexCorrupt` when
        ``on_corrupt="raise"`` (the default); with
        ``on_corrupt="quarantine"`` the damaged shards load as
        **degraded** instead: they keep their record slots (numbering
        and tie-breaks are unchanged) but are excluded from sweeps, so
        the service keeps answering with explicit partial coverage.
        """
        from ..obs import NULL_OBS
        from .resilience import IndexCorrupt

        if obs is None:
            obs = NULL_OBS
        if on_corrupt not in ("raise", "quarantine"):
            raise ValueError(
                f"on_corrupt must be 'raise' or 'quarantine', got {on_corrupt!r}"
            )
        t_load = time.perf_counter()
        try:
            with np.load(path) as data:
                arrays = {key: data[key] for key in data.files}
        except IndexFormatError:
            raise
        except Exception as exc:
            # np.load on bad input raises a zoo of types (OSError,
            # ValueError, zipfile.BadZipFile, EOFError, pickle errors);
            # all of them mean the same thing here.
            raise IndexFormatError(f"{path}: not a readable index ({exc})") from exc
        try:
            meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
        except (KeyError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise IndexFormatError(f"{path}: missing or corrupt index metadata") from exc
        if meta.get("magic") != _MAGIC:
            raise IndexFormatError(f"{path}: not a {_MAGIC} file")
        if meta.get("format") != INDEX_FORMAT:
            raise IndexFormatError(
                f"{path}: index format {meta.get('format')} != supported {INDEX_FORMAT}; rebuild"
            )
        try:
            lengths = arrays["record_lengths"].astype(np.int64)
            shard_counts = [int(c) for c in arrays["shard_counts"]]
            payload = arrays["payload"].astype(np.uint8)
            names_blob = bytes(arrays["names_blob"]).decode("utf-8")
            hash_blob = bytes(arrays["shard_hashes"]).decode("ascii")
            version = meta["version"]
        except (KeyError, UnicodeDecodeError, ValueError) as exc:
            raise IndexFormatError(f"{path}: missing or corrupt index arrays") from exc
        if sum(shard_counts) != len(lengths):
            raise IndexFormatError(f"{path}: shard record counts disagree with records")
        names = names_blob.split("\n") if len(lengths) else []
        if len(names) != len(lengths):
            raise IndexFormatError(f"{path}: name table disagrees with records")
        expected_hashes = hash_blob.split("\n") if shard_counts else []
        if len(expected_hashes) != len(shard_counts):
            raise IndexFormatError(f"{path}: shard hash table disagrees with shards")

        shards: list[Shard] = []
        degraded: list[int] = []
        rec = 0
        byte = 0
        for shard_id, count in enumerate(shard_counts):
            shard_lengths = lengths[rec : rec + count]
            offsets = np.zeros(count + 1, dtype=np.int64)
            np.cumsum(shard_lengths, out=offsets[1:])
            bp = int(offsets[-1])
            shard = Shard(
                shard_id=shard_id,
                start=rec,
                names=tuple(names[rec : rec + count]),
                offsets=offsets,
                payload=payload[byte : byte + bp],
            )
            if _shard_digest(shard) != expected_hashes[shard_id]:
                if on_corrupt == "raise":
                    raise IndexCorrupt(
                        f"{path}: shard {shard_id} content hash mismatch "
                        "(corrupt file; rebuild the index or load with "
                        "on_corrupt='quarantine')"
                    )
                degraded.append(shard_id)
                obs.log.warning(
                    "index.shard-quarantined", path=str(path), shard=shard_id
                )
            shards.append(shard)
            rec += count
            byte += bp
        if byte != len(payload):
            raise IndexFormatError(f"{path}: payload size disagrees with record lengths")
        index = cls(
            shards,
            version=version,
            source=meta.get("source", str(path)),
            degraded=degraded,
        )
        load_seconds = time.perf_counter() - t_load
        registry = obs.registry
        registry.gauge("index_load_seconds", "Wall time of the last index load").set(
            load_seconds
        )
        registry.gauge("index_shards", "Shards in the loaded index").set(
            index.shard_count
        )
        registry.gauge(
            "index_degraded_shards", "Shards quarantined at index load"
        ).set(len(degraded))
        obs.log.info(
            "index.loaded",
            path=str(path),
            records=index.record_count,
            shards=index.shard_count,
            degraded=len(degraded),
            seconds=round(load_seconds, 4),
        )
        return index

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"DatabaseIndex({self.source!r}, records={self.record_count}, "
            f"shards={self.shard_count}, bp={self.total_bp}, version={self.version[:12]})"
        )
