"""Search service: the paper's deployment model as a subsystem.

Sections 1 and 5 describe an inherently server-shaped workload — a
fixed query streamed against a multi-megabase database, only score and
coordinates returned per record.  This package turns the one-shot
:func:`repro.scan.scan_database` into that service:

* :mod:`~repro.service.index` — persistent sharded database index
  (parse + encode once, content-hash version stamp, per-shard content
  hashes verified on load, save/load);
* :mod:`~repro.service.pool` — multiprocessing worker pool sweeping
  shards with the phase-1 locate kernel, merged bit-identically to the
  sequential scanner;
* :mod:`~repro.service.resilience` — fault tolerance: the
  :class:`ServiceError` taxonomy, :class:`RetryPolicy` backoff,
  deterministic :class:`FaultPlan` injection, and the
  :class:`SupervisedWorkerPool` (worker supervision, retries, shard
  quarantine);
* :mod:`~repro.service.cache` — LRU result cache keyed by query,
  scheme and index version (partial answers are never cached);
* :mod:`~repro.service.engine` — the :class:`SearchEngine` facade:
  batched queries over one index pass, scan-equivalent semantics,
  per-request metrics, graceful degradation with explicit
  ``coverage``/``degraded_shards`` on every response;
* :mod:`~repro.service.server` — a minimal stdlib request loop
  (line protocol and queue-in / report-out) behind ``repro serve``,
  reporting failures as structured ``error <code> <message>`` lines;
* :mod:`~repro.service.protocol` — the versioned, length-prefixed
  JSON frame protocol shared byte-for-byte by the TCP server and the
  client SDK (and, for option parsing and error formatting, by the
  legacy line protocol);
* :mod:`~repro.service.net` — the asyncio TCP front-end behind
  ``repro serve --tcp``: concurrent connections, per-connection
  pipelining, bounded backpressure, cross-request micro-batching and
  graceful drain;
* :mod:`~repro.service.client` — :class:`SearchClient` /
  :class:`AsyncSearchClient`, the SDK side of the wire protocol with
  connection pooling and :class:`RetryPolicy`-driven retries;
* :mod:`~repro.service.guard` — cross-layer robustness:
  :class:`CircuitBreaker` (per-endpoint fail-fast keyed on the error
  taxonomy), :class:`HedgePolicy` (tail-latency duplicate requests),
  :class:`IndexManager` (generational hot index reload under live
  traffic), plus the :class:`Deadline`/:class:`DeadlineExceeded`
  budget machinery threaded through every layer above;
* :mod:`~repro.service.chaos` — deterministic chaos harness driving a
  real TCP server through seeded fault schedules while asserting the
  service's invariants;
* :mod:`~repro.service.ingest` — crash-safe streaming ingest: a
  CRC-framed write-ahead journal (fsync before ack), sealed segments
  compacted into delta shards published atomically through
  :class:`IndexManager`, startup recovery that replays the journal and
  quarantines digest-failing deltas, and an injectable
  :class:`~repro.service.resilience.FaultFS` whose labeled crash
  points the chaos harness kills at one by one
  (``repro.service.chaos --ingest``);
* :mod:`~repro.service.cluster` — the distributed tier:
  :func:`~repro.service.cluster.partition_index` splits an index into
  contiguous per-node sub-indexes, a
  :class:`~repro.service.cluster.ClusterCoordinator` scatter-gathers
  each query over protocol v2 with per-node breakers, hedged replica
  reads and group-min deadline propagation, and
  :class:`ClusterClient` / :class:`LocalCluster` are the deployment
  surfaces (``repro cluster`` on the CLI).

Stable public surface
---------------------
``__all__`` below is the *supported* API — :class:`SearchEngine`,
:class:`SearchClient`, :class:`QueryOptions`, :class:`DatabaseIndex`,
:class:`ResultCache` and the error taxonomy.  Everything else exported
by the submodules (worker pools, the line-protocol server, fault
injection) remains importable but is internal plumbing and free to
evolve between versions.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from dataclasses import replace as _dc_replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.stats import ScoreStatistics


@dataclass(frozen=True)
class QueryOptions:
    """Everything a caller may tune about one search request.

    One dataclass carried end-to-end — :class:`SearchEngine`,
    :class:`~repro.service.server.QueryRequest`, the line protocol,
    the TCP wire format and :class:`SearchClient` all speak it —
    replacing the three hand-copied ``top``/``min_score``/``retrieve``
    parameter lists the service layer used to maintain.

    ``statistics`` (calibrated Karlin-Altschul statistics) overrides
    the engine's default for this request; it never crosses the wire —
    a remote server applies its own engine's statistics.

    ``deadline_ms`` is the request's **end-to-end budget** in
    milliseconds, relative to when the request enters each layer: the
    client anchors it at send, the server re-anchors at receipt, and
    every layer below (batcher, engine, worker pool) derives its
    timeouts from the remaining budget.  ``None`` means no deadline; a
    value ≤ 0 means "already expired" and surfaces as
    :class:`~repro.service.resilience.DeadlineExceeded` rather than
    ``bad-request`` — an exhausted budget is a timeout, wherever it is
    discovered.

    ``kernel`` names the :mod:`repro.kernels` backend this request's
    sweep must run on (``"reference"``, ``"numpy-striped"``, ...).
    ``None`` — the default, and what an absent wire field decodes to —
    means "whatever the server is configured with" (its ``--kernel``
    flag, falling back to the process default).  Every backend is
    bit-identical on rankings, so the field selects a *cost model*,
    never an answer; cache keys still carry it so an operator can
    account hits per backend.

    Construction never raises so a request can be *carried* before it
    is *checked*; :meth:`validate` applies the range rules and is
    called by the engine on every request, which is what maps bad
    values to ``bad-request`` on every front-end.
    """

    top: int = 10
    min_score: int = 1
    retrieve: int = 0
    statistics: "ScoreStatistics | None" = None
    deadline_ms: int | None = None
    kernel: str | None = None

    def validate(self) -> "QueryOptions":
        """Range-check; returns self so calls chain."""
        if self.top < 1:
            raise ValueError(f"top must be positive, got {self.top}")
        if self.retrieve < 0:
            raise ValueError(f"retrieve cannot be negative, got {self.retrieve}")
        if self.kernel is not None:
            from ..kernels import available_backends

            if self.kernel not in available_backends():
                raise ValueError(
                    f"unknown kernel {self.kernel!r} "
                    f"(available: {', '.join(available_backends())})"
                )
        return self

    def replace(self, **changes: object) -> "QueryOptions":
        return _dc_replace(self, **changes)


def resolve_query_options(
    options: "QueryOptions | int | None" = None,
    defaults: "QueryOptions | None" = None,
    *,
    top: int | None = None,
    min_score: int | None = None,
    retrieve: int | None = None,
    statistics: "ScoreStatistics | None" = None,
    _stacklevel: int = 3,
) -> "QueryOptions":
    """Resolve a :class:`QueryOptions` from new- or old-style arguments.

    The old keyword style (``top=``/``min_score=``/``retrieve=``/
    ``statistics=``, or a bare integer in the ``options`` slot meaning
    ``top``) still works but emits a :class:`DeprecationWarning`;
    passing both styles at once is an error.
    """
    base = defaults if defaults is not None else QueryOptions()
    overrides: dict[str, object] = {}
    if isinstance(options, bool):
        raise TypeError(f"options must be QueryOptions, got {options!r}")
    if isinstance(options, int):
        # Legacy positional ``top`` in the slot QueryOptions now occupies.
        overrides["top"] = options
        options = None
    for key, value in (
        ("top", top),
        ("min_score", min_score),
        ("retrieve", retrieve),
        ("statistics", statistics),
    ):
        if value is not None:
            overrides[key] = value
    if options is not None:
        if not isinstance(options, QueryOptions):
            raise TypeError(
                f"options must be QueryOptions, got {type(options).__name__}"
            )
        if overrides:
            raise TypeError(
                "pass a QueryOptions or the legacy keywords, not both"
            )
        return options
    if overrides:
        warnings.warn(
            "top=/min_score=/retrieve=/statistics= keywords are deprecated; "
            "pass a repro.service.QueryOptions instead",
            DeprecationWarning,
            stacklevel=_stacklevel,
        )
        return base.replace(**overrides)
    return base


from .cache import CacheKey, CacheStats, ResultCache, scheme_token
from .engine import RequestMetrics, SearchEngine, SearchResponse
from .index import DatabaseIndex, IndexFormatError, Shard
from .pool import ShardWorkerPool, WorkerSpec, merge_candidates
from .resilience import (
    BadRequest,
    Deadline,
    DeadlineExceeded,
    Fault,
    FaultPlan,
    IndexCorrupt,
    Overloaded,
    RequestTimeout,
    RetryPolicy,
    ServiceError,
    ShardFailure,
    SupervisedWorkerPool,
    SweepOutcome,
    WorkerTimeout,
    corrupt_index_file,
    validate_sweep,
)
from .guard import (
    AdaptiveLimiter,
    CircuitBreaker,
    CircuitOpen,
    HedgePolicy,
    IndexManager,
)
from .protocol import PROTOCOL_VERSION, ProtocolError
from .server import QueryRequest, SearchServer
from .net import ServerConfig, TcpSearchServer
from .client import AsyncSearchClient, SearchClient
from .cluster import (
    ClusterClient,
    ClusterSupervisor,
    ClusterTopology,
    HealthMonitor,
    LocalCluster,
    partition_index,
)

#: The stable, supported surface of ``repro.service``: the engine, the
#: client SDK, the unified request options, the index, the cache, and
#: the error taxonomy.  Internal machinery (pools, servers, fault
#: injection) stays importable but unpinned.
__all__ = [
    "AdaptiveLimiter",
    "BadRequest",
    "CircuitBreaker",
    "CircuitOpen",
    "ClusterClient",
    "ClusterSupervisor",
    "ClusterTopology",
    "DatabaseIndex",
    "Deadline",
    "DeadlineExceeded",
    "HealthMonitor",
    "HedgePolicy",
    "IndexCorrupt",
    "IndexFormatError",
    "IndexManager",
    "LocalCluster",
    "Overloaded",
    "ProtocolError",
    "QueryOptions",
    "RequestTimeout",
    "ResultCache",
    "SearchClient",
    "SearchEngine",
    "ServiceError",
    "ShardFailure",
    "WorkerTimeout",
]
