"""Search service: the paper's deployment model as a subsystem.

Sections 1 and 5 describe an inherently server-shaped workload — a
fixed query streamed against a multi-megabase database, only score and
coordinates returned per record.  This package turns the one-shot
:func:`repro.scan.scan_database` into that service:

* :mod:`~repro.service.index` — persistent sharded database index
  (parse + encode once, content-hash version stamp, save/load);
* :mod:`~repro.service.pool` — multiprocessing worker pool sweeping
  shards with the phase-1 locate kernel, merged bit-identically to the
  sequential scanner;
* :mod:`~repro.service.cache` — LRU result cache keyed by query,
  scheme and index version;
* :mod:`~repro.service.engine` — the :class:`SearchEngine` facade:
  batched queries over one index pass, scan-equivalent semantics,
  per-request metrics;
* :mod:`~repro.service.server` — a minimal stdlib request loop
  (line protocol and queue-in / report-out) behind ``repro serve``.
"""

from .cache import CacheKey, CacheStats, ResultCache, scheme_token
from .engine import RequestMetrics, SearchEngine, SearchResponse
from .index import DatabaseIndex, IndexFormatError, Shard
from .pool import ShardWorkerPool, WorkerSpec, merge_candidates
from .server import QueryRequest, SearchServer

__all__ = [
    "CacheKey",
    "CacheStats",
    "DatabaseIndex",
    "IndexFormatError",
    "QueryRequest",
    "RequestMetrics",
    "ResultCache",
    "SearchEngine",
    "SearchResponse",
    "SearchServer",
    "Shard",
    "ShardWorkerPool",
    "WorkerSpec",
    "merge_candidates",
    "scheme_token",
]
