"""Search service: the paper's deployment model as a subsystem.

Sections 1 and 5 describe an inherently server-shaped workload — a
fixed query streamed against a multi-megabase database, only score and
coordinates returned per record.  This package turns the one-shot
:func:`repro.scan.scan_database` into that service:

* :mod:`~repro.service.index` — persistent sharded database index
  (parse + encode once, content-hash version stamp, per-shard content
  hashes verified on load, save/load);
* :mod:`~repro.service.pool` — multiprocessing worker pool sweeping
  shards with the phase-1 locate kernel, merged bit-identically to the
  sequential scanner;
* :mod:`~repro.service.resilience` — fault tolerance: the
  :class:`ServiceError` taxonomy, :class:`RetryPolicy` backoff,
  deterministic :class:`FaultPlan` injection, and the
  :class:`SupervisedWorkerPool` (worker supervision, retries, shard
  quarantine);
* :mod:`~repro.service.cache` — LRU result cache keyed by query,
  scheme and index version (partial answers are never cached);
* :mod:`~repro.service.engine` — the :class:`SearchEngine` facade:
  batched queries over one index pass, scan-equivalent semantics,
  per-request metrics, graceful degradation with explicit
  ``coverage``/``degraded_shards`` on every response;
* :mod:`~repro.service.server` — a minimal stdlib request loop
  (line protocol and queue-in / report-out) behind ``repro serve``,
  reporting failures as structured ``error <code> <message>`` lines.
"""

from .cache import CacheKey, CacheStats, ResultCache, scheme_token
from .engine import RequestMetrics, SearchEngine, SearchResponse
from .index import DatabaseIndex, IndexFormatError, Shard
from .pool import ShardWorkerPool, WorkerSpec, merge_candidates
from .resilience import (
    Fault,
    FaultPlan,
    IndexCorrupt,
    RetryPolicy,
    ServiceError,
    ShardFailure,
    SupervisedWorkerPool,
    SweepOutcome,
    WorkerTimeout,
    corrupt_index_file,
    validate_sweep,
)
from .server import QueryRequest, SearchServer

__all__ = [
    "CacheKey",
    "CacheStats",
    "DatabaseIndex",
    "Fault",
    "FaultPlan",
    "IndexCorrupt",
    "IndexFormatError",
    "QueryRequest",
    "RequestMetrics",
    "ResultCache",
    "RetryPolicy",
    "SearchEngine",
    "SearchResponse",
    "SearchServer",
    "ServiceError",
    "Shard",
    "ShardFailure",
    "ShardWorkerPool",
    "SupervisedWorkerPool",
    "SweepOutcome",
    "WorkerSpec",
    "WorkerTimeout",
    "corrupt_index_file",
    "merge_candidates",
    "scheme_token",
    "validate_sweep",
]
