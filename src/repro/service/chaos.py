"""Deterministic chaos harness for the networked search service.

Fault-tolerance code that is only exercised by the faults production
happens to throw is untested code.  This module scripts the faults:
a seeded :class:`ChaosSchedule` decides, per request, whether the
*network* misbehaves (a frame delayed, severed mid-transmission, or
corrupted in transit) or a *worker* does (a shard subprocess crashing
or hanging, via the supervised pool's
:class:`~repro.service.resilience.FaultPlan`), and when the index is
hot-reloaded under the traffic.  :func:`run_chaos` drives the whole
schedule against a **real** :class:`~repro.service.net.TcpSearchServer`
on a real socket — no mocks between client and engine — and returns a
:class:`ChaosReport` whose invariants the test suite asserts:

* every request gets exactly one answer (the client's id matching
  raises on any cross-talk, so a completed run *is* the proof);
* every answer is bit-identical to the fault-free baseline — the
  scheduled faults are all recoverable, so retries and supervision
  must heal them without changing a single ranking;
* the server drains cleanly afterwards, with zero requests in flight.

Two runs with the same seed inject the same faults in the same order.
Timing still varies, so the invariants are phrased over *outcomes*
(which are deterministic), never over durations.

Every injection and recovery lands in a :class:`ChaosEventLog`; when
the ``REPRO_CHAOS_LOG`` environment variable names a path the log is
dumped there as JSON, which is how CI archives the evidence when a
chaos run fails.

:func:`run_cluster_chaos` extends the same discipline to the
distributed tier: a seeded schedule kills shard nodes and severs the
network to others while queries flow through a live 3-node
:class:`~repro.service.cluster.LocalCluster`, and the invariants are
the cluster's own promises — no query is lost or double-answered,
degraded coverage matches the down nodes' spans *exactly*, and every
answer is bit-identical to a reference merge over the surviving
nodes' engines.

:func:`run_selfheal_chaos` closes the loop the self-healing tier
promises: a seeded kill takes a node down, the
:class:`~repro.service.cluster.healthd.HealthMonitor` ejects it
within ``eject_after`` heartbeats, the
:class:`~repro.service.cluster.supervisor.ClusterSupervisor` respawns
it and reattaches its channel, probation probes readmit it — and the
invariants are that coverage returns to exactly 1.0 within a bounded
number of heartbeats, that no query is lost or double-answered across
the respawn, and that post-heal answers are bit-identical to the
fault-free baseline.  :func:`limiter_convergence_trace` drives the
:class:`~repro.service.guard.AdaptiveLimiter` through a deterministic
slow-node schedule and proves the AIMD loop converges to the node's
real capacity instead of oscillating or collapsing.

:func:`run_ingest_chaos` turns the same discipline on the *disk*: it
probes a fault-free WAL ingest run for every labeled
:class:`~repro.service.resilience.FaultFS` barrier the lifecycle
crosses (journal create/append/sync, seal rename, delta and manifest
publish, segment retire), then kills the process at each one and
recovers over the surviving directory.  The invariants are the
crash-safe lifecycle's promises: recovery always lands on a
consistent generation, every *acknowledged* record is served after
restart (at-least-once — a record durable but unacked may also
appear), no torn shard is ever visible, and once the interrupted
records are re-ingested the rankings are bit-identical to a run that
never crashed.  Torn and short writes, lying fsyncs (the delta
quarantine path) and ENOSPC/EIO read-only degradation — including a
live TCP server leg — ride the same schedule.

``python -m repro.service.chaos --seed 7`` runs the harness directly
and exits nonzero on any invariant violation; add ``--cluster`` to
run the cluster schedule instead, ``--selfheal`` (optionally with
``--mode process``) for the kill→eject→respawn→readmit loop, or
``--ingest`` for the disk-fault crash sweep.
"""

from __future__ import annotations

import json
import os
import random
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from ..io.atomic import atomic_write
from ..io.generate import mutate, random_dna
from . import QueryOptions
from .cache import ResultCache
from .client import SearchClient, _Connection
from .engine import SearchEngine, SearchResponse
from .guard import IndexManager
from .index import DatabaseIndex
from .ingest import IngestReadOnly, IngestService
from .net import ServerConfig, ServerThread
from .resilience import (
    CrashPoint,
    DiskFaultPlan,
    Fault,
    FaultFS,
    FaultPlan,
    RetryPolicy,
    ServiceError,
    SupervisedWorkerPool,
)

__all__ = [
    "ChaosAction",
    "ChaosConnectionFactory",
    "ChaosEventLog",
    "ChaosReport",
    "ChaosSchedule",
    "ClusterChaosReport",
    "ClusterChaosSchedule",
    "IngestChaosReport",
    "IngestChaosRun",
    "NET_FAULT_KINDS",
    "NetsplitController",
    "POOL_FAULT_KINDS",
    "CHAOS_LOG_ENV",
    "SelfHealReport",
    "build_workload",
    "limiter_convergence_trace",
    "response_signature",
    "run_chaos",
    "run_cluster_chaos",
    "run_ingest_chaos",
    "run_reload_storm",
    "run_selfheal_chaos",
    "storm_mismatches",
]

#: Environment variable naming where the event log is dumped as JSON.
CHAOS_LOG_ENV = "REPRO_CHAOS_LOG"

#: Client-side transport faults (applied by :class:`ChaosConnectionFactory`).
NET_FAULT_KINDS = ("slow", "sever", "corrupt")

#: Server-side worker faults (applied via the supervised pool's FaultPlan).
POOL_FAULT_KINDS = ("crash", "hang")


# ----------------------------------------------------------------------
# Event log
# ----------------------------------------------------------------------
class ChaosEventLog:
    """Append-only, thread-safe record of everything the harness did.

    Events are plain dicts with a monotonically increasing ``seq`` —
    the injection *order* is the reproducible part of a chaos run, so
    the log captures it explicitly.  :meth:`dump` (and the
    ``REPRO_CHAOS_LOG`` hook in :func:`run_chaos`) writes the whole
    log as JSON for CI to archive.
    """

    def __init__(self) -> None:
        self._events: list[dict] = []
        self._lock = threading.Lock()

    def record(self, kind: str, **details: object) -> None:
        with self._lock:
            self._events.append({"seq": len(self._events), "kind": kind, **details})

    @property
    def events(self) -> list[dict]:
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def dump(self, path: str | Path) -> Path:
        path = Path(path)
        atomic_write(path, json.dumps(self.events, indent=2) + "\n")
        return path

    def dump_env(self, env_var: str = CHAOS_LOG_ENV) -> Path | None:
        """Dump to the path named by ``env_var`` (no-op when unset)."""
        target = os.environ.get(env_var)
        if not target:
            return None
        return self.dump(target)


# ----------------------------------------------------------------------
# Schedule
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosAction:
    """One scheduled fault: what goes wrong around one request.

    ``kind`` is drawn from :data:`NET_FAULT_KINDS` (the client's next
    frame is delayed/severed/corrupted) or :data:`POOL_FAULT_KINDS`
    (one shard's worker crashes or hangs on its first attempt).  All
    kinds are *recoverable*: client retries heal transport faults,
    pool retries heal worker faults, so the chaos run's answers must
    stay bit-identical to the fault-free baseline.
    """

    kind: str
    shard_id: int = 0
    seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in NET_FAULT_KINDS + POOL_FAULT_KINDS:
            raise ValueError(f"unknown chaos action kind {self.kind!r}")


class ChaosSchedule:
    """A seeded, fully precomputed plan of per-request fault injections.

    The schedule is derived from ``seed`` alone before any traffic
    flows — chaos never consults the clock or live state to decide
    what to break, which is what makes a failing run replayable.
    ``actions`` maps request index → :class:`ChaosAction`;
    ``reload_after`` holds the request indices after which a hot index
    reload is triggered; ``failed_reload_after`` (at most one) marks
    where a reload whose loader dies mid-load is attempted.
    """

    def __init__(
        self,
        seed: int,
        requests: int,
        fault_rate: float = 0.35,
        shards: int = 4,
        reloads: int = 2,
        include_failed_reload: bool = True,
    ) -> None:
        if requests < 1:
            raise ValueError(f"requests must be positive, got {requests}")
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError(f"fault_rate must be within [0, 1], got {fault_rate}")
        self.seed = seed
        self.requests = requests
        rng = random.Random(f"chaos:{seed}")
        kinds = NET_FAULT_KINDS + POOL_FAULT_KINDS
        self.actions: dict[int, ChaosAction] = {}
        for i in range(requests):
            if rng.random() < fault_rate:
                self.actions[i] = ChaosAction(
                    kind=rng.choice(kinds),
                    shard_id=rng.randrange(shards),
                    seconds=0.02 + rng.random() * 0.05,
                )
        eligible = list(range(requests - 1))
        rng.shuffle(eligible)
        n_reloads = min(reloads, len(eligible))
        self.reload_after = frozenset(eligible[:n_reloads])
        self.failed_reload_after: int | None = None
        if include_failed_reload and len(eligible) > n_reloads:
            self.failed_reload_after = eligible[n_reloads]

    def action_for(self, request_index: int) -> ChaosAction | None:
        return self.actions.get(request_index)

    def to_payload(self) -> dict:
        """JSON-ready description (recorded at the head of the event log)."""
        return {
            "seed": self.seed,
            "requests": self.requests,
            "actions": {
                str(i): {"kind": a.kind, "shard": a.shard_id, "seconds": a.seconds}
                for i, a in sorted(self.actions.items())
            },
            "reload_after": sorted(self.reload_after),
            "failed_reload_after": self.failed_reload_after,
        }


# ----------------------------------------------------------------------
# Fault-injecting connections
# ----------------------------------------------------------------------
class _ChaosConnection(_Connection):
    """A real client connection whose next request frame can misbehave."""

    def __init__(
        self, host: str, port: int, timeout: float | None, factory: "ChaosConnectionFactory"
    ) -> None:
        self._factory = factory
        super().__init__(host, port, timeout)

    def send(self, frame: dict) -> None:
        from . import protocol

        if frame.get("type") != "request":
            super().send(frame)  # the hello handshake is never faulted
            return
        action = self._factory.take()
        if action is None:
            super().send(frame)
            return
        payload = protocol.encode_frame(frame)
        if action.kind == "slow":
            self._factory.log.record("net.slow", seconds=action.seconds)
            time.sleep(action.seconds)
            self.sock.sendall(payload)
        elif action.kind == "sever":
            # The classic torn write: length prefix out, payload lost.
            # The server reads a broken stream; the client's next recv
            # hits a dead socket and its retry machinery redials.
            self._factory.log.record("net.sever", sent=protocol.HEADER.size)
            self.sock.sendall(payload[: protocol.HEADER.size])
            self.close()
        elif action.kind == "corrupt":
            # Flip the opening brace: the frame arrives complete but is
            # garbage, the server answers a protocol error and closes,
            # and the client retries on a fresh connection.
            self._factory.log.record("net.corrupt", length=len(payload))
            body = bytearray(payload)
            body[protocol.HEADER.size] ^= 0xFF
            self.sock.sendall(bytes(body))
            self.close()
        else:  # pragma: no cover - ChaosAction validates kinds
            raise ValueError(f"unknown net fault {action.kind!r}")


class ChaosConnectionFactory:
    """``connection_factory`` for :class:`SearchClient` with an armable fault.

    The driver arms at most one :class:`ChaosAction` before issuing a
    request; the *next* request frame sent on any connection consumes
    it.  Retries therefore run clean — one scheduled fault perturbs
    exactly one transmission, which keeps the injection count equal to
    the schedule and the run reproducible.
    """

    def __init__(self, log: ChaosEventLog) -> None:
        self.log = log
        self._armed: ChaosAction | None = None
        self._lock = threading.Lock()
        self.injected = 0

    def arm(self, action: ChaosAction) -> None:
        with self._lock:
            self._armed = action

    def take(self) -> ChaosAction | None:
        with self._lock:
            action, self._armed = self._armed, None
            if action is not None:
                self.injected += 1
            return action

    def __call__(self, host: str, port: int, timeout: float | None) -> _ChaosConnection:
        return _ChaosConnection(host, port, timeout, factory=self)


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------
def build_workload(
    seed: int = 0,
    n_records: int = 12,
    record_bp: int = 160,
    shards: int = 4,
    n_queries: int = 6,
) -> tuple[list[str], DatabaseIndex, Callable[[], DatabaseIndex]]:
    """A deterministic database + query set + rebuildable loader.

    The loader rebuilds an index with *identical content* (same
    records, same sharding — so the same content hash) from scratch;
    reloading it swaps in a new generation whose answers are
    bit-identical, which is exactly what the reload invariants need.
    """
    queries = [random_dna(48 + 4 * q, seed=7_000 + seed * 100 + q) for q in range(n_queries)]
    records = []
    for i in range(n_records):
        sequence = random_dna(record_bp, seed=8_000 + seed * 100 + i)
        planted = mutate(queries[i % n_queries], rate=0.05, seed=9_000 + i)
        cut = record_bp // 3
        records.append(
            (f"rec{i}", sequence[:cut] + planted + sequence[cut + len(planted):])
        )

    def loader() -> DatabaseIndex:
        return DatabaseIndex.build(records, shards=shards, source="chaos-workload")

    return queries, loader(), loader


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
def response_signature(response: SearchResponse) -> tuple:
    """The bit-identity fingerprint of one answer: ranking + coverage."""
    return (
        tuple(
            (hit.record, hit.length, hit.hit.as_tuple())
            for hit in response.report.hits
        ),
        response.coverage,
        response.degraded_shards,
    )


@dataclass
class ChaosReport:
    """Everything a chaos run produced, for the tests to judge."""

    schedule: ChaosSchedule
    queries: list[str]
    outcomes: list[SearchResponse | Exception]
    baseline: list[SearchResponse]
    log: ChaosEventLog
    injected_net_faults: int
    served: int
    final_health: dict
    final_generation: int
    reloads_done: int
    drained_inflight: int = 0
    events_dumped_to: Path | None = None

    @property
    def failures(self) -> list[tuple[int, Exception]]:
        """Requests that ended in an exception instead of an answer."""
        return [
            (i, outcome)
            for i, outcome in enumerate(self.outcomes)
            if isinstance(outcome, Exception)
        ]

    def mismatches(self) -> list[int]:
        """Request indices whose answer differs from the baseline's."""
        bad = []
        for i, outcome in enumerate(self.outcomes):
            if isinstance(outcome, Exception):
                bad.append(i)
                continue
            expected = self.baseline[i % len(self.baseline)]
            if response_signature(outcome) != response_signature(expected):
                bad.append(i)
        return bad

    def summary(self) -> str:
        return (
            f"chaos seed={self.schedule.seed}: {len(self.outcomes)} requests, "
            f"{len(self.schedule.actions)} scheduled faults "
            f"({self.injected_net_faults} net), {self.reloads_done} reloads, "
            f"{len(self.failures)} failures, {len(self.mismatches())} mismatches, "
            f"served={self.served}, generation={self.final_generation}, "
            f"inflight after drain={self.drained_inflight}"
        )


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------
def run_chaos(
    seed: int = 0,
    requests: int = 24,
    fault_rate: float = 0.35,
    shards: int = 4,
    reloads: int = 2,
    log: ChaosEventLog | None = None,
) -> ChaosReport:
    """Drive one seeded chaos schedule against a real TCP server.

    The driver is single-threaded and issues requests strictly in
    order, so the mapping from schedule entry to injected fault is
    exact.  Worker faults are armed by assigning the supervised pool's
    ``fault_plan`` for just the one request (the driver blocks on the
    response, so the assignment cannot leak onto a neighbour's sweep);
    network faults are armed on the connection factory the same way.
    """
    log = log if log is not None else ChaosEventLog()
    schedule = ChaosSchedule(
        seed, requests, fault_rate=fault_rate, shards=shards, reloads=reloads
    )
    log.record("schedule", **schedule.to_payload())
    queries, index, loader = build_workload(seed=seed, shards=shards)
    options = QueryOptions(top=5, min_score=1)

    # Fault-free baseline: the plain inline engine is the reference the
    # chaos run's every answer must match bit for bit.
    baseline_engine = SearchEngine(loader(), cache=ResultCache(0))
    baseline = [baseline_engine.search(q, options) for q in queries]

    pool = SupervisedWorkerPool(
        workers=2,
        policy=RetryPolicy(retries=2, base_delay=0.01, max_delay=0.05, seed=seed),
        task_timeout=0.5,
        quarantine_after=10_000,  # chaos faults are one-shot; never quarantine
    )
    manager = IndexManager(index=index, loader=loader)
    engine = SearchEngine(manager, pool=pool, cache=ResultCache(0))
    factory = ChaosConnectionFactory(log)
    outcomes: list[SearchResponse | Exception] = []
    reloads_done = 0

    with ServerThread(engine, config=ServerConfig(batch_window=0.0)) as handle:
        client = SearchClient(
            handle.host,
            handle.port,
            retry=RetryPolicy(retries=3, base_delay=0.01, max_delay=0.05, seed=seed),
            timeout=15.0,
            connection_factory=factory,
        )
        try:
            for i in range(requests):
                query = queries[i % len(queries)]
                action = schedule.action_for(i)
                if action is not None:
                    log.record(
                        "inject",
                        request=i,
                        fault=action.kind,
                        shard=action.shard_id,
                    )
                    if action.kind in NET_FAULT_KINDS:
                        factory.arm(action)
                    else:
                        hang = 10.0 if action.kind == "hang" else 30.0
                        pool.fault_plan = FaultPlan(
                            [Fault(action.kind, action.shard_id, times=1, seconds=hang)]
                        )
                try:
                    outcomes.append(client.search(query, options))
                    log.record("answered", request=i)
                except Exception as exc:  # noqa: BLE001 - judged by the report
                    outcomes.append(exc)
                    log.record("request-failed", request=i, error=str(exc))
                finally:
                    pool.fault_plan = None
                if i == schedule.failed_reload_after:
                    # A reload whose loader dies mid-load: the error
                    # surfaces to the caller, the old generation keeps
                    # serving, nothing else changes.
                    def torn_loader() -> DatabaseIndex:
                        raise RuntimeError("chaos: loader torn mid-reload")

                    manager.loader = torn_loader
                    try:
                        client.reload()
                        log.record("reload-failed-silently", request=i)
                    except ServiceError as exc:
                        log.record("reload-refused", request=i, error=str(exc))
                    finally:
                        manager.loader = loader
                if i in schedule.reload_after:
                    generation = client.reload()
                    reloads_done += 1
                    log.record("reload", request=i, generation=generation)
            final_health = dict(client.health())
        finally:
            client.close()
        served = handle.server.served
    drained_inflight = handle.server._inflight
    log.record(
        "drained",
        served=served,
        inflight=drained_inflight,
        generation=manager.generation,
    )
    report = ChaosReport(
        schedule=schedule,
        queries=queries,
        outcomes=outcomes,
        baseline=baseline,
        log=log,
        injected_net_faults=factory.injected,
        served=served,
        final_health=final_health,
        final_generation=manager.generation,
        reloads_done=reloads_done,
        drained_inflight=drained_inflight,
    )
    report.events_dumped_to = log.dump_env()
    return report


def run_reload_storm(
    seed: int = 0,
    threads: int = 4,
    requests_per_thread: int = 6,
    reloads: int = 3,
) -> ChaosReport:
    """Hot-reload under genuinely concurrent load.

    ``threads`` clients hammer the server while the main thread swaps
    index generations between their requests.  Thread interleaving is
    not deterministic — the *invariants* are: every request answers,
    every answer matches the baseline (old and new generations have
    identical content), and the final generation is ``1 + reloads``.
    """
    log = ChaosEventLog()
    queries, index, loader = build_workload(seed=seed)
    options = QueryOptions(top=5, min_score=1)
    baseline_engine = SearchEngine(loader(), cache=ResultCache(0))
    baseline = [baseline_engine.search(q, options) for q in queries]

    manager = IndexManager(index=index, loader=loader)
    engine = SearchEngine(manager, cache=ResultCache(128))
    outcomes_by_thread: dict[int, list[SearchResponse | Exception]] = {}
    reloads_done = 0

    with ServerThread(engine) as handle:

        def hammer(worker: int) -> None:
            results: list[SearchResponse | Exception] = []
            with SearchClient(handle.host, handle.port, timeout=15.0) as client:
                for r in range(requests_per_thread):
                    query = queries[(worker + r) % len(queries)]
                    try:
                        results.append(client.search(query, options))
                    except Exception as exc:  # noqa: BLE001 - judged later
                        results.append(exc)
            outcomes_by_thread[worker] = results

        workers = [
            threading.Thread(target=hammer, args=(w,), daemon=True)
            for w in range(threads)
        ]
        for thread in workers:
            thread.start()
        with SearchClient(handle.host, handle.port, timeout=15.0) as admin:
            for _ in range(reloads):
                time.sleep(0.02)
                generation = admin.reload()
                reloads_done += 1
                log.record("reload", generation=generation)
            for thread in workers:
                thread.join(timeout=60)
            final_health = dict(admin.health())
        served = handle.server.served
    # Outcomes keep thread-major order; signatures are order-insensitive
    # because every outcome is judged against its own query's baseline.
    outcomes: list[SearchResponse | Exception] = []
    flat_queries: list[str] = []
    for worker in range(threads):
        for r, outcome in enumerate(outcomes_by_thread.get(worker, [])):
            outcomes.append(outcome)
            flat_queries.append(queries[(worker + r) % len(queries)])
    schedule = ChaosSchedule(
        seed, max(len(outcomes), 1), fault_rate=0.0, reloads=0,
        include_failed_reload=False,
    )
    report = ChaosReport(
        schedule=schedule,
        queries=flat_queries,
        outcomes=outcomes,
        baseline=baseline,
        log=log,
        injected_net_faults=0,
        served=served,
        final_health=final_health,
        final_generation=manager.generation,
        reloads_done=reloads_done,
        drained_inflight=handle.server._inflight,
    )
    report.events_dumped_to = log.dump_env()
    return report


def storm_mismatches(report: ChaosReport) -> list[int]:
    """Reload-storm mismatches, judged per query (thread order is free)."""
    by_query = {b.query: response_signature(b) for b in report.baseline}
    bad = []
    for i, outcome in enumerate(report.outcomes):
        if isinstance(outcome, Exception):
            bad.append(i)
        elif response_signature(outcome) != by_query[outcome.query]:
            bad.append(i)
    return bad


# ----------------------------------------------------------------------
# Cluster chaos: node kills and netsplits against a live topology
# ----------------------------------------------------------------------
class ClusterChaosSchedule:
    """A seeded plan of node kills and netsplits over a request stream.

    ``kill_at`` maps request index → node id: that node's primary is
    stopped *before* the request is issued and stays dead for the rest
    of the run (thread-mode kills are permanent — a dead FPGA does not
    restart itself).  ``split_at`` maps request index → node id: the
    network to that node is severed for exactly that one request and
    healed afterwards.  The constructor guarantees at least one node
    survives every request, so every query must still be answered —
    degraded, never lost.
    """

    def __init__(
        self,
        seed: int,
        requests: int,
        nodes: int = 3,
        kills: int = 1,
        splits: int = 4,
    ) -> None:
        if requests < 2:
            raise ValueError(f"requests must be at least 2, got {requests}")
        if nodes < 2:
            raise ValueError(f"cluster chaos needs at least 2 nodes, got {nodes}")
        self.seed = seed
        self.requests = requests
        self.nodes = nodes
        rng = random.Random(f"cluster-chaos:{seed}")
        kills = min(kills, nodes - 2) if nodes > 2 else 0
        kill_nodes = rng.sample(range(nodes), kills)
        kill_indices = rng.sample(range(1, requests), kills) if kills else []
        self.kill_at: dict[int, int] = dict(zip(kill_indices, kill_nodes))
        self.split_at: dict[int, int] = {}
        eligible = [i for i in range(requests) if i not in self.kill_at]
        rng.shuffle(eligible)
        for i in eligible[: min(splits, len(eligible))]:
            candidates = [n for n in range(nodes) if n not in self.down_at(i)]
            if len(candidates) < 2:
                continue  # splitting would leave nobody standing
            self.split_at[i] = rng.choice(candidates)
        for i in range(requests):  # the schedule's own invariant
            assert len(self.down_at(i)) < nodes, "schedule would kill the cluster"

    def down_at(self, request_index: int) -> set[int]:
        """Node ids unreachable while ``request_index`` is in flight."""
        down = {
            node for idx, node in self.kill_at.items() if idx <= request_index
        }
        if request_index in self.split_at:
            down.add(self.split_at[request_index])
        return down

    def to_payload(self) -> dict:
        return {
            "seed": self.seed,
            "requests": self.requests,
            "nodes": self.nodes,
            "kill_at": {str(i): n for i, n in sorted(self.kill_at.items())},
            "split_at": {str(i): n for i, n in sorted(self.split_at.items())},
        }


class _SplitClient(SearchClient):
    """A node client whose network can be severed by the controller."""

    def __init__(
        self, address: str, controller: "NetsplitController", **kwargs: object
    ) -> None:
        self._split_address = address
        self._controller = controller
        super().__init__(address, **kwargs)

    def search(self, query, options=None, trace_id=None, parent_span=None, **legacy):
        self._controller.check(self._split_address)
        return super().search(
            query, options, trace_id=trace_id, parent_span=parent_span, **legacy
        )

    def search_pipelined(self, queries, options=None, trace_id=None, parent_span=None):
        self._controller.check(self._split_address)
        return super().search_pipelined(
            queries, options, trace_id=trace_id, parent_span=parent_span
        )

    def ping(self) -> bool:
        if self._controller.is_down(self._split_address):
            return False
        return super().ping()


class NetsplitController:
    """Armable network partitions, by node address.

    Passed to the coordinator as its ``client_factory``: every node
    client it builds consults the controller before touching the
    socket, and a severed address raises :class:`ConnectionError` —
    indistinguishable, at the coordinator's level, from a real
    partition, and healed the instant :meth:`heal` is called.
    """

    def __init__(self, log: ChaosEventLog) -> None:
        self.log = log
        self._down: set[str] = set()
        self._lock = threading.Lock()
        self.severed = 0

    def sever(self, address: str) -> None:
        with self._lock:
            self._down.add(address)
            self.severed += 1

    def heal(self, address: str) -> None:
        with self._lock:
            self._down.discard(address)

    def is_down(self, address: str) -> bool:
        with self._lock:
            return address in self._down

    def check(self, address: str) -> None:
        if self.is_down(address):
            self.log.record("net.split-drop", address=address)
            raise ConnectionError(f"netsplit: {address} unreachable")

    def client_factory(self, address: str, **kwargs: object) -> _SplitClient:
        return _SplitClient(address, self, **kwargs)


@dataclass
class ClusterChaosReport:
    """Everything a cluster chaos run produced, for the tests to judge.

    ``expected`` holds, per request, the reference answer: a merge
    over inline per-node engines restricted to the nodes the schedule
    left reachable.  Coverage, ``degraded_shards`` and the ranking are
    all part of :func:`response_signature`, so a mismatch of *any* of
    them — a lost span, a wrongly blamed node, a reordered hit — lands
    in :meth:`mismatches`.
    """

    schedule: ClusterChaosSchedule
    queries: list[str]
    outcomes: list["SearchResponse | Exception"]
    expected: list[SearchResponse]
    baseline: list[SearchResponse]
    log: ChaosEventLog
    killed: list[int]
    severed: int
    final_health: dict
    failover_probe: dict = field(default_factory=dict)
    events_dumped_to: Path | None = None

    @property
    def failures(self) -> list[tuple[int, Exception]]:
        """Requests that raised — with a survivor guaranteed, all bugs."""
        return [
            (i, outcome)
            for i, outcome in enumerate(self.outcomes)
            if isinstance(outcome, Exception)
        ]

    def mismatches(self) -> list[int]:
        """Requests whose answer differs from the reference merge."""
        bad = []
        for i, outcome in enumerate(self.outcomes):
            if isinstance(outcome, Exception):
                bad.append(i)
            elif response_signature(outcome) != response_signature(self.expected[i]):
                bad.append(i)
        return bad

    def span_violations(self) -> list[dict]:
        """Requests where degradation does not match the down spans.

        The ISSUE-level invariant, asserted directly rather than via
        the signature: a request issued while nodes D are down must
        report ``coverage == 1 - |records(D)| / total`` and name
        exactly the non-empty members of D in ``degraded_shards``.
        """
        violations = []
        for i, outcome in enumerate(self.outcomes):
            if isinstance(outcome, Exception):
                continue
            expected = self.expected[i]
            if (
                outcome.coverage != expected.coverage
                or outcome.degraded_shards != expected.degraded_shards
            ):
                violations.append(
                    {
                        "request": i,
                        "coverage": outcome.coverage,
                        "expected_coverage": expected.coverage,
                        "degraded": outcome.degraded_shards,
                        "expected_degraded": expected.degraded_shards,
                    }
                )
        return violations

    def trace_violations(self) -> list[str]:
        """Broken stitched-trace promises from the failover probe.

        The probe kills a replicated node's primary and issues one
        traced query; the stitched trace must exist, and the
        ``failover`` event must sit on the *victim's* ``node.search``
        span — and on no other node's.
        """
        probe = self.failover_probe
        if not probe:
            return []
        problems = []
        if not probe.get("trace_id"):
            problems.append("failover probe produced no trace id")
        if not probe.get("stitched"):
            problems.append("failover probe trace was not stitched")
        victim = probe.get("victim")
        events = probe.get("events_by_node", {})
        if "failover" not in events.get(victim, ()):
            problems.append(
                f"no failover event on victim node {victim}'s span "
                f"(events: {events})"
            )
        for node, names in events.items():
            if node != victim and "failover" in names:
                problems.append(
                    f"failover event wrongly attributed to node {node}"
                )
        if probe.get("coverage") != 1.0:
            problems.append(
                f"replica did not preserve coverage ({probe.get('coverage')})"
            )
        return problems

    def clean_mismatches(self) -> list[int]:
        """Fault-free requests that differ from the single-node baseline."""
        bad = []
        for i, outcome in enumerate(self.outcomes):
            if self.schedule.down_at(i):
                continue
            expected = self.baseline[i % len(self.baseline)]
            if isinstance(outcome, Exception) or response_signature(
                outcome
            ) != response_signature(expected):
                bad.append(i)
        return bad

    def summary(self) -> str:
        return (
            f"cluster chaos seed={self.schedule.seed}: "
            f"{len(self.outcomes)} requests over {self.schedule.nodes} nodes, "
            f"{len(self.killed)} kills, {self.severed} splits, "
            f"{len(self.failures)} failures, {len(self.mismatches())} mismatches, "
            f"{len(self.span_violations())} span violations, "
            f"{len(self.trace_violations())} trace violations, "
            f"nodes up at end={self.final_health.get('nodes_up')}"
        )


def _failover_trace_probe(seed: int, log: ChaosEventLog) -> dict:
    """Kill a replicated primary; pin the failover to its trace span.

    A compact, fully observable incident: a 2-node cluster with one
    replica per node, the victim's primary killed, one *traced* query.
    The replica answers (coverage stays 1.0) and the ``failover``
    event must land on the victim's ``node.search`` span — and only
    there.  :meth:`ClusterChaosReport.trace_violations` judges the
    returned facts.
    """
    from ..obs import Observability
    from .cluster import LocalCluster

    queries, index, _loader = build_workload(seed=seed)
    options = QueryOptions(top=5, min_score=1)
    victim = 0
    with LocalCluster(
        index,
        nodes=2,
        replicas=1,
        mode="thread",
        batch_window=0.0,
        obs=Observability.create(),
    ) as cluster:
        with cluster.client(breaker_factory=None, gather_timeout=15.0) as client:
            cluster.kill_node(victim)
            log.record("trace-probe.kill", node=victim)
            response = client.search(queries[0], options)
            trace_id = client.last_trace_id
            tree = client.trace_tree(trace_id) if trace_id else None
            events_by_node: dict[int, tuple[str, ...]] = {}
            stitched = False
            if tree is not None:
                for span in tree.walk():
                    if span.name != "node.search":
                        continue
                    node = span.attrs.get("node")
                    events_by_node[node] = tuple(e.name for e in span.events)
                    if span.attrs.get("stitched"):
                        stitched = True
            probe = {
                "victim": victim,
                "trace_id": trace_id,
                "stitched": stitched,
                "coverage": response.coverage,
                "events_by_node": events_by_node,
            }
            log.record("trace-probe.result", **{
                **probe,
                "events_by_node": {
                    str(n): list(names) for n, names in events_by_node.items()
                },
            })
            return probe


def run_cluster_chaos(
    seed: int = 0,
    requests: int = 18,
    nodes: int = 3,
    kills: int = 1,
    splits: int = 4,
    log: ChaosEventLog | None = None,
) -> ClusterChaosReport:
    """Drive a seeded kill/netsplit schedule against a live cluster.

    Every request goes through a real :class:`ClusterCoordinator` over
    real TCP shard nodes (:class:`LocalCluster` in thread mode).  The
    reference answer for each request is computed inline by merging
    per-node engine answers restricted to the reachable nodes — the
    cluster's response must match it bit for bit, which simultaneously
    proves "no lost queries" (an exception is a failure), "no
    double-answered queries" (the client's request-id matching raises
    on cross-talk, so a completed run is the proof), and "degradation
    is exactly the down spans".

    Breakers are disabled for the run: the expected degraded set must
    be a pure function of the schedule, and a breaker that stays open
    for its recovery window after a heal would degrade a *reachable*
    node — correct behaviour in production, noise in a determinism
    harness.  The breaker's own state machine is tested in
    ``test_guard.py``.
    """
    from .cluster import LocalCluster, NodeAnswer, merge_node_responses
    from .cluster.topology import partition_index

    log = log if log is not None else ChaosEventLog()
    schedule = ClusterChaosSchedule(
        seed, requests, nodes=nodes, kills=kills, splits=splits
    )
    log.record("cluster-schedule", **schedule.to_payload())
    queries, index, loader = build_workload(seed=seed)
    options = QueryOptions(top=5, min_score=1)
    baseline_engine = SearchEngine(loader(), cache=ResultCache(0))
    baseline = [baseline_engine.search(q, options) for q in queries]

    # Reference cluster: the same deterministic partition, served by
    # inline engines the harness can consult with any subset of nodes.
    ref_topology, parts = partition_index(index, nodes)
    ref_engines = {
        spec.node_id: SearchEngine(part, cache=ResultCache(0))
        for spec, part in zip(ref_topology.nodes, parts)
        if not spec.empty
    }

    controller = NetsplitController(log)
    outcomes: list[SearchResponse | Exception] = []
    expected: list[SearchResponse] = []
    killed: list[int] = []
    issued: list[str] = []

    with LocalCluster(index, nodes=nodes, mode="thread", batch_window=0.0) as cluster:
        topology = cluster.topology()
        address_of = {
            node.node_id: node.address for node in topology.active_nodes
        }
        with cluster.client(
            client_factory=controller.client_factory,
            breaker_factory=None,
            gather_timeout=15.0,
        ) as client:
            for i in range(requests):
                if i in schedule.kill_at:
                    node = schedule.kill_at[i]
                    cluster.kill_node(node)
                    killed.append(node)
                    log.record("node.kill", request=i, node=node)
                split = schedule.split_at.get(i)
                if split is not None:
                    controller.sever(address_of[split])
                    log.record("net.split", request=i, node=split)
                query = queries[i % len(queries)]
                issued.append(query)
                try:
                    outcomes.append(client.search(query, options))
                    log.record("answered", request=i)
                except Exception as exc:  # noqa: BLE001 - judged by the report
                    outcomes.append(exc)
                    log.record("request-failed", request=i, error=str(exc))
                finally:
                    if split is not None:
                        controller.heal(address_of[split])
                        log.record("net.heal", request=i, node=split)
                down = schedule.down_at(i)
                live = [
                    NodeAnswer(node_id=nid, response=engine.search(query, options))
                    for nid, engine in ref_engines.items()
                    if nid not in down
                ]
                expected.append(
                    merge_node_responses(query.upper(), live, ref_topology, options)
                )
            final_health = dict(client.health())
    log.record(
        "cluster-drained",
        killed=sorted(killed),
        severed=controller.severed,
    )
    # The main loop runs without replicas (the reference merge is a
    # pure function of the schedule); the failover-attribution promise
    # needs a replica, so it gets its own compact probe.
    failover_probe = _failover_trace_probe(seed, log)
    report = ClusterChaosReport(
        schedule=schedule,
        queries=issued,
        outcomes=outcomes,
        expected=expected,
        baseline=baseline,
        log=log,
        killed=killed,
        severed=controller.severed,
        final_health=final_health,
        failover_probe=failover_probe,
    )
    report.events_dumped_to = log.dump_env()
    return report


# ----------------------------------------------------------------------
# Self-heal chaos: kill → eject → respawn → readmit, with invariants
# ----------------------------------------------------------------------
@dataclass
class SelfHealReport:
    """One kill→heal incident, phase by phase, for the tests to judge.

    Phases: ``steady`` (all nodes up), ``down`` (the victim killed and
    ejected), ``healed`` (respawned, reattached, readmitted).  Every
    phase's outcomes are judged against reference answers computed
    inline over the nodes that phase leaves reachable, so degraded
    coverage during ``down`` and bit-identical full coverage after
    ``healed`` are both part of the same check.
    """

    mode: str
    seed: int
    victim: int
    outcomes: dict[str, list[SearchResponse | Exception]]
    expected: dict[str, list[SearchResponse]]
    coverage_timeline: list[dict]
    ticks_to_eject: int
    ticks_to_recover: int
    heartbeat_budget: int
    respawned: list[int]
    issued: int
    answered: int
    final_health: dict
    log: ChaosEventLog
    #: Per phase, the SLO objectives firing at phase end (burn-rate
    #: view of the same incident the coverage timeline shows).
    slo_timeline: dict[str, tuple[str, ...]] = field(default_factory=dict)
    events_dumped_to: Path | None = None

    @property
    def failures(self) -> list[tuple[str, int, Exception]]:
        """Requests that raised — a survivor is guaranteed, so all bugs."""
        return [
            (phase, i, outcome)
            for phase, results in self.outcomes.items()
            for i, outcome in enumerate(results)
            if isinstance(outcome, Exception)
        ]

    def mismatches(self) -> list[tuple[str, int]]:
        """Answers that differ from their phase's reference merge."""
        bad = []
        for phase, results in self.outcomes.items():
            for i, outcome in enumerate(results):
                if isinstance(outcome, Exception):
                    bad.append((phase, i))
                elif response_signature(outcome) != response_signature(
                    self.expected[phase][i]
                ):
                    bad.append((phase, i))
        return bad

    def heal_violations(self) -> list[str]:
        """Broken self-healing promises, in plain words."""
        problems = []
        if self.ticks_to_recover > self.heartbeat_budget:
            problems.append(
                f"recovery took {self.ticks_to_recover} heartbeats "
                f"(budget {self.heartbeat_budget})"
            )
        if self.victim not in self.respawned:
            problems.append(f"supervisor never respawned node {self.victim}")
        for i, outcome in enumerate(self.outcomes.get("healed", [])):
            if isinstance(outcome, Exception):
                problems.append(f"healed request {i} failed: {outcome}")
            elif outcome.coverage != 1.0:
                problems.append(
                    f"healed request {i} still degraded "
                    f"(coverage {outcome.coverage:.3f})"
                )
        for i, outcome in enumerate(self.outcomes.get("down", [])):
            if isinstance(outcome, Exception):
                continue  # already a failure
            if outcome.coverage >= 1.0:
                problems.append(
                    f"down-phase request {i} claims full coverage with "
                    f"node {self.victim} dead"
                )
        if self.answered != self.issued:
            problems.append(
                f"{self.issued} requests issued but {self.answered} answered "
                "(lost or double-answered)"
            )
        return problems

    def slo_violations(self) -> list[str]:
        """Broken burn-rate promises: fire during the outage, clear after.

        Empty when the run attached no tracker (``slo_timeline`` unset).
        """
        if not self.slo_timeline:
            return []
        problems = []
        if self.slo_timeline.get("steady"):
            problems.append(
                f"SLO firing in steady state: {self.slo_timeline['steady']}"
            )
        if "coverage" not in self.slo_timeline.get("down", ()):
            problems.append(
                "coverage SLO did not fire during the outage "
                f"(firing: {self.slo_timeline.get('down')})"
            )
        if self.slo_timeline.get("healed"):
            problems.append(
                f"SLO still firing after heal: {self.slo_timeline['healed']}"
            )
        return problems

    def summary(self) -> str:
        return (
            f"selfheal seed={self.seed} mode={self.mode}: victim={self.victim}, "
            f"eject after {self.ticks_to_eject} beats, recovered after "
            f"{self.ticks_to_recover} beats (budget {self.heartbeat_budget}), "
            f"{len(self.failures)} failures, {len(self.mismatches())} mismatches, "
            f"{len(self.heal_violations())} heal violations, "
            f"{len(self.slo_violations())} slo violations"
        )


def run_selfheal_chaos(
    seed: int = 0,
    nodes: int = 3,
    mode: str = "thread",
    requests_per_phase: int = 3,
    eject_after: int = 2,
    readmit_after: int = 1,
    heartbeat_budget: int | None = None,
    log: ChaosEventLog | None = None,
) -> SelfHealReport:
    """Kill a seeded node; prove the tier heals itself within budget.

    The heartbeat loop is driven *synchronously* (``monitor.tick()``
    between request phases) rather than on its background thread, so
    "within N heartbeats" is a deterministic count, not a race.  The
    supervisor likewise heals via one explicit ``check_once()`` sweep.
    The production wiring — the same objects on their daemon threads —
    is exercised by the integration tests; this harness proves the
    *logic* heals, with the clock taken out of the verdict.
    """
    from .cluster import LocalCluster, NodeAnswer, merge_node_responses
    from .cluster.healthd import HealthMonitor
    from .cluster.supervisor import ClusterSupervisor
    from .cluster.topology import partition_index

    if heartbeat_budget is None:
        # eject_after failing beats, one supervisor sweep, readmit_after
        # probation beats, plus slack for a slow respawn probe.
        heartbeat_budget = eject_after + readmit_after + 3
    log = log if log is not None else ChaosEventLog()
    queries, index, loader = build_workload(seed=seed)
    options = QueryOptions(top=5, min_score=1)

    ref_topology, parts = partition_index(index, nodes)
    ref_engines = {
        spec.node_id: SearchEngine(part, cache=ResultCache(0))
        for spec, part in zip(ref_topology.nodes, parts)
        if not spec.empty
    }

    def reference(query: str, down: set[int]) -> SearchResponse:
        live = [
            NodeAnswer(node_id=nid, response=engine.search(query, options))
            for nid, engine in ref_engines.items()
            if nid not in down
        ]
        return merge_node_responses(query.upper(), live, ref_topology, options)

    rng = random.Random(f"selfheal:{seed}")
    outcomes: dict[str, list[SearchResponse | Exception]] = {}
    expected: dict[str, list[SearchResponse]] = {}
    timeline: list[dict] = []
    slo_timeline: dict[str, tuple[str, ...]] = {}
    issued = 0
    answered = 0

    # Burn-rate tracking over a fake clock: one tick per request, with
    # a window-sized jump between phases so the down-phase's bad
    # samples age out before the healed phase is judged — hours of
    # sliding window compressed into deterministic ticks.
    from ..obs import SloTracker

    slo_clock = [0.0]
    slo_window = float(2 * requests_per_phase)

    with LocalCluster(index, nodes=nodes, mode=mode, batch_window=0.0) as cluster:
        victim = rng.choice(sorted(ref_engines))
        with cluster.client(gather_timeout=15.0, breaker_factory=None) as client:
            coordinator = client.coordinator
            coordinator.slo = SloTracker(
                fast_window=slo_window,
                slow_window=slo_window,
                clock=lambda: slo_clock[0],
                registry=coordinator.obs.registry,
                log=coordinator.obs.log,
            )
            monitor = HealthMonitor(
                coordinator.channels,
                eject_after=eject_after,
                readmit_after=readmit_after,
                jitter=0.0,
                seed=seed,
                obs=coordinator.obs,
            )
            coordinator.monitor = monitor  # attached, tick-driven, no thread
            supervisor = ClusterSupervisor(
                cluster, coordinators=[coordinator], obs=coordinator.obs
            )
            log.record(
                "selfheal-schedule",
                seed=seed,
                mode=mode,
                victim=victim,
                eject_after=eject_after,
                readmit_after=readmit_after,
                budget=heartbeat_budget,
            )

            def run_phase(phase: str, down: set[int]) -> None:
                nonlocal issued, answered
                outcomes[phase] = []
                expected[phase] = []
                for r in range(requests_per_phase):
                    query = queries[(len(timeline) + r) % len(queries)]
                    issued += 1
                    slo_clock[0] += 1.0
                    try:
                        response = client.search(query, options)
                        outcomes[phase].append(response)
                        answered += 1
                        timeline.append(
                            {"phase": phase, "request": r, "coverage": response.coverage}
                        )
                        log.record(
                            "answered", phase=phase, request=r,
                            coverage=response.coverage,
                        )
                    except Exception as exc:  # noqa: BLE001 - judged by the report
                        outcomes[phase].append(exc)
                        timeline.append(
                            {"phase": phase, "request": r, "coverage": None}
                        )
                        log.record(
                            "request-failed", phase=phase, request=r, error=str(exc)
                        )
                    expected[phase].append(reference(query, down))

            def snap_slo(phase: str) -> None:
                firing = tuple(
                    status.objective.name
                    for status in coordinator.slo.evaluate()
                    if status.firing
                )
                slo_timeline[phase] = firing
                log.record("slo", phase=phase, firing=list(firing))

            monitor.tick()  # everyone starts as a confirmed member
            run_phase("steady", set())
            snap_slo("steady")

            cluster.kill_node(victim)
            log.record("node.kill", node=victim)
            ticks_to_eject = 0
            while monitor.is_up(victim) and ticks_to_eject < heartbeat_budget:
                monitor.tick()
                ticks_to_eject += 1
            log.record("node.ejected", node=victim, ticks=ticks_to_eject)
            run_phase("down", {victim})
            snap_slo("down")

            respawned = supervisor.check_once()
            log.record("supervisor.sweep", respawned=respawned)
            ticks_to_recover = ticks_to_eject
            while not monitor.is_up(victim) and ticks_to_recover < heartbeat_budget + 1:
                monitor.tick()
                ticks_to_recover += 1
            log.record("node.readmitted", node=victim, ticks=ticks_to_recover)
            # Let the outage's bad samples age out of the window before
            # judging the healed phase — the "clears after heal" half.
            slo_clock[0] += slo_window
            run_phase("healed", set())
            snap_slo("healed")
            final_health = dict(client.health())

    log.record(
        "selfheal-drained",
        victim=victim,
        ticks_to_eject=ticks_to_eject,
        ticks_to_recover=ticks_to_recover,
    )
    report = SelfHealReport(
        mode=mode,
        seed=seed,
        victim=victim,
        outcomes=outcomes,
        expected=expected,
        coverage_timeline=timeline,
        ticks_to_eject=ticks_to_eject,
        ticks_to_recover=ticks_to_recover,
        heartbeat_budget=heartbeat_budget,
        respawned=respawned,
        issued=issued,
        answered=answered,
        final_health=final_health,
        log=log,
        slo_timeline=slo_timeline,
    )
    report.events_dumped_to = log.dump_env()
    return report


def limiter_convergence_trace(
    seed: int = 0,
    capacity: int = 4,
    initial: int = 64,
    rounds: int = 60,
    settle_rounds: int = 10,
) -> dict:
    """Drive the AIMD limiter through a slow-node schedule; judge convergence.

    A deterministic discrete-time model of a node that can finish
    ``capacity`` requests per round on time: each round the server
    admits ``limit`` requests, the first ``capacity`` complete on time
    (additive increase), the rest miss their deadline (multiplicative
    decrease, one cut per round thanks to the cooldown).  The limiter
    must *converge*: once past the transient, the limit stays in a
    band around capacity and cuts become one-per-excursion instead of
    a collapse to the floor.  Returned trace: per-round limits, cut
    count, and a ``converged`` verdict over the final
    ``settle_rounds``.
    """
    from .guard import AdaptiveLimiter

    fake_now = [0.0]
    limiter = AdaptiveLimiter(
        initial=initial,
        min_limit=1,
        max_limit=initial,
        cooldown=0.5,
        clock=lambda: fake_now[0],
    )
    trace: list[int] = []
    for _ in range(rounds):
        fake_now[0] += 1.0  # each round is past the cooldown: cuts allowed
        admitted = limiter.limit
        on_time = min(admitted, capacity)
        for _ in range(on_time):
            limiter.on_success()
        for _ in range(admitted - on_time):
            limiter.on_overload()
        trace.append(limiter.limit)
    settle = trace[-settle_rounds:]
    # Converged: the limit hugs capacity — never at the static ceiling,
    # never collapsed to the floor, and within a 4x band of capacity.
    converged = all(1 <= limit <= max(4 * capacity, 4) for limit in settle)
    return {
        "capacity": capacity,
        "initial": initial,
        "trace": trace,
        "cuts": limiter.cuts,
        "settle": settle,
        "converged": converged,
    }


# ----------------------------------------------------------------------
# Ingest disk-fault chaos
# ----------------------------------------------------------------------
@dataclass
class IngestChaosRun:
    """One fault scenario's outcome inside an ingest chaos sweep."""

    label: str
    kind: str
    crashed: bool
    acked: int
    served_new: int
    ok: bool
    notes: list[str] = field(default_factory=list)

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        tail = f" ({'; '.join(self.notes)})" if self.notes else ""
        return (
            f"{self.kind}@{self.label}: {status} crashed={self.crashed} "
            f"acked={self.acked} served_new={self.served_new}{tail}"
        )


@dataclass
class IngestChaosReport:
    """Everything an ingest chaos sweep produced, for the tests to judge."""

    seed: int
    seal_every: int
    labels: list[str]
    runs: list[IngestChaosRun]
    log: ChaosEventLog
    events_dumped_to: Path | None = None

    @property
    def failures(self) -> list[IngestChaosRun]:
        return [run for run in self.runs if not run.ok]

    def summary(self) -> str:
        return (
            f"ingest chaos seed={self.seed}: {len(self.labels)} crash points, "
            f"{len(self.runs)} runs, {len(self.failures)} failures"
        )


def _ingest_workload(
    seed: int, n_new: int
) -> tuple[list[str], list[tuple[str, str]], Callable[[], DatabaseIndex]]:
    """Queries, the records to stream in, and the immutable base loader.

    Every streamed record carries a planted mutation of one query, so a
    record that recovery silently dropped would *change a ranking* —
    the bit-identity check doubles as a served-records check.
    """
    queries, _index, loader = build_workload(
        seed=seed, n_records=8, record_bp=120, shards=2, n_queries=4
    )
    new_records = []
    for i in range(n_new):
        sequence = random_dna(140, seed=20_000 + seed * 100 + i)
        planted = mutate(queries[i % len(queries)], rate=0.04, seed=21_000 + i)
        new_records.append((f"live{i}", sequence[:40] + planted + sequence[40:]))
    return queries, new_records, loader


def _ingest_signatures(
    manager: IndexManager, queries: list[str]
) -> list[tuple]:
    engine = SearchEngine(manager)
    options = QueryOptions(top=10)
    return [response_signature(engine.search(q, options)) for q in queries]


def _ingest_lifecycle(
    service: IngestService, records: list[tuple[str, str]]
) -> list[str]:
    """Stream ``records`` then force-seal; returns the acked names.

    A :class:`CrashPoint` (or read-only trip) propagates to the caller
    with the acked list reflecting exactly the acknowledgements that
    made it out before the fault — which is the contract under test.
    """
    acked: list[str] = []
    for name, sequence in records:
        service.ingest(name, sequence)
        acked.append(name)
    service.seal()
    return acked


def run_ingest_chaos(
    seed: int = 0,
    n_new: int = 7,
    seal_every: int = 3,
    tcp: bool = True,
    log: ChaosEventLog | None = None,
) -> IngestChaosReport:
    """Kill the WAL ingest lifecycle at every labeled disk barrier.

    The sweep first runs the lifecycle fault-free to (a) enumerate
    every :class:`FaultFS` barrier it crosses and (b) record the
    reference rankings.  Then, per barrier: a fresh directory, a
    scheduled crash at that barrier, a recovery over the survivors,
    and the invariants:

    * recovery lands on a consistent generation (no exception, no
      degraded shards for a plain crash);
    * every acked record is served post-recovery, and nothing is
      served that was never submitted (at-least-once, never-lost);
    * after re-ingesting whatever the crash interrupted, rankings are
      **bit-identical** to the fault-free reference;
    * torn writes behave like crashes (the torn tail is cut), short
      writes and ENOSPC/EIO degrade to read-only while searches keep
      answering, and a lying fsync on a delta publish quarantines the
      delta (visible partial coverage) instead of serving garbage.

    With ``tcp=True`` the ENOSPC scenario also runs against a real
    :class:`~repro.service.net.TcpSearchServer`: the ``ingest`` verb
    answers ``read-only`` error frames while ``search`` keeps serving
    — the server degrades, it does not crash.
    """
    events = log if log is not None else ChaosEventLog()
    queries, new_records, loader = _ingest_workload(seed, n_new)
    submitted = {name for name, _ in new_records}
    base_names = {name for name in _served(loader())}
    runs: list[IngestChaosRun] = []

    # Fault-free probe: enumerate barriers + reference rankings.
    probe_fs = FaultFS()
    with tempfile.TemporaryDirectory(prefix="repro-ingest-ref-") as ref_dir:
        manager = IndexManager(index=loader(), loader=loader)
        service = IngestService(
            manager, ref_dir, seal_every=seal_every, fs=probe_fs
        )
        _ingest_lifecycle(service, new_records)
        reference = _ingest_signatures(manager, queries)
    labels = list(dict.fromkeys(probe_fs.labels_seen))
    events.record("probe", labels=len(labels), reference_queries=len(queries))

    def recover_and_converge(
        directory: str, acked: list[str], kind: str, label: str
    ) -> IngestChaosRun:
        """Restart over ``directory`` and judge the lifecycle invariants."""
        notes: list[str] = []
        manager = IndexManager(index=loader(), loader=loader)
        try:
            revived = IngestService(
                manager, directory, seal_every=seal_every, fs=FaultFS()
            )
        except Exception as exc:  # noqa: BLE001 - recovery must never fail
            events.record("recovery-failed", label=label, error=repr(exc))
            return IngestChaosRun(
                label, kind, True, len(acked), 0, False,
                [f"recovery raised {exc!r}"],
            )
        served = set(revived.served_names())
        served_new = served - base_names
        index = manager.current()[0]
        if set(acked) - served:
            notes.append(f"acked records lost: {sorted(set(acked) - served)}")
        if served_new - submitted:
            notes.append(f"served never-submitted: {sorted(served_new - submitted)}")
        if index.degraded:
            notes.append(f"degraded shards after plain crash: {index.degraded}")
        # Converge: re-ingest whatever the crash interrupted, in the
        # original order, then the rankings must be bit-identical to
        # the run that never crashed.
        for name, sequence in new_records:
            if name not in served:
                revived.ingest(name, sequence)
        revived.seal()
        if _ingest_signatures(manager, queries) != reference:
            notes.append("post-recovery rankings differ from fault-free reference")
        events.record(
            "recovered", label=label, fault=kind,
            acked=len(acked), served_new=len(served_new), ok=not notes,
        )
        return IngestChaosRun(
            label, kind, True, len(acked), len(served_new), not notes, notes
        )

    # -- the crash sweep: one run per labeled barrier -------------------
    for label in labels:
        plan = DiskFaultPlan.crash_at(label)
        with tempfile.TemporaryDirectory(prefix="repro-ingest-chaos-") as chaos_dir:
            acked: list[str] = []
            crashed = False
            try:
                manager = IndexManager(index=loader(), loader=loader)
                service = IngestService(
                    manager, chaos_dir, seal_every=seal_every, fs=FaultFS(plan)
                )
                for name, sequence in new_records:
                    service.ingest(name, sequence)
                    acked.append(name)
                service.seal()
            except CrashPoint:
                crashed = True
            events.record("crash-injected", label=label, acked=len(acked))
            run = recover_and_converge(chaos_dir, acked, "crash", label)
            run.crashed = crashed
            if not crashed:
                run.ok = False
                run.notes.append("scheduled crash point was never reached")
            runs.append(run)

    # -- torn write: half the append lands, then the crash --------------
    with tempfile.TemporaryDirectory(prefix="repro-ingest-chaos-") as chaos_dir:
        acked = []
        crashed = False
        try:
            manager = IndexManager(index=loader(), loader=loader)
            service = IngestService(
                manager, chaos_dir, seal_every=seal_every,
                fs=FaultFS(DiskFaultPlan.torn_at("journal.append", after=2)),
            )
            for name, sequence in new_records:
                service.ingest(name, sequence)
                acked.append(name)
            service.seal()
        except CrashPoint:
            crashed = True
        run = recover_and_converge(chaos_dir, acked, "torn", "journal.append")
        run.crashed = crashed
        if not crashed:
            run.ok = False
            run.notes.append("torn write never triggered")
        runs.append(run)

    # -- short write: ENOSPC mid-frame → read-only, then restart heals --
    with tempfile.TemporaryDirectory(prefix="repro-ingest-chaos-") as chaos_dir:
        notes = []
        acked = []
        manager = IndexManager(index=loader(), loader=loader)
        service = IngestService(
            manager, chaos_dir, seal_every=seal_every,
            fs=FaultFS(DiskFaultPlan.short_at("journal.append", after=2)),
        )
        tripped = False
        for name, sequence in new_records:
            try:
                service.ingest(name, sequence)
                acked.append(name)
            except IngestReadOnly:
                tripped = True
                break
        if not tripped or not service.read_only:
            notes.append("short write did not trip read-only")
        try:
            _ingest_signatures(manager, queries)
        except Exception as exc:  # noqa: BLE001 - serving must survive
            notes.append(f"search failed while read-only: {exc!r}")
        run = recover_and_converge(chaos_dir, acked, "short", "journal.append")
        run.notes = notes + run.notes
        run.ok = run.ok and not notes
        runs.append(run)

    # -- lying fsync on the journal: acks a crash then discards ---------
    # This is the one fault that *forfeits* acked⊆served — the disk
    # claimed durability it did not deliver.  The lifecycle's promise
    # shrinks to: recovery still lands consistent, nothing fabricated
    # is served, and re-ingest converges to the reference.
    with tempfile.TemporaryDirectory(prefix="repro-ingest-chaos-") as chaos_dir:
        acked = []
        crashed = False
        try:
            manager = IndexManager(index=loader(), loader=loader)
            service = IngestService(
                manager, chaos_dir, seal_every=seal_every,
                fs=FaultFS(
                    DiskFaultPlan.fsync_drop_at("journal.sync").merged(
                        DiskFaultPlan.crash_at("seal.rename")
                    )
                ),
            )
            for name, sequence in new_records:
                service.ingest(name, sequence)
                acked.append(name)
            service.seal()
        except CrashPoint:
            crashed = True
        run = recover_and_converge(chaos_dir, acked, "fsync-drop", "journal.sync")
        run.crashed = crashed
        run.notes = [
            note for note in run.notes if not note.startswith("acked records lost")
        ]
        run.ok = not run.notes and crashed
        if not crashed:
            run.notes.append("lying-fsync crash never triggered")
        runs.append(run)

    # -- lying fsync on a delta publish: quarantine, never garbage ------
    with tempfile.TemporaryDirectory(prefix="repro-ingest-chaos-") as chaos_dir:
        notes = []
        acked = []
        crashed = False
        try:
            manager = IndexManager(index=loader(), loader=loader)
            service = IngestService(
                manager, chaos_dir, seal_every=seal_every,
                fs=FaultFS(
                    DiskFaultPlan.fsync_drop_at("delta.sync").merged(
                        DiskFaultPlan.crash_at("segment.retire")
                    )
                ),
            )
            for name, sequence in new_records:
                service.ingest(name, sequence)
                acked.append(name)
            service.seal()
        except CrashPoint:
            crashed = True
        if not crashed:
            notes.append("delta lying-fsync crash never triggered")
        manager = IndexManager(index=loader(), loader=loader)
        try:
            revived = IngestService(
                manager, chaos_dir, seal_every=seal_every, fs=FaultFS()
            )
        except Exception as exc:  # noqa: BLE001
            notes.append(f"recovery raised {exc!r}")
            revived = None
        served_new: set[str] = set()
        if revived is not None:
            index = manager.current()[0]
            served = set(revived.served_names())
            served_new = served - base_names
            # The quarantined placeholder keeps the lost delta's record
            # slots, so the gap between total records and served ones
            # is exactly the quarantined capacity.
            lost_capacity = index.record_count - len(base_names) - len(served_new)
            if not index.degraded:
                notes.append("quarantine not surfaced as degraded shards")
            if len(set(acked) - served) > lost_capacity:
                notes.append("acked records lost beyond the quarantined delta")
            if served_new - submitted:
                notes.append(f"served never-submitted: {sorted(served_new - submitted)}")
            # Set-convergence: every submitted record is servable again
            # once re-ingested (the quarantined placeholders keep their
            # degraded slots, so bit-identity is out of scope here).
            for name, sequence in new_records:
                if name not in served:
                    revived.ingest(name, sequence)
            revived.seal()
            final_served = set(revived.served_names())
            if not submitted <= final_served:
                notes.append(
                    f"records missing after re-ingest: {sorted(submitted - final_served)}"
                )
        events.record("quarantine-run", notes=list(notes))
        runs.append(
            IngestChaosRun(
                "delta.sync", "fsync-drop", crashed,
                len(acked), len(served_new), not notes, notes,
            )
        )

    # -- ENOSPC / EIO: read-only degradation, serving uninterrupted -----
    for kind, label in (("enospc", "journal.append"), ("eio", "journal.sync")):
        with tempfile.TemporaryDirectory(prefix="repro-ingest-chaos-") as chaos_dir:
            notes = []
            plan = (
                DiskFaultPlan.enospc_at(label, after=1, times=None)
                if kind == "enospc"
                else DiskFaultPlan.eio_at(label, after=1, times=None)
            )
            manager = IndexManager(index=loader(), loader=loader)
            service = IngestService(
                manager, chaos_dir, seal_every=seal_every, fs=FaultFS(plan)
            )
            acked = []
            tripped = False
            for name, sequence in new_records:
                try:
                    service.ingest(name, sequence)
                    acked.append(name)
                except IngestReadOnly:
                    tripped = True
                    break
            if not tripped or not service.read_only:
                notes.append(f"{kind} did not trip read-only")
            try:
                service.ingest("after-fault", "ACGT")
                notes.append("ingest accepted while read-only")
            except IngestReadOnly:
                pass
            try:
                _ingest_signatures(manager, queries)
            except Exception as exc:  # noqa: BLE001
                notes.append(f"search failed while read-only: {exc!r}")
            events.record("read-only-run", fault=kind, label=label, ok=not notes)
            runs.append(
                IngestChaosRun(label, kind, False, len(acked), 0, not notes, notes)
            )

    # -- the TCP leg: a full disk degrades the server, never kills it ---
    if tcp:
        notes = []
        with tempfile.TemporaryDirectory(prefix="repro-ingest-chaos-") as chaos_dir:
            manager = IndexManager(index=loader(), loader=loader)
            service = IngestService(
                manager, chaos_dir, seal_every=seal_every,
                fs=FaultFS(
                    DiskFaultPlan.enospc_at("journal.append", after=2, times=None)
                ),
            )
            engine = SearchEngine(manager)
            engine.attach_ingest(service)
            handle = ServerThread(engine).start()
            try:
                with SearchClient(handle.host, handle.port) as client:
                    for name, sequence in new_records[:2]:
                        client.ingest(name, sequence)
                    read_only_seen = False
                    try:
                        client.ingest(*new_records[2])
                    except ServiceError as exc:
                        read_only_seen = exc.code == "read-only"
                    if not read_only_seen:
                        notes.append("full disk did not answer a read-only error frame")
                    response = client.search(queries[0], QueryOptions(top=5))
                    if response.coverage != 1.0:
                        notes.append("search degraded while ingest is read-only")
                    health = client.health()
                    ingest_state = health.get("ingest")
                    if not (
                        isinstance(ingest_state, dict) and ingest_state.get("read_only")
                    ):
                        notes.append("health does not surface read-only ingest")
                    if not client.ping():
                        notes.append("server unreachable after disk fault")
            except Exception as exc:  # noqa: BLE001 - the server must survive
                notes.append(f"TCP leg failed: {exc!r}")
            finally:
                handle.stop()
        events.record("tcp-read-only-run", ok=not notes)
        runs.append(
            IngestChaosRun(
                "journal.append", "enospc-tcp", False, 2, 0, not notes, notes
            )
        )

    report = IngestChaosReport(
        seed=seed, seal_every=seal_every, labels=labels, runs=runs, log=events
    )
    report.events_dumped_to = events.dump_env()
    return report


def _served(index: DatabaseIndex) -> list[str]:
    return [name for shard in index.active_shards for name in shard.names]


def main(argv: Sequence[str] | None = None) -> int:
    """Direct entry point: run one chaos schedule and judge it."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--requests", type=int, default=24)
    parser.add_argument("--fault-rate", type=float, default=0.35)
    parser.add_argument(
        "--cluster",
        action="store_true",
        help="run the cluster kill/netsplit schedule instead",
    )
    parser.add_argument(
        "--selfheal",
        action="store_true",
        help="run the kill→eject→respawn→readmit self-healing schedule",
    )
    parser.add_argument(
        "--ingest",
        action="store_true",
        help="run the WAL ingest disk-fault crash sweep instead",
    )
    parser.add_argument(
        "--mode",
        choices=("thread", "process"),
        default="thread",
        help="node mode for --selfheal (process spawns real `repro serve` children)",
    )
    parser.add_argument("--nodes", type=int, default=3, help="cluster node count")
    parser.add_argument("--log", help="dump the event log to this JSON path")
    args = parser.parse_args(argv)
    if args.ingest:
        ireport = run_ingest_chaos(seed=args.seed)
        if args.log:
            ireport.events_dumped_to = ireport.log.dump(args.log)
        elif os.environ.get(CHAOS_LOG_ENV):
            ireport.events_dumped_to = ireport.log.dump(os.environ[CHAOS_LOG_ENV])
        print(ireport.summary())
        for run in ireport.runs:
            print(f"  {run.describe()}")
        if ireport.events_dumped_to is not None:
            print(f"event log: {ireport.events_dumped_to}")
        return 0 if not ireport.failures else 1
    if args.selfheal:
        sreport = run_selfheal_chaos(seed=args.seed, nodes=args.nodes, mode=args.mode)
        if args.log:
            sreport.events_dumped_to = sreport.log.dump(args.log)
        print(sreport.summary())
        if sreport.events_dumped_to is not None:
            print(f"event log: {sreport.events_dumped_to}")
        convergence = limiter_convergence_trace(seed=args.seed)
        print(
            f"limiter convergence: capacity={convergence['capacity']} "
            f"settle={convergence['settle']} converged={convergence['converged']}"
        )
        ok = (
            not sreport.failures
            and not sreport.mismatches()
            and not sreport.heal_violations()
            and not sreport.slo_violations()
            and convergence["converged"]
        )
        return 0 if ok else 1
    if args.cluster:
        creport = run_cluster_chaos(
            seed=args.seed, requests=args.requests, nodes=args.nodes
        )
        if args.log:
            creport.events_dumped_to = creport.log.dump(args.log)
        print(creport.summary())
        if creport.events_dumped_to is not None:
            print(f"event log: {creport.events_dumped_to}")
        ok = (
            not creport.failures
            and not creport.mismatches()
            and not creport.span_violations()
            and not creport.clean_mismatches()
            and not creport.trace_violations()
        )
        return 0 if ok else 1
    report = run_chaos(
        seed=args.seed, requests=args.requests, fault_rate=args.fault_rate
    )
    if args.log:
        report.events_dumped_to = report.log.dump(args.log)
    print(report.summary())
    if report.events_dumped_to is not None:
        print(f"event log: {report.events_dumped_to}")
    ok = (
        not report.failures
        and not report.mismatches()
        and report.drained_inflight == 0
        and report.served == len(report.outcomes)
    )
    return 0 if ok else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
