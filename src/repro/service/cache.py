"""LRU result cache for the search service.

The sweep is the expensive phase (O(m·n) over the whole database); the
cache remembers its *ranked candidate* output keyed by everything the
ranking depends on — query text, scoring scheme, index version stamp,
and the ``min_score``/``top`` knobs.  Anything downstream of the sweep
(alignment retrieval, E-values, rendering) is cheap and recomputed per
request, so a cached entry stays valid across different ``retrieve``
or statistics settings.

Keying on the index *version* (a content hash, see
:class:`~repro.service.index.DatabaseIndex`) is what makes invalidation
automatic: rebuilding the index over changed data yields a new version
string and therefore a disjoint key space — stale rankings cannot be
served, and no explicit flush protocol is needed.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable

from ..align.scoring import AffineScoring, LinearScoring, SubstitutionMatrix
from ..obs.metrics import NULL_REGISTRY, MetricsRegistry

__all__ = ["scheme_token", "CacheKey", "CacheStats", "ResultCache"]


def scheme_token(scheme: object) -> tuple[Hashable, ...]:
    """A hashable value identifying a scoring scheme's behaviour.

    Two schemes that score every pair identically map to the same
    token; substitution matrices hash their full lookup table, so two
    differently-built but identical matrices also coincide.
    """
    if isinstance(scheme, LinearScoring):
        return ("linear", scheme.match, scheme.mismatch, scheme.gap)
    if isinstance(scheme, AffineScoring):
        return ("affine", scheme.match, scheme.mismatch, scheme.gap_open, scheme.gap_extend)
    if isinstance(scheme, SubstitutionMatrix):
        table_hash = hashlib.sha256(scheme._table.tobytes()).hexdigest()[:16]
        return ("matrix", scheme.gap, table_hash)
    raise TypeError(f"cannot derive a cache token for {type(scheme).__name__}")


@dataclass(frozen=True)
class CacheKey:
    """Everything the sweep ranking depends on.

    ``generation`` is the hot-reload generation number of the index
    the sweep ran against (see
    :class:`~repro.service.guard.IndexManager`).  The content hash in
    ``index_version`` already separates *different* data; the
    generation additionally separates two loads of byte-identical data
    so that a reload always yields a fresh key space — a cached
    response whose generation differs from the live one is unreachable
    even before the reload's eviction pass runs.

    ``kernel`` is the resolved :mod:`repro.kernels` backend name the
    sweep ran on.  Backends are bit-identical, so sharing entries
    across kernels would be *correct* — but keying on the kernel keeps
    hit-rate accounting honest per backend and means a request that
    explicitly asked for a backend provably exercised it at least
    once.
    """

    query: str
    scheme: tuple[Hashable, ...]
    index_version: str
    min_score: int
    top: int
    generation: int = 0
    kernel: str = "reference"


@dataclass(frozen=True)
class CacheStats:
    """Counter snapshot — hit rate is hits over all lookups."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class ResultCache:
    """Bounded LRU mapping :class:`CacheKey` to sweep results.

    ``capacity=0`` disables caching entirely (every lookup misses,
    nothing is stored) — the ``--no-cache`` CLI path.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 0:
            raise ValueError(f"capacity cannot be negative, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[CacheKey, object] = OrderedDict()
        # Serving threads and reload/ingest publishers share one cache;
        # check-then-move and iterate-then-delete must be atomic.
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bind(NULL_REGISTRY)

    def bind(self, registry: MetricsRegistry) -> None:
        """Register this cache's counters on ``registry``.

        The counters count from the moment of binding (the engine
        binds at construction, before any traffic); the cumulative
        ``hits``/``misses`` attributes remain the full-history view.
        """
        self._m_hits = registry.counter(
            "cache_hits_total", "Result-cache lookups answered without a sweep"
        )
        self._m_misses = registry.counter(
            "cache_misses_total", "Result-cache lookups that required a sweep"
        )
        self._m_evictions = registry.counter(
            "cache_evictions_total", "Result-cache LRU evictions"
        )
        registry.gauge("cache_capacity", "Result-cache entry capacity").set(
            self.capacity
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def get(self, key: CacheKey) -> object | None:
        """Look up ``key``; counts a hit/miss and refreshes recency."""
        with self._lock:
            if key in self._entries:
                self.hits += 1
                self._m_hits.inc()
                self._entries.move_to_end(key)
                return self._entries[key]
            self.misses += 1
            self._m_misses.inc()
            return None

    def put(self, key: CacheKey, value: object) -> None:
        """Insert ``key``; evicts the least-recently-used past capacity."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                self._m_evictions.inc()

    def clear(self) -> None:
        """Drop all entries (counters are kept — they describe traffic)."""
        with self._lock:
            self._entries.clear()

    def evict_where(self, predicate) -> int:
        """Drop every entry whose key satisfies ``predicate``.

        Returns the number of entries evicted (counted as evictions —
        they are capacity reclaimed, just not by LRU pressure).  Hot
        index reload uses this to purge all prior-generation entries.
        """
        with self._lock:
            stale = [key for key in self._entries if predicate(key)]
            for key in stale:
                del self._entries[key]
                self.evictions += 1
                self._m_evictions.inc()
        return len(stale)

    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self._entries),
            capacity=self.capacity,
        )
