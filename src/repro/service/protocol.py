"""Versioned, length-prefixed JSON frame protocol for networked search.

This module is the single owner of everything that crosses the wire
between :class:`~repro.service.net.TcpSearchServer` and
:class:`~repro.service.client.SearchClient` — both sides call the same
encode/decode functions, so the bytes are shared byte-for-byte by
construction.  The legacy line protocol
(:meth:`~repro.service.server.SearchServer.handle_line`) also routes
its option parsing and error formatting through here, so the two
front-ends cannot drift.

Frame format
------------
A frame is a 4-byte big-endian unsigned length ``N`` followed by ``N``
bytes of UTF-8 JSON encoding one object::

    +----------+----------------------+
    | len: >I  |  JSON object (UTF-8) |
    +----------+----------------------+

``N`` is bounded by :data:`MAX_FRAME_BYTES` (8 MiB): a peer announcing
a larger frame is protocol-broken and the connection is closed rather
than buffered.  The length prefix makes the stream self-delimiting, so
many frames can be pipelined back-to-back on one connection.

Every frame object carries ``"v"`` (the protocol version) and
``"type"``.  Client → server types::

    {"v": 1, "type": "hello", "versions": [1]}
    {"v": 1, "type": "request", "id": 7, "verb": "search",
     "query": "ACGT...", "options": {"top": 10, "min_score": 1, "retrieve": 0}}
    {"v": 1, "type": "request", "id": 8, "verb": "stats"}      # also:
    {"v": 1, "type": "request", "id": 9, "verb": "metrics"}    # Prometheus text
    {"v": 1, "type": "request", "id": 10, "verb": "trace", "arg": "t000002"}
    {"v": 1, "type": "request", "id": 11, "verb": "ping"}
    {"v": 2, "type": "request", "id": 12, "verb": "health"}    # v2 only
    {"v": 2, "type": "request", "id": 13, "verb": "reload"}    # v2 only

Protocol v2 additionally accepts ``"deadline_ms"`` inside a search
request's ``options`` — the request's remaining end-to-end budget in
milliseconds, re-anchored by the server at receipt — and ``"kernel"``,
the :mod:`repro.kernels` backend name the sweep must run on (absent
means "the server's configured default"; an unknown name is a
``bad-request``).

Server → client types::

    {"v": 1, "type": "hello", "version": 1, "server": "repro"}
    {"v": 1, "type": "response", "id": 7, "query": ..., "hits": [...],
     "coverage": 1.0, "degraded_shards": [], ...}
    {"v": 1, "type": "result", "id": 8, "payload": {...}}      # admin verbs
    {"v": 1, "type": "error", "id": 7, "code": "bad-request",
     "message": "top must be positive, got 0"}

Error frames reuse the :class:`~repro.service.resilience.ServiceError`
taxonomy codes (``bad-request`` / ``overloaded`` / ``timeout`` /
``shard-failure`` / ``worker-timeout`` / ``index-corrupt`` /
``protocol`` / ``internal``) — the same one-token classes the line
protocol prints after ``error``.

Version negotiation
-------------------
The client's first frame is a ``hello`` listing every protocol version
it speaks; the server answers with a ``hello`` naming the highest
version both sides share (or an ``error`` frame with code
``protocol`` when there is none) and that version governs the rest of
the connection.  Every subsequent frame still carries ``"v"`` and a
mismatch is a :class:`ProtocolError` — cheap insurance against a peer
that skipped negotiation.  A server additionally tolerates a client
that opens with a plain ``request`` frame (implicitly claiming the
version in ``"v"``), so one-shot scripted clients need not handshake.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass

from ..align.smith_waterman import LocalHit
from ..scan import ScanHit, ScanReport
from .engine import RequestMetrics, SearchResponse
from .resilience import (
    BadRequest,
    DeadlineExceeded,
    IndexCorrupt,
    Overloaded,
    RequestTimeout,
    ServiceError,
)

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "MAX_FRAME_BYTES",
    "HEADER",
    "ProtocolError",
    "ParsedRequest",
    "RemoteAlignment",
    "encode_frame",
    "frame_length",
    "decode_frame",
    "decode_frame_bytes",
    "hello_frame",
    "hello_reply",
    "negotiate",
    "check_hello_reply",
    "search_request",
    "ingest_request",
    "admin_request",
    "parse_request",
    "options_to_wire",
    "options_from_wire",
    "response_frame",
    "parse_response",
    "result_frame",
    "error_frame",
    "error_for_code",
    "classify_exception",
    "one_line",
    "parse_option_tokens",
    "format_error_line",
]

#: Current protocol version and every version this build can serve.
#:
#: Version history:
#:
#: * **1** — initial frame protocol: ``search`` / ``stats`` /
#:   ``metrics`` / ``trace`` / ``ping``, options ``top`` /
#:   ``min_score`` / ``retrieve``.
#: * **2** — robustness surface: ``deadline_ms`` request option
#:   (end-to-end budget, re-anchored server-side at receipt), the
#:   ``health`` / ``reload`` admin verbs, and the string-valued
#:   ``kernel`` request option naming the :mod:`repro.kernels` backend
#:   the sweep must run on.  The ``ingest`` verb (streaming one FASTA
#:   record into the server's write-ahead journal) is also v2-only.
#:   A v2 peer talking to a v1 peer silently drops the v2-only options
#:   and loses the v2 verbs — negotiation, not failure.
PROTOCOL_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)

#: Hard bound on one frame's JSON body; larger announcements are
#: protocol violations (the paper's responses are "a few bytes" per
#: record — megabyte frames mean a broken or hostile peer).
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: The length prefix: one big-endian unsigned 32-bit integer.
HEADER = struct.Struct(">I")

#: Request verbs the server understands, and the subset that requires
#: a v2 connection (a v1 frame naming one is a protocol error, which
#: is how an old server's behaviour is preserved exactly).
VERBS = ("search", "stats", "metrics", "trace", "ping", "health", "reload", "ingest")
V2_VERBS = frozenset({"health", "reload", "ingest"})

#: Option keys accepted on the wire per protocol version, and by the
#: line protocol (``metrics`` is line-protocol only: render metrics
#: with the reply).
WIRE_OPTION_KEYS_V1 = ("top", "min_score", "retrieve")
WIRE_OPTION_KEYS = WIRE_OPTION_KEYS_V1 + ("deadline_ms", "kernel")
LINE_OPTION_KEYS = WIRE_OPTION_KEYS + ("metrics",)

#: The option keys whose wire value is a string, not an integer
#: (``kernel`` names a registry backend).
STRING_OPTION_KEYS = frozenset({"kernel"})


class ProtocolError(ServiceError):
    """The byte stream or frame structure violated the protocol."""

    code = "protocol"


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(obj: dict) -> bytes:
    """One frame: 4-byte big-endian length + UTF-8 JSON body."""
    if not isinstance(obj, dict):
        raise ProtocolError(f"frame payload must be an object, got {type(obj).__name__}")
    body = json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return HEADER.pack(len(body)) + body


def frame_length(header: bytes, max_frame: int = MAX_FRAME_BYTES) -> int:
    """Decode and bound-check a frame's 4-byte length prefix."""
    if len(header) != HEADER.size:
        raise ProtocolError(
            f"truncated frame header: {len(header)} of {HEADER.size} bytes"
        )
    (length,) = HEADER.unpack(header)
    if length > max_frame:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_frame}-byte limit"
        )
    return length


def decode_frame(body: bytes) -> dict:
    """Decode one frame body (the bytes after the length prefix)."""
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(f"frame body must be an object, got {type(obj).__name__}")
    return obj


def decode_frame_bytes(data: bytes, max_frame: int = MAX_FRAME_BYTES) -> dict:
    """Decode exactly one complete frame (header + body) from ``data``.

    Raises :class:`ProtocolError` on a truncated header, a truncated
    body, an oversized length announcement, or trailing garbage — the
    clean failure modes a reader must distinguish from valid traffic.
    """
    length = frame_length(data[: HEADER.size], max_frame=max_frame)
    body = data[HEADER.size :]
    if len(body) < length:
        raise ProtocolError(f"truncated frame body: {len(body)} of {length} bytes")
    if len(body) > length:
        raise ProtocolError(f"{len(body) - length} trailing bytes after frame")
    return decode_frame(bytes(body))


def _check_version(frame: dict) -> None:
    version = frame.get("v")
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(
            f"unsupported protocol version {version!r} (supported: "
            f"{', '.join(map(str, SUPPORTED_VERSIONS))})"
        )


# ----------------------------------------------------------------------
# Hello / version negotiation
# ----------------------------------------------------------------------
def hello_frame(versions: tuple[int, ...] = SUPPORTED_VERSIONS) -> dict:
    """The client's opening frame: every version it speaks."""
    return {"v": max(versions), "type": "hello", "versions": list(versions)}


def hello_reply(version: int = PROTOCOL_VERSION) -> dict:
    """The server's answer: the negotiated version."""
    return {"v": version, "type": "hello", "version": version, "server": "repro"}


def negotiate(frame: dict) -> int:
    """Server side: pick the highest mutually supported version."""
    offered = frame.get("versions")
    if not isinstance(offered, list) or not all(isinstance(v, int) for v in offered):
        raise ProtocolError("hello frame must list integer versions")
    shared = set(offered) & set(SUPPORTED_VERSIONS)
    if not shared:
        raise ProtocolError(
            f"no shared protocol version (client: {offered}, "
            f"server: {list(SUPPORTED_VERSIONS)})"
        )
    return max(shared)


def check_hello_reply(frame: dict) -> int:
    """Client side: validate the server's hello; returns the version."""
    if frame.get("type") == "error":
        raise error_for_code(frame.get("code", "internal"), frame.get("message", ""))
    if frame.get("type") != "hello":
        raise ProtocolError(f"expected hello reply, got {frame.get('type')!r}")
    version = frame.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(f"server negotiated unsupported version {version!r}")
    return version


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
def options_to_wire(options, version: int = PROTOCOL_VERSION) -> dict:
    """The wire mapping for a :class:`~repro.service.QueryOptions`.

    ``statistics`` never crosses the wire — E-values are the server
    engine's concern.  ``deadline_ms`` and ``kernel`` are v2-only and
    omitted when encoding for a v1 peer (an old server would reject
    the unknown keys; a client that negotiated down simply loses the
    deadline and the kernel selection).
    """
    wire = {
        "top": options.top,
        "min_score": options.min_score,
        "retrieve": options.retrieve,
    }
    if version >= 2:
        if getattr(options, "deadline_ms", None) is not None:
            wire["deadline_ms"] = options.deadline_ms
        if getattr(options, "kernel", None) is not None:
            wire["kernel"] = options.kernel
    return wire


def options_from_wire(mapping, defaults=None):
    """Build a :class:`~repro.service.QueryOptions` from a wire mapping.

    Unknown keys and non-integer values raise :class:`ValueError` (the
    ``bad-request`` class on every front-end); range violations are
    left to the engine's ``validate()`` so the rules live in exactly
    one place.
    """
    from . import QueryOptions

    base = defaults if defaults is not None else QueryOptions()
    if mapping is None:
        return base
    if not isinstance(mapping, dict):
        raise ValueError(f"options must be an object, got {type(mapping).__name__}")
    overrides = {}
    for key, value in mapping.items():
        if key not in WIRE_OPTION_KEYS:
            raise ValueError(f"unknown option {key!r}")
        if key in STRING_OPTION_KEYS:
            if not isinstance(value, str) or not value:
                raise ValueError(
                    f"option {key!r} must be a non-empty string, got {value!r}"
                )
        elif isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"option {key!r} must be an integer, got {value!r}")
        overrides[key] = value
    return base.replace(**overrides) if overrides else base


def search_request(
    request_id: int,
    query: str,
    options,
    version: int = PROTOCOL_VERSION,
    trace_id: str | None = None,
    parent_span: str | None = None,
) -> dict:
    """A ``search`` request frame (encoded for ``version``).

    ``trace_id`` / ``parent_span`` propagate a distributed trace
    context: the server adopts them so its span tree lands in its ring
    under the *caller's* id, fetchable for stitching.  They ride as
    optional top-level keys — ``parse_request`` ignores unknown keys,
    so old peers drop them silently — and are only encoded on v2+
    connections to keep v1 frames byte-stable.
    """
    frame = {
        "v": version,
        "type": "request",
        "id": request_id,
        "verb": "search",
        "query": query,
        "options": options_to_wire(options, version),
    }
    if version >= 2:
        if trace_id is not None:
            frame["trace_id"] = trace_id
        if parent_span is not None:
            frame["parent_span"] = parent_span
    return frame


def ingest_request(
    request_id: int,
    name: str,
    sequence: str,
    version: int = PROTOCOL_VERSION,
) -> dict:
    """An ``ingest`` request frame: append one record to the server's
    write-ahead journal.  v2-only — a v1 connection has no durable
    ingest path, so encoding for one is a caller error, not a silent
    downgrade."""
    if version < 2:
        raise ValueError(
            f"ingest needs protocol v2+, connection negotiated v{version}"
        )
    return {
        "v": version,
        "type": "request",
        "id": request_id,
        "verb": "ingest",
        "record": {"name": name, "sequence": sequence},
    }


def admin_request(
    request_id: int,
    verb: str,
    arg: str | None = None,
    version: int = PROTOCOL_VERSION,
) -> dict:
    """A ``stats`` / ``metrics`` / ``trace`` / ``ping`` /
    ``health`` / ``reload`` request frame."""
    if verb not in VERBS or verb in ("search", "ingest"):
        raise ValueError(f"unknown admin verb {verb!r}")
    if verb in V2_VERBS and version < 2:
        raise ValueError(
            f"verb {verb!r} needs protocol v2+, connection negotiated v{version}"
        )
    frame = {"v": version, "type": "request", "id": request_id, "verb": verb}
    if arg is not None:
        frame["arg"] = arg
    return frame


@dataclass(frozen=True)
class ParsedRequest:
    """A validated request frame, ready for dispatch.

    ``trace_id`` / ``parent_span`` carry the caller's distributed
    trace context when the frame arrived with one (v2 ``search`` only).
    """

    request_id: int
    verb: str
    query: str | None = None
    options: dict | None = None
    arg: str | None = None
    trace_id: str | None = None
    parent_span: str | None = None
    record: dict | None = None


def parse_request(frame: dict) -> ParsedRequest:
    """Validate a request frame (version, id, verb, shape)."""
    _check_version(frame)
    if frame.get("type") != "request":
        raise ProtocolError(f"expected a request frame, got {frame.get('type')!r}")
    request_id = frame.get("id")
    if isinstance(request_id, bool) or not isinstance(request_id, int):
        raise ProtocolError(f"request id must be an integer, got {request_id!r}")
    verb = frame.get("verb")
    if verb not in VERBS:
        raise ProtocolError(
            f"unknown verb {verb!r} (use one of {', '.join(VERBS)})"
        )
    if verb in V2_VERBS and frame.get("v", PROTOCOL_VERSION) < 2:
        raise ProtocolError(f"verb {verb!r} needs protocol v2+")
    query = frame.get("query")
    if verb == "search":
        if not isinstance(query, str) or not query:
            raise BadRequest("search needs a non-empty query string")
    record = frame.get("record")
    if verb == "ingest":
        if not isinstance(record, dict):
            raise BadRequest(
                "ingest needs a record object {'name': ..., 'sequence': ...}"
            )
        for key in ("name", "sequence"):
            value = record.get(key)
            if not isinstance(value, str) or not value:
                raise BadRequest(
                    f"ingest record {key!r} must be a non-empty string, "
                    f"got {value!r}"
                )
    arg = frame.get("arg")
    if arg is not None and not isinstance(arg, str):
        raise ProtocolError(f"arg must be a string, got {arg!r}")
    trace_id = frame.get("trace_id")
    parent_span = frame.get("parent_span")
    for label, value in (("trace_id", trace_id), ("parent_span", parent_span)):
        if value is not None and (not isinstance(value, str) or not value):
            raise ProtocolError(f"{label} must be a non-empty string, got {value!r}")
    return ParsedRequest(
        request_id=request_id,
        verb=verb,
        query=query if verb == "search" else None,
        options=frame.get("options") if verb == "search" else None,
        arg=arg,
        trace_id=trace_id if verb == "search" else None,
        parent_span=parent_span if verb == "search" else None,
        record=record if verb == "ingest" else None,
    )


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RemoteAlignment:
    """A retrieved alignment as the wire carries it: rendered form only.

    The full traceback object stays server-side; clients get the
    pretty text and the identity fraction — enough for
    :meth:`ScanReport.render` and display, which is all retrieval is
    for downstream of the sweep.
    """

    text: str
    identity_fraction: float

    def pretty(self, width: int = 60) -> str:
        return self.text

    def identity(self) -> float:
        return self.identity_fraction


def _hit_to_wire(hit: ScanHit) -> dict:
    wire = {
        "record": hit.record,
        "length": hit.length,
        "score": hit.hit.score,
        "i": hit.hit.i,
        "j": hit.hit.j,
    }
    if hit.evalue is not None:
        wire["evalue"] = hit.evalue
    if hit.alignment is not None:
        wire["alignment"] = hit.alignment.pretty()
        wire["identity"] = hit.alignment.identity()
    return wire


def _hit_from_wire(wire: dict) -> ScanHit:
    alignment = None
    if "alignment" in wire:
        alignment = RemoteAlignment(
            text=wire["alignment"], identity_fraction=wire.get("identity", 0.0)
        )
    return ScanHit(
        record=wire["record"],
        length=wire["length"],
        hit=LocalHit(wire["score"], wire["i"], wire["j"]),
        alignment=alignment,
        evalue=wire.get("evalue"),
    )


def response_frame(
    request_id: int, response: SearchResponse, version: int = PROTOCOL_VERSION
) -> dict:
    """Encode one :class:`SearchResponse` as a response frame."""
    report = response.report
    metrics = response.metrics
    return {
        "v": version,
        "type": "response",
        "id": request_id,
        "query": response.query,
        "coverage": response.coverage,
        "degraded_shards": list(response.degraded_shards),
        "min_score": report.min_score,
        "records": report.records_scanned,
        "cells": report.cells,
        "cache_hit": metrics.cache_hit,
        "workers": metrics.workers,
        "shards": metrics.shards,
        "sweep_seconds": metrics.sweep_seconds,
        "retrieval_seconds": metrics.retrieval_seconds,
        "total_seconds": metrics.total_seconds,
        "hits": [_hit_to_wire(h) for h in report.hits],
    }


def parse_response(frame: dict) -> SearchResponse:
    """Decode a response frame back into a :class:`SearchResponse`.

    The rankings, coverage and degraded-shard set round-trip exactly;
    the metrics carry the server-side timings (the client adds no
    estimate of its own network time).
    """
    _check_version(frame)
    if frame.get("type") != "response":
        raise ProtocolError(f"expected a response frame, got {frame.get('type')!r}")
    try:
        query = frame["query"]
        report = ScanReport(
            query_length=len(query),
            min_score=frame["min_score"],
            records_scanned=frame["records"],
            cells=frame["cells"],
            sweep_seconds=frame["sweep_seconds"],
            total_seconds=frame["total_seconds"],
        )
        report.hits.extend(_hit_from_wire(h) for h in frame["hits"])
        metrics = RequestMetrics(
            query_length=len(query),
            records=frame["records"],
            cells=frame["cells"],
            sweep_seconds=frame["sweep_seconds"],
            retrieval_seconds=frame["retrieval_seconds"],
            total_seconds=frame["total_seconds"],
            workers=frame["workers"],
            shards=frame["shards"],
            cache_hit=frame["cache_hit"],
        )
        return SearchResponse(
            query=query,
            report=report,
            metrics=metrics,
            coverage=frame["coverage"],
            degraded_shards=tuple(frame["degraded_shards"]),
        )
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"malformed response frame: {exc!r}") from None


def result_frame(
    request_id: int, payload: dict, version: int = PROTOCOL_VERSION
) -> dict:
    """An admin-verb result (``stats`` dict, ``metrics`` text, ...)."""
    return {
        "v": version,
        "type": "result",
        "id": request_id,
        "payload": payload,
    }


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------
def error_frame(
    request_id: int | None, code: str, message: str, version: int = PROTOCOL_VERSION
) -> dict:
    """A structured error frame (``id`` may be None for framing errors)."""
    return {
        "v": version,
        "type": "error",
        "id": request_id,
        "code": code,
        "message": one_line(message),
    }


#: Taxonomy classes a client can reconstruct from a bare message.
#: ``deadline-exceeded`` maps to the real class so a budget that ran
#: out server-side raises the *same* exception type a caller of the
#: in-process engine sees.
_SIMPLE_ERRORS = {
    BadRequest.code: BadRequest,
    Overloaded.code: Overloaded,
    RequestTimeout.code: RequestTimeout,
    DeadlineExceeded.code: DeadlineExceeded,
    IndexCorrupt.code: IndexCorrupt,
    "protocol": ProtocolError,
}


def error_for_code(code: str, message: str) -> ServiceError:
    """Rebuild the taxonomy error a wire code/message pair describes.

    Codes with a simple constructor get their real class (so remote
    ``bad-request`` still satisfies ``except ValueError``); the rest
    (``shard-failure``, ``worker-timeout``, unknown future codes) come
    back as a :class:`ServiceError` carrying the wire code.
    """
    cls = _SIMPLE_ERRORS.get(code)
    if cls is not None:
        return cls(message)
    exc = ServiceError(message)
    exc.code = code
    return exc


def classify_exception(exc: BaseException) -> tuple[str, str]:
    """Map any failure onto the taxonomy ``(code, one-line message)``.

    This is the single mapping both front-ends apply: a
    :class:`ServiceError` keeps its own code, malformed input
    (``ValueError``/``TypeError``) is ``bad-request``, and anything
    else is ``internal`` tagged with the exception type.
    """
    if isinstance(exc, ServiceError):
        return exc.code, one_line(exc)
    if isinstance(exc, (ValueError, TypeError)):
        return "bad-request", one_line(exc)
    return "internal", f"{type(exc).__name__}: {one_line(exc)}"


# ----------------------------------------------------------------------
# Line-protocol helpers (shared with SearchServer.handle_line)
# ----------------------------------------------------------------------
def one_line(message: object) -> str:
    """Collapse a message onto one protocol line."""
    return " ".join(str(message).split()) or "unspecified error"


def parse_option_tokens(
    tokens: list[str], allowed: tuple[str, ...] = LINE_OPTION_KEYS
) -> dict[str, int | str]:
    """Parse line-protocol ``key=value`` tokens into options.

    The one option grammar both the line protocol and tests share;
    unknown keys and non-integer values raise :class:`ValueError`
    (``bad-request`` after :func:`classify_exception`).  String-valued
    keys (``kernel``) keep the token verbatim.
    """
    options: dict[str, int | str] = {}
    for token in tokens:
        if "=" not in token:
            raise ValueError(f"malformed option {token!r} (expected key=value)")
        key, _, value = token.partition("=")
        key = key.replace("-", "_")
        if key not in allowed:
            raise ValueError(f"unknown option {key!r}")
        if key in STRING_OPTION_KEYS:
            if not value:
                raise ValueError(f"option {key!r} needs a value")
            options[key] = value
            continue
        try:
            options[key] = int(value)
        except ValueError:
            raise ValueError(f"option {key!r} needs an integer, got {value!r}") from None
    return options


def format_error_line(code: str, message: object) -> str:
    """The line protocol's structured failure: ``error <code> <message>``."""
    return f"error {code} {one_line(message)}"
