"""Batch query engine: the search service's facade.

:class:`SearchEngine` turns the one-shot scanner into a reusable
server-shaped component: a persistent pre-encoded
:class:`~repro.service.index.DatabaseIndex` is swept by a
:class:`~repro.service.pool.ShardWorkerPool` (software kernel or
simulated accelerator), ranked candidates are remembered in a
:class:`~repro.service.cache.ResultCache`, and multiple queries batch
over **one pass of the index** — each shard ships to a worker once per
batch and is swept for every outstanding query while it is hot.

The engine's contract mirrors :func:`repro.scan.scan_database`
exactly: same ``top``/``min_score`` semantics, same E-value
application, and **bit-identical rankings** (the merge order
``(-score, database_index)`` is the scanner's stable sort; see
:mod:`repro.service.pool`).  What changes is the cost model — parse
and encode once, sweep in parallel, skip the sweep entirely on a
cache hit — and the accounting, which every request carries as a
:class:`RequestMetrics`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from ..align.local_linear import local_align_linear
from ..align.scoring import DEFAULT_DNA, LinearScoring, SubstitutionMatrix
from ..align.smith_waterman import LocalHit
from ..analysis.cups import cups as _cups
from ..analysis.cups import format_cups, utilization
from ..analysis.report import render_kv
from ..analysis.stats import ScoreStatistics
from ..obs import NULL_OBS, Observability
from ..scan import ScanHit, ScanReport
from . import QueryOptions, resolve_query_options
from .cache import CacheKey, ResultCache, scheme_token
from .guard import IndexManager
from .index import DatabaseIndex
from .pool import (
    Candidate,
    ShardWorkerPool,
    WorkerSpec,
    _sweep_shard,
    merge_candidates,
    shard_task,
)
from .resilience import Deadline, SupervisedWorkerPool, SweepOutcome

__all__ = ["RequestMetrics", "SearchResponse", "SearchEngine"]


@dataclass(frozen=True)
class _CachedSweep:
    """What the cache stores: the sweep's ranked output, nothing more.

    Only full-coverage sweeps are ever cached — a degraded (partial)
    answer must not be replayed later as if it were complete — so
    ``coverage``/``degraded`` matter only for the in-flight entries a
    degraded batch builds for itself.
    """

    candidates: tuple[Candidate, ...]
    records: int
    coverage: float = 1.0
    degraded: tuple[int, ...] = ()


@dataclass(frozen=True)
class RequestMetrics:
    """Per-request accounting the service layer exposes.

    ``sweep_seconds`` is this request's share of the batch sweep wall
    time (apportioned by cells); ``sweep_wall_seconds`` is the whole
    batch's sweep wall time and ``worker_busy`` maps worker labels to
    busy seconds over that same batch.
    """

    query_length: int
    records: int
    cells: int
    sweep_seconds: float
    retrieval_seconds: float
    total_seconds: float
    workers: int
    shards: int
    cache_hit: bool
    worker_busy: tuple[tuple[str, float], ...] = ()
    sweep_wall_seconds: float = 0.0

    @property
    def cups(self) -> float:
        return self.cells / self.sweep_seconds if self.sweep_seconds > 0 else 0.0

    @property
    def worker_utilization(self) -> dict[str, float]:
        """Busy fraction per worker over the batch sweep wall time."""
        return utilization(dict(self.worker_busy), self.sweep_wall_seconds)

    def render(self) -> str:
        pairs: list[tuple[str, object]] = [
            ("records", self.records),
            ("cells", f"{self.cells:,}"),
            ("sweep s", f"{self.sweep_seconds:.4f}"),
            ("retrieval s", f"{self.retrieval_seconds:.4f}"),
            ("total s", f"{self.total_seconds:.4f}"),
            ("sweep rate", format_cups(self.cups)),
            ("workers", self.workers),
            ("shards", self.shards),
            ("cache", "hit" if self.cache_hit else "miss"),
        ]
        for worker, frac in sorted(self.worker_utilization.items()):
            pairs.append((worker, f"{frac:.0%} busy"))
        return render_kv(pairs, title="request metrics")


@dataclass
class SearchResponse:
    """One query's ranked report plus its service-side metrics.

    ``coverage`` is the fraction of database records actually swept
    (1.0 on the healthy path); when shards were quarantined or failed
    unrecoverably it drops below 1.0 and ``degraded_shards`` names the
    excluded shards, so callers always know a partial answer is
    partial.
    """

    query: str
    report: ScanReport
    metrics: RequestMetrics
    coverage: float = 1.0
    degraded_shards: tuple[int, ...] = ()

    @property
    def degraded(self) -> bool:
        return self.coverage < 1.0

    def render(self, max_rows: int = 10, with_metrics: bool = False) -> str:
        text = ""
        if self.degraded:
            shards = ",".join(str(s) for s in self.degraded_shards)
            text += f"degraded coverage={self.coverage:.3f} shards={shards}\n"
        text += self.report.render(max_rows=max_rows)
        if with_metrics:
            text += "\n" + self.metrics.render()
        return text


class SearchEngine:
    """Cached, parallel, batched database search over a persistent index.

    Parameters
    ----------
    index:
        The pre-encoded database (build once, reuse per query).
    scheme:
        Scoring scheme — fixed per engine, like the synthesized
        datapath constants it models.
    workers:
        Process count for the shard sweep; 1 runs inline.
    spec:
        How workers build their locate kernel (software row sweep by
        default; ``WorkerSpec("accelerator", elements=N)`` for the
        simulated device).
    cache:
        Result cache; defaults to a 128-entry LRU.  Pass
        ``ResultCache(0)`` to disable.
    statistics:
        Calibrated Karlin-Altschul statistics; when set, hits carry
        E-values exactly as ``scan_database`` reports them.
    pool:
        A ready-made pool to sweep with — pass a
        :class:`~repro.service.resilience.SupervisedWorkerPool` for
        worker supervision, retries and quarantine; ``None`` builds a
        plain :class:`ShardWorkerPool` from ``workers``/``spec``.
    fallback_scan:
        When True (the default) the engine degrades gracefully: shards
        a supervised pool could not sweep are re-swept in-process (the
        trusted ``scan_database`` path), and once the pool is marked
        unhealthy the whole sweep runs in-process — the service keeps
        serving instead of raising.  Set False to surface partial
        coverage in the response instead of healing it.
    obs:
        Observability bundle (metrics registry + tracer + logger).
        Defaults to :data:`~repro.obs.NULL_OBS` — no-op instruments,
        negligible overhead — so library callers pay nothing; a live
        bundle (``Observability.create()``) makes the engine emit
        request counters, sweep-latency histograms, a sustained-CUPS
        gauge, and per-request span trees.  A supervised pool without
        its own bundle inherits this one.
    """

    def __init__(
        self,
        index: DatabaseIndex | IndexManager,
        scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
        workers: int = 1,
        spec: WorkerSpec | None = None,
        cache: ResultCache | None = None,
        statistics: ScoreStatistics | None = None,
        pool: ShardWorkerPool | SupervisedWorkerPool | None = None,
        fallback_scan: bool = True,
        obs: Observability | None = None,
    ) -> None:
        # Every engine holds its index through an IndexManager so hot
        # reload is uniformly available; a bare DatabaseIndex is wrapped
        # in a loaderless manager (swap() still works, reload() needs a
        # loader).  ``self.index`` stays as the live-generation view for
        # existing callers.
        self.indexes = (
            index if isinstance(index, IndexManager) else IndexManager(index=index)
        )
        self.scheme = scheme
        if pool is not None:
            self.pool = pool
            self.spec = pool.spec
        else:
            self.spec = spec if spec is not None else WorkerSpec()
            self.pool = ShardWorkerPool(workers=workers, spec=self.spec)
        self.fallback_scan = fallback_scan
        self.fallback_sweeps = 0
        self.cache = cache if cache is not None else ResultCache()
        self.statistics = statistics
        self._scheme_token = scheme_token(scheme)
        self._retrieve_locate = None
        self.requests_served = 0
        self.obs = obs if obs is not None else NULL_OBS
        if (
            self.obs.enabled
            and isinstance(self.pool, SupervisedWorkerPool)
            and not self.pool.obs.enabled
        ):
            self.pool.bind_obs(self.obs)
        registry = self.obs.registry
        self.cache.bind(registry)
        self.indexes.attach_cache(self.cache)
        if self.obs.enabled and not self.indexes.obs.enabled:
            self.indexes.bind_obs(self.obs)
        self._m_requests = registry.counter(
            "requests_total", "Search requests served by the engine"
        )
        self._m_request_seconds = registry.histogram(
            "request_seconds", "End-to-end request latency in seconds"
        )
        self._m_sweep_seconds = registry.histogram(
            "sweep_seconds", "Batch sweep wall time in seconds"
        )
        self._m_cells = registry.counter(
            "cells_swept_total", "Dynamic-programming cells swept"
        )
        self._m_sustained_cups = registry.gauge(
            "sustained_cups",
            "Cumulative cells swept over cumulative sweep wall seconds",
        )
        self._m_degraded = registry.gauge(
            "degraded_shards", "Shards excluded from the most recent sweep"
        )
        self._m_fallbacks = registry.counter(
            "fallback_sweeps_total", "Sweeps healed by the in-process fallback path"
        )
        self._cells_swept_total = 0
        self._sweep_wall_total = 0.0
        # Streaming ingest (attach_ingest): None until a WAL-backed
        # IngestService is wired in; health() then reports its state.
        self.ingest = None

    # ------------------------------------------------------------------
    @property
    def index(self) -> DatabaseIndex:
        """The live-generation index (see :attr:`indexes` for reload)."""
        return self.indexes.index

    def _key(
        self,
        query: str,
        min_score: int,
        top: int,
        index: DatabaseIndex,
        generation: int,
        kernel: str,
    ) -> CacheKey:
        return CacheKey(
            query=query,
            scheme=self._scheme_token,
            index_version=index.version,
            min_score=min_score,
            top=top,
            generation=generation,
            kernel=kernel,
        )

    def _kernel_for(self, resolved: QueryOptions) -> tuple[str, WorkerSpec | None]:
        """Resolve a request's kernel: name plus a sweep-spec override.

        Precedence is ``QueryOptions.kernel`` over the engine's own
        spec (the server's ``--kernel`` flag or the process default).
        The override is ``None`` when the request agrees with the
        engine — the pool then sweeps with its own spec untouched.
        """
        engine_kernel = self.spec.resolved_kernel()
        if resolved.kernel is None or resolved.kernel == engine_kernel:
            return engine_kernel, None
        override = WorkerSpec(
            kind=resolved.kernel,
            elements=self.spec.elements,
            engine=self.spec.engine,
        )
        return resolved.kernel, override

    def _locate_for_retrieval(self):
        if self._retrieve_locate is None:
            self._retrieve_locate = self.spec.make_locate(self.scheme)
        return self._retrieve_locate

    # ------------------------------------------------------------------
    def _sweep_inline(self, shards, queries, min_score: int, k: int, deadline=None):
        """Sweep ``shards`` in-process with the reference kernel.

        This is the graceful-degradation path: no subprocesses, no
        fault injection, the same row sweep ``scan_database`` runs —
        the most trustworthy way to finish a sweep the pool could not.
        Every backend is bit-identical, so healing a sweep on the
        reference kernel changes nothing a caller can observe.  The
        deadline (when set) is enforced at shard granularity.
        """
        spec = WorkerSpec("reference")
        sweeps = []
        for shard in shards:
            if deadline is not None:
                deadline.check("inline sweep")
            sweeps.append(
                _sweep_shard(shard_task(shard, queries, self.scheme, spec, min_score, k))
            )
        return sweeps

    def _run_sweep(
        self, index, queries, min_score: int, k: int, deadline=None, spec=None
    ):
        """One batch sweep with degradation handling.

        Returns ``(sweeps, degraded_ids)`` where ``degraded_ids`` are
        the shards excluded from this sweep (load-quarantined plus any
        the pool failed on that fallback did not heal).  ``spec``, when
        set, overrides the pool's kernel spec for this sweep only (a
        request-level ``QueryOptions.kernel`` selection).

        :class:`~repro.service.resilience.DeadlineExceeded` raised by
        the pool propagates untouched — the fallback path re-sweeps
        in-process, which can only take *longer* than the budget that
        just ran out.
        """
        load_degraded = set(index.degraded)
        if not self.pool.healthy and self.fallback_scan:
            # The pool proved itself unable to complete a sweep; stop
            # paying its overhead and keep serving in-process.
            self.fallback_sweeps += 1
            self._m_fallbacks.inc()
            self.obs.tracer.event("fallback", reason="pool-unhealthy")
            self.obs.log.warning(
                "engine.fallback", reason="pool-unhealthy", queries=len(queries)
            )
            sweeps = self._sweep_inline(
                index.active_shards, queries, min_score, k, deadline
            )
            return sweeps, tuple(sorted(load_degraded))
        result = self.pool.sweep(
            index,
            queries,
            self.scheme,
            min_score=min_score,
            k=k,
            deadline=deadline,
            spec=spec,
        )
        if not isinstance(result, SweepOutcome):
            return result, tuple(sorted(load_degraded))
        sweeps = list(result.sweeps)
        failed = dict(result.failed)
        if failed and self.fallback_scan:
            healed = [s for s in index.active_shards if s.shard_id in failed]
            self.fallback_sweeps += 1
            self._m_fallbacks.inc()
            shard_ids = ",".join(str(s) for s in sorted(failed))
            self.obs.tracer.event("fallback", reason="failed-shards", shards=shard_ids)
            self.obs.log.warning(
                "engine.fallback", reason="failed-shards", shards=shard_ids
            )
            sweeps.extend(self._sweep_inline(healed, queries, min_score, k, deadline))
            failed.clear()
        return sweeps, tuple(sorted(load_degraded | set(failed)))

    def _observe_sweep(self, sweeps, sweep_wall: float, degraded) -> None:
        """Fold one batch sweep into the engine's metrics.

        The sustained-CUPS gauge is the service-side counterpart of the
        benchmarks' offline computation: cumulative cells actually
        swept over cumulative sweep wall seconds, via
        :func:`repro.analysis.cups.cups` — the sustained (not peak)
        figure the FPGA-survey literature says distinguishes designs.
        """
        self._m_sweep_seconds.observe(sweep_wall)
        batch_cells = sum(s.cells for s in sweeps)
        self._m_cells.inc(batch_cells)
        self._cells_swept_total += batch_cells
        self._sweep_wall_total += sweep_wall
        if self._sweep_wall_total > 0:
            self._m_sustained_cups.set(
                _cups(self._cells_swept_total, self._sweep_wall_total)
            )
        self._m_degraded.set(len(degraded))
        if degraded:
            self.obs.log.warning(
                "engine.degraded-sweep",
                shards=",".join(str(s) for s in degraded),
            )

    @property
    def sustained_cups(self) -> float:
        """Cumulative cells swept over cumulative sweep wall seconds."""
        if self._sweep_wall_total <= 0:
            return 0.0
        return _cups(self._cells_swept_total, self._sweep_wall_total)

    # ------------------------------------------------------------------
    def search(
        self,
        query: str,
        options: QueryOptions | int | None = None,
        *,
        top: int | None = None,
        min_score: int | None = None,
        retrieve: int | None = None,
        statistics: ScoreStatistics | None = None,
        deadline: Deadline | None = None,
    ) -> SearchResponse:
        """Rank the database against one query (see ``search_batch``).

        ``options`` is the request's :class:`~repro.service.QueryOptions`;
        the spelled-out keywords are the deprecated pre-options
        signature, kept working through the same shim ``search_batch``
        applies.
        """
        resolved = resolve_query_options(
            options,
            top=top,
            min_score=min_score,
            retrieve=retrieve,
            statistics=statistics,
        )
        return self.search_batch([query], resolved, deadline=deadline)[0]

    def search_batch(
        self,
        queries: Sequence[str],
        options: QueryOptions | int | None = None,
        *,
        top: int | None = None,
        min_score: int | None = None,
        retrieve: int | None = None,
        statistics: ScoreStatistics | None = None,
        deadline: Deadline | None = None,
    ) -> list[SearchResponse]:
        """Rank the database against every query in one index pass.

        Cache-resident queries skip the sweep entirely; the remaining
        distinct queries are swept together — each shard is shipped to
        a worker once and swept for all of them while its payload is
        hot.  Rankings are bit-identical to ``scan_database`` per
        query.

        ``options`` (a :class:`~repro.service.QueryOptions`) carries
        ``top``/``min_score``/``retrieve``/``statistics``/
        ``deadline_ms``; the legacy keywords still work but emit a
        :class:`DeprecationWarning`.

        ``deadline`` is an already-anchored budget from an upstream
        layer (the TCP server anchors at receipt); when absent and the
        options carry ``deadline_ms``, the budget is anchored here.
        The whole batch shares one deadline — batching groups requests
        by identical options, so all members asked for the same budget.

        The ``(index, generation)`` pair is snapshotted **once** here:
        a hot reload mid-batch is invisible to this batch, which
        finishes on the generation it admitted under.
        """
        resolved = resolve_query_options(
            options,
            top=top,
            min_score=min_score,
            retrieve=retrieve,
            statistics=statistics,
        ).validate()
        top = resolved.top
        min_score = resolved.min_score
        retrieve = resolved.retrieve
        stats = resolved.statistics if resolved.statistics is not None else self.statistics
        kernel, sweep_spec = self._kernel_for(resolved)
        if deadline is None and resolved.deadline_ms is not None:
            deadline = Deadline.after_ms(resolved.deadline_ms)
        if deadline is not None:
            deadline.check("engine admission")
        index, generation = self.indexes.current()
        tracer = self.obs.tracer
        t_start = time.perf_counter()
        with tracer.span("engine.search", queries=len(queries)):
            normalized = [q.upper() for q in queries]
            keys = [
                self._key(q, min_score, top, index, generation, kernel)
                for q in normalized
            ]
            cached: dict[CacheKey, _CachedSweep] = {}
            pending: list[str] = []
            pending_keys: list[CacheKey] = []
            with tracer.span("cache.lookup", keys=len(keys)):
                for q, key in zip(normalized, keys):
                    if key in cached or key in pending_keys:
                        continue
                    entry = self.cache.get(key)
                    if entry is not None:
                        cached[key] = entry  # type: ignore[assignment]
                    else:
                        pending.append(q)
                        pending_keys.append(key)

            sweep_wall = 0.0
            worker_busy: tuple[tuple[str, float], ...] = ()
            swept_bp = index.total_bp
            if pending:
                query_bp = sum(len(q) for q in pending)
                shard_bp = {s.shard_id: s.bp for s in index.shards}
                with tracer.span(
                    "pool.sweep", pending=len(pending), kernel=kernel
                ) as sweep_span:
                    t0 = time.perf_counter()
                    sweeps, degraded = self._run_sweep(
                        index, pending, min_score, top, deadline, sweep_spec
                    )
                    sweep_wall = time.perf_counter() - t0
                    for sweep in sweeps:
                        # cells = query bp x shard bp: the per-span CUPS
                        # numerator, attributable per query per shard.
                        tracer.add_span(
                            "shard.sweep",
                            seconds=sweep.seconds,
                            shard=sweep.shard_id,
                            records=sweep.records,
                            worker=sweep.worker,
                            cells=query_bp * shard_bp.get(sweep.shard_id, 0),
                        )
                    sweep_span.attrs["cells"] = query_bp * sum(
                        shard_bp.get(s.shard_id, 0) for s in sweeps
                    )
                self._observe_sweep(sweeps, sweep_wall, degraded)
                excluded = set(degraded)
                swept_records = sum(
                    len(s) for s in index.shards if s.shard_id not in excluded
                )
                swept_bp = sum(
                    s.bp for s in index.shards if s.shard_id not in excluded
                )
                total = index.record_count
                coverage = swept_records / total if total else 1.0
                merged = merge_candidates(sweeps, len(pending), top)
                worker_busy = tuple(
                    sorted(ShardWorkerPool.busy_seconds(sweeps).items())
                )
                for key, ranked in zip(pending_keys, merged):
                    entry = _CachedSweep(
                        candidates=tuple(ranked),
                        records=swept_records,
                        coverage=coverage,
                        degraded=degraded,
                    )
                    cached[key] = entry
                    if coverage >= 1.0:
                        # Partial answers are never cached: a later request
                        # must re-attempt the full sweep, not replay a
                        # degraded ranking as if it were complete.
                        self.cache.put(key, entry)

            pending_cells = sum(len(q) * swept_bp for q in pending) or 1
            hit_keys = {key for key in keys if key not in pending_keys}

            responses: list[SearchResponse] = []
            with tracer.span("response.build", responses=len(keys)):
                for q, key in zip(normalized, keys):
                    entry = cached[key]
                    was_hit = key in hit_keys
                    report = ScanReport(
                        query_length=len(q),
                        min_score=min_score,
                        records_scanned=entry.records,
                        cells=0 if was_hit else len(q) * swept_bp,
                    )
                    t_retrieve = time.perf_counter()
                    for rank, (score, gidx, i, j) in enumerate(entry.candidates):
                        name, codes = index.record(gidx)
                        alignment = None
                        if rank < retrieve:
                            seq = index.sequence(gidx)
                            alignment = local_align_linear(
                                q, seq, self.scheme, self._locate_for_retrieval()
                            ).alignment
                        evalue = (
                            stats.evalue(score, len(q), len(codes))
                            if stats is not None
                            else None
                        )
                        report.hits.append(
                            ScanHit(
                                record=name,
                                length=len(codes),
                                hit=LocalHit(score, i, j),
                                alignment=alignment,
                                evalue=evalue,
                            )
                        )
                    retrieval_seconds = time.perf_counter() - t_retrieve
                    share = (
                        0.0
                        if was_hit
                        else sweep_wall * (len(q) * swept_bp) / pending_cells
                    )
                    report.sweep_seconds = share
                    report.total_seconds = share + retrieval_seconds
                    metrics = RequestMetrics(
                        query_length=len(q),
                        records=entry.records,
                        cells=report.cells,
                        sweep_seconds=share,
                        retrieval_seconds=retrieval_seconds,
                        total_seconds=time.perf_counter() - t_start,
                        workers=self.pool.workers,
                        shards=index.shard_count,
                        cache_hit=was_hit,
                        worker_busy=() if was_hit else worker_busy,
                        sweep_wall_seconds=0.0 if was_hit else sweep_wall,
                    )
                    self.requests_served += 1
                    self._m_requests.inc()
                    self._m_request_seconds.observe(metrics.total_seconds)
                    responses.append(
                        SearchResponse(
                            query=q,
                            report=report,
                            metrics=metrics,
                            coverage=entry.coverage,
                            degraded_shards=entry.degraded,
                        )
                    )
            return responses

    # ------------------------------------------------------------------
    def reload_index(self) -> int:
        """Hot-reload the index through the manager; returns the new generation.

        Raises ``ValueError`` when the manager has no loader (the
        engine was built around a bare in-memory index).
        """
        return self.indexes.reload()

    def health(self) -> dict[str, object]:
        """Liveness/readiness snapshot: pool, shards, index generation.

        ``ready`` is the readiness signal: the engine can currently
        produce full-coverage answers (pool healthy or fallback armed,
        and no shards excluded).  ``healthy`` is the weaker liveness
        signal: the engine can answer at all, possibly degraded.
        """
        index, generation = self.indexes.current()
        quarantined = tuple(self.pool.quarantined)
        excluded = sorted(set(index.degraded) | set(quarantined))
        can_sweep = self.pool.healthy or self.fallback_scan
        payload: dict[str, object] = {
            "healthy": bool(can_sweep),
            "ready": bool(can_sweep and not excluded),
            "pool_healthy": self.pool.healthy,
            "fallback_scan": self.fallback_scan,
            "fallback_sweeps": self.fallback_sweeps,
            "quarantined_shards": list(quarantined),
            "degraded_shards": list(excluded),
            "shards": index.shard_count,
            "generation": generation,
            "index_version": index.version[:12],
            "reloads": self.indexes.reloads,
            "requests": self.requests_served,
        }
        if self.ingest is not None:
            payload["ingest"] = self.ingest.describe()
        return payload

    def attach_ingest(self, service) -> None:
        """Wire a :class:`~repro.service.ingest.IngestService` in.

        The service must already drive this engine's ``indexes``
        manager (its recovery installed the combined base+delta
        loader); attaching here only makes the engine's ``health``
        payload and the TCP ``ingest`` verb aware of it.
        """
        if service.manager is not self.indexes:
            raise ValueError(
                "ingest service is bound to a different IndexManager "
                "than this engine"
            )
        self.ingest = service

    def describe(self) -> dict[str, object]:
        """Engine + index + cache summary (the ``stats`` server verb)."""
        info = dict(self.index.describe())
        cache = self.cache.stats
        info["generation"] = self.indexes.generation
        info.update(
            {
                "workers": self.pool.workers,
                "kernel": self.spec.resolved_kernel(),
                "requests": self.requests_served,
                "cache size": f"{cache.size}/{cache.capacity}",
                "cache hits": cache.hits,
                "cache misses": cache.misses,
                "cache hit rate": f"{cache.hit_rate:.0%}",
            }
        )
        if self._sweep_wall_total > 0:
            info["sustained rate"] = format_cups(self.sustained_cups)
        if isinstance(self.pool, SupervisedWorkerPool):
            info.update(self.pool.describe())
            info["fallback sweeps"] = self.fallback_sweeps
        return info
