"""Batch query engine: the search service's facade.

:class:`SearchEngine` turns the one-shot scanner into a reusable
server-shaped component: a persistent pre-encoded
:class:`~repro.service.index.DatabaseIndex` is swept by a
:class:`~repro.service.pool.ShardWorkerPool` (software kernel or
simulated accelerator), ranked candidates are remembered in a
:class:`~repro.service.cache.ResultCache`, and multiple queries batch
over **one pass of the index** — each shard ships to a worker once per
batch and is swept for every outstanding query while it is hot.

The engine's contract mirrors :func:`repro.scan.scan_database`
exactly: same ``top``/``min_score`` semantics, same E-value
application, and **bit-identical rankings** (the merge order
``(-score, database_index)`` is the scanner's stable sort; see
:mod:`repro.service.pool`).  What changes is the cost model — parse
and encode once, sweep in parallel, skip the sweep entirely on a
cache hit — and the accounting, which every request carries as a
:class:`RequestMetrics`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from ..align.local_linear import local_align_linear
from ..align.scoring import DEFAULT_DNA, LinearScoring, SubstitutionMatrix
from ..align.smith_waterman import LocalHit
from ..analysis.cups import format_cups, utilization
from ..analysis.report import render_kv
from ..analysis.stats import ScoreStatistics
from ..scan import ScanHit, ScanReport
from .cache import CacheKey, ResultCache, scheme_token
from .index import DatabaseIndex
from .pool import Candidate, ShardWorkerPool, WorkerSpec, merge_candidates

__all__ = ["RequestMetrics", "SearchResponse", "SearchEngine"]


@dataclass(frozen=True)
class _CachedSweep:
    """What the cache stores: the sweep's ranked output, nothing more."""

    candidates: tuple[Candidate, ...]
    records: int


@dataclass(frozen=True)
class RequestMetrics:
    """Per-request accounting the service layer exposes.

    ``sweep_seconds`` is this request's share of the batch sweep wall
    time (apportioned by cells); ``sweep_wall_seconds`` is the whole
    batch's sweep wall time and ``worker_busy`` maps worker labels to
    busy seconds over that same batch.
    """

    query_length: int
    records: int
    cells: int
    sweep_seconds: float
    retrieval_seconds: float
    total_seconds: float
    workers: int
    shards: int
    cache_hit: bool
    worker_busy: tuple[tuple[str, float], ...] = ()
    sweep_wall_seconds: float = 0.0

    @property
    def cups(self) -> float:
        return self.cells / self.sweep_seconds if self.sweep_seconds > 0 else 0.0

    @property
    def worker_utilization(self) -> dict[str, float]:
        """Busy fraction per worker over the batch sweep wall time."""
        return utilization(dict(self.worker_busy), self.sweep_wall_seconds)

    def render(self) -> str:
        pairs: list[tuple[str, object]] = [
            ("records", self.records),
            ("cells", f"{self.cells:,}"),
            ("sweep s", f"{self.sweep_seconds:.4f}"),
            ("retrieval s", f"{self.retrieval_seconds:.4f}"),
            ("total s", f"{self.total_seconds:.4f}"),
            ("sweep rate", format_cups(self.cups)),
            ("workers", self.workers),
            ("shards", self.shards),
            ("cache", "hit" if self.cache_hit else "miss"),
        ]
        for worker, frac in sorted(self.worker_utilization.items()):
            pairs.append((worker, f"{frac:.0%} busy"))
        return render_kv(pairs, title="request metrics")


@dataclass
class SearchResponse:
    """One query's ranked report plus its service-side metrics."""

    query: str
    report: ScanReport
    metrics: RequestMetrics

    def render(self, max_rows: int = 10, with_metrics: bool = False) -> str:
        text = self.report.render(max_rows=max_rows)
        if with_metrics:
            text += "\n" + self.metrics.render()
        return text


class SearchEngine:
    """Cached, parallel, batched database search over a persistent index.

    Parameters
    ----------
    index:
        The pre-encoded database (build once, reuse per query).
    scheme:
        Scoring scheme — fixed per engine, like the synthesized
        datapath constants it models.
    workers:
        Process count for the shard sweep; 1 runs inline.
    spec:
        How workers build their locate kernel (software row sweep by
        default; ``WorkerSpec("accelerator", elements=N)`` for the
        simulated device).
    cache:
        Result cache; defaults to a 128-entry LRU.  Pass
        ``ResultCache(0)`` to disable.
    statistics:
        Calibrated Karlin-Altschul statistics; when set, hits carry
        E-values exactly as ``scan_database`` reports them.
    """

    def __init__(
        self,
        index: DatabaseIndex,
        scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
        workers: int = 1,
        spec: WorkerSpec | None = None,
        cache: ResultCache | None = None,
        statistics: ScoreStatistics | None = None,
    ) -> None:
        self.index = index
        self.scheme = scheme
        self.spec = spec if spec is not None else WorkerSpec()
        self.pool = ShardWorkerPool(workers=workers, spec=self.spec)
        self.cache = cache if cache is not None else ResultCache()
        self.statistics = statistics
        self._scheme_token = scheme_token(scheme)
        self._retrieve_locate = None
        self.requests_served = 0

    # ------------------------------------------------------------------
    def _key(self, query: str, min_score: int, top: int) -> CacheKey:
        return CacheKey(
            query=query,
            scheme=self._scheme_token,
            index_version=self.index.version,
            min_score=min_score,
            top=top,
        )

    def _locate_for_retrieval(self):
        if self._retrieve_locate is None:
            self._retrieve_locate = self.spec.make_locate(self.scheme)
        return self._retrieve_locate

    # ------------------------------------------------------------------
    def search(
        self,
        query: str,
        top: int = 10,
        min_score: int = 1,
        retrieve: int = 0,
        statistics: ScoreStatistics | None = None,
    ) -> SearchResponse:
        """Rank the database against one query (see ``search_batch``)."""
        return self.search_batch(
            [query], top=top, min_score=min_score, retrieve=retrieve, statistics=statistics
        )[0]

    def search_batch(
        self,
        queries: Sequence[str],
        top: int = 10,
        min_score: int = 1,
        retrieve: int = 0,
        statistics: ScoreStatistics | None = None,
    ) -> list[SearchResponse]:
        """Rank the database against every query in one index pass.

        Cache-resident queries skip the sweep entirely; the remaining
        distinct queries are swept together — each shard is shipped to
        a worker once and swept for all of them while its payload is
        hot.  Rankings are bit-identical to ``scan_database`` per
        query.
        """
        if top < 1:
            raise ValueError(f"top must be positive, got {top}")
        if retrieve < 0:
            raise ValueError(f"retrieve cannot be negative, got {retrieve}")
        stats = statistics if statistics is not None else self.statistics
        t_start = time.perf_counter()
        normalized = [q.upper() for q in queries]
        keys = [self._key(q, min_score, top) for q in normalized]
        cached: dict[CacheKey, _CachedSweep] = {}
        pending: list[str] = []
        pending_keys: list[CacheKey] = []
        for q, key in zip(normalized, keys):
            if key in cached or key in pending_keys:
                continue
            entry = self.cache.get(key)
            if entry is not None:
                cached[key] = entry  # type: ignore[assignment]
            else:
                pending.append(q)
                pending_keys.append(key)

        sweep_wall = 0.0
        worker_busy: tuple[tuple[str, float], ...] = ()
        if pending:
            t0 = time.perf_counter()
            sweeps = self.pool.sweep(
                self.index, pending, self.scheme, min_score=min_score, k=top
            )
            sweep_wall = time.perf_counter() - t0
            merged = merge_candidates(sweeps, len(pending), top)
            worker_busy = tuple(sorted(self.pool.busy_seconds(sweeps).items()))
            for key, ranked in zip(pending_keys, merged):
                entry = _CachedSweep(
                    candidates=tuple(ranked), records=self.index.record_count
                )
                cached[key] = entry
                self.cache.put(key, entry)

        pending_cells = sum(self.index.cells(len(q)) for q in pending) or 1
        hit_keys = {key for key in keys if key not in pending_keys}

        responses: list[SearchResponse] = []
        for q, key in zip(normalized, keys):
            entry = cached[key]
            was_hit = key in hit_keys
            report = ScanReport(
                query_length=len(q),
                min_score=min_score,
                records_scanned=entry.records,
                cells=0 if was_hit else self.index.cells(len(q)),
            )
            t_retrieve = time.perf_counter()
            for rank, (score, gidx, i, j) in enumerate(entry.candidates):
                name, codes = self.index.record(gidx)
                alignment = None
                if rank < retrieve:
                    seq = self.index.sequence(gidx)
                    alignment = local_align_linear(
                        q, seq, self.scheme, self._locate_for_retrieval()
                    ).alignment
                evalue = (
                    stats.evalue(score, len(q), len(codes)) if stats is not None else None
                )
                report.hits.append(
                    ScanHit(
                        record=name,
                        length=len(codes),
                        hit=LocalHit(score, i, j),
                        alignment=alignment,
                        evalue=evalue,
                    )
                )
            retrieval_seconds = time.perf_counter() - t_retrieve
            share = (
                0.0
                if was_hit
                else sweep_wall * self.index.cells(len(q)) / pending_cells
            )
            report.sweep_seconds = share
            report.total_seconds = share + retrieval_seconds
            metrics = RequestMetrics(
                query_length=len(q),
                records=entry.records,
                cells=report.cells,
                sweep_seconds=share,
                retrieval_seconds=retrieval_seconds,
                total_seconds=time.perf_counter() - t_start,
                workers=self.pool.workers,
                shards=self.index.shard_count,
                cache_hit=was_hit,
                worker_busy=() if was_hit else worker_busy,
                sweep_wall_seconds=0.0 if was_hit else sweep_wall,
            )
            self.requests_served += 1
            responses.append(SearchResponse(query=q, report=report, metrics=metrics))
        return responses

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, object]:
        """Engine + index + cache summary (the ``stats`` server verb)."""
        info = dict(self.index.describe())
        cache = self.cache.stats
        info.update(
            {
                "workers": self.pool.workers,
                "kernel": self.spec.kind,
                "requests": self.requests_served,
                "cache size": f"{cache.size}/{cache.capacity}",
                "cache hits": cache.hits,
                "cache misses": cache.misses,
                "cache hit rate": f"{cache.hit_rate:.0%}",
            }
        )
        return info
