"""Cross-layer robustness: circuit breaking, hedging, hot index reload.

The paper's host↔board contract assumes the wavefront never stalls
mid-scan; a service has to *engineer* that guarantee.  This module
holds the guard-rail machinery the request path threads through:

* :class:`CircuitBreaker` — a per-endpoint closed/open/half-open
  breaker keyed on the :class:`~repro.service.resilience.ServiceError`
  taxonomy.  A backend that keeps failing stops absorbing retries:
  after ``failure_threshold`` consecutive countable failures the
  breaker opens and callers fail fast with :class:`CircuitOpen`; after
  ``recovery_time`` it half-opens and lets ``half_open_max`` probes
  through, closing again on the first success.
* :class:`HedgePolicy` — tail-latency hedging for the client: once
  enough latency samples exist, a request that has not answered within
  the configured percentile earns a second, duplicate request on a
  fresh connection; whichever answers first wins.
* :class:`AdaptiveLimiter` — an AIMD concurrency limit for the TCP
  front-end: on-time completions grow the admission limit additively
  (one extra slot per window of completions), deadline misses and
  timeouts shrink it multiplicatively, so under overload the server
  converges onto the concurrency it can actually serve within budget
  instead of queueing work that will expire — TCP congestion control
  applied to admission.
* :class:`ServiceTimeTracker` — a sliding-window percentile estimator
  over observed service times; the front-end uses its p90 to shed
  requests *at admission* whose remaining deadline budget cannot
  cover the service time they are about to need, so overload drops
  exactly the work that would expire anyway.
* :class:`IndexManager` — generational hot reload.  The live
  :class:`~repro.service.index.DatabaseIndex` is swapped atomically
  under a lock; in-flight sweeps keep the generation they snapshotted
  at admission, new requests see the new one, and every result-cache
  entry from an older generation is evicted on swap (the cache keys on
  content hash *and* generation, so a stale ranking is unreachable
  even before eviction).  This is the software form of the paper's
  reconfigure-between-queries step: the board is reloaded while the
  host keeps its query stream open.

Deadline propagation itself lives in
:mod:`repro.service.resilience` (:class:`Deadline` /
:class:`DeadlineExceeded`) because the supervised pool consumes it;
this module re-exports both so ``guard`` is the one import a caller
needs for the robustness surface.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from ..obs import NULL_OBS, Observability
from .cache import ResultCache
from .index import DatabaseIndex
from .resilience import (
    Deadline,
    DeadlineExceeded,
    Overloaded,
    RequestTimeout,
    ServiceError,
)

__all__ = [
    "BREAKER_FAILURE_CODES",
    "AdaptiveLimiter",
    "CircuitBreaker",
    "CircuitOpen",
    "Deadline",
    "DeadlineExceeded",
    "HedgePolicy",
    "IndexManager",
    "ServiceTimeTracker",
]


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class CircuitOpen(Overloaded):
    """The endpoint's breaker is open; the call failed fast, unsent.

    Subclasses :class:`~repro.service.resilience.Overloaded` — "this
    endpoint cannot take your request right now, try later" is the
    same contract whether the server said it or the client's breaker
    inferred it — but carries its own code so telemetry can tell a
    local fail-fast from a server-side rejection.
    """

    code = "circuit-open"


#: Taxonomy codes that count as endpoint failures.  Requests the
#: *caller* got wrong (``bad-request``, ``protocol``) say nothing about
#: the endpoint's health and never trip the breaker.
BREAKER_FAILURE_CODES = frozenset(
    {
        "overloaded",
        "timeout",
        "deadline-exceeded",
        "shard-failure",
        "worker-timeout",
        "index-corrupt",
        "internal",
    }
)


class CircuitBreaker:
    """Per-endpoint closed → open → half-open breaker.

    State machine:

    * **closed** — traffic flows; ``failure_threshold`` *consecutive*
      countable failures (see :func:`counts_as_failure`) trip it open.
    * **open** — :meth:`allow` raises :class:`CircuitOpen` without
      touching the network, until ``recovery_time`` seconds have
      passed since the trip.
    * **half-open** — up to ``half_open_max`` concurrent probe
      requests are admitted; the first success closes the breaker and
      resets the failure count, any failure re-opens it (and restarts
      the recovery clock).

    ``clock`` is injectable for deterministic tests.  All transitions
    are metered on ``obs``: ``breaker_state`` gauge (0 closed,
    1 half-open, 2 open), ``breaker_open_total`` and
    ``breaker_short_circuits_total`` counters.
    """

    CLOSED, HALF_OPEN, OPEN = "closed", "half-open", "open"
    _STATE_VALUE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_time: float = 1.0,
        half_open_max: int = 1,
        name: str = "endpoint",
        clock: Callable[[], float] = time.monotonic,
        obs: Observability | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be positive, got {failure_threshold}"
            )
        if recovery_time < 0:
            raise ValueError(f"recovery_time cannot be negative, got {recovery_time}")
        if half_open_max < 1:
            raise ValueError(f"half_open_max must be positive, got {half_open_max}")
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.half_open_max = half_open_max
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes = 0
        self.opens = 0
        self.short_circuits = 0
        self.bind_obs(obs if obs is not None else NULL_OBS)

    def bind_obs(self, obs: Observability) -> None:
        self.obs = obs
        registry = obs.registry
        self._g_state = registry.gauge(
            "breaker_state", "Circuit breaker state (0 closed, 1 half-open, 2 open)"
        )
        self._m_opens = registry.counter(
            "breaker_open_total", "Circuit breaker trips to open"
        )
        self._m_short = registry.counter(
            "breaker_short_circuits_total",
            "Requests failed fast by an open circuit breaker",
        )

    # ------------------------------------------------------------------
    @staticmethod
    def counts_as_failure(error: BaseException) -> bool:
        """Whether ``error`` says anything about the *endpoint's* health."""
        if isinstance(error, ServiceError):
            return error.code in BREAKER_FAILURE_CODES
        # Transport breakage (connection refused/reset, EOF mid-frame)
        # is the clearest endpoint-health signal there is.
        return isinstance(error, (ConnectionError, OSError, EOFError))

    @property
    def state(self) -> str:
        with self._lock:
            return self._peek_state()

    def _peek_state(self) -> str:
        """Current state with the open→half-open clock applied (locked)."""
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.recovery_time
        ):
            self._state = self.HALF_OPEN
            self._probes = 0
            self._g_state.set(self._STATE_VALUE[self._state])
        return self._state

    def allow(self) -> None:
        """Admit one call, or raise :class:`CircuitOpen` immediately."""
        with self._lock:
            state = self._peek_state()
            if state == self.CLOSED:
                return
            if state == self.HALF_OPEN and self._probes < self.half_open_max:
                self._probes += 1
                return
            self.short_circuits += 1
            self._m_short.inc()
            wait = max(self.recovery_time - (self._clock() - self._opened_at), 0.0)
            raise CircuitOpen(
                f"circuit for {self.name} is {state}; retry in {wait:.3g}s"
            )

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._probes = 0
            if self._state != self.CLOSED:
                self.obs.log.info("breaker.closed", endpoint=self.name)
            self._state = self.CLOSED
            self._g_state.set(self._STATE_VALUE[self._state])

    def record_failure(self, error: BaseException | None = None) -> None:
        """Record one countable failure (uncountable errors are ignored)."""
        if error is not None and not self.counts_as_failure(error):
            return
        with self._lock:
            state = self._peek_state()
            self._failures += 1
            if state == self.HALF_OPEN or self._failures >= self.failure_threshold:
                if self._state != self.OPEN:
                    self.opens += 1
                    self._m_opens.inc()
                    self.obs.log.warning(
                        "breaker.open",
                        endpoint=self.name,
                        failures=self._failures,
                        error="" if error is None else str(error),
                    )
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._g_state.set(self._STATE_VALUE[self._state])

    def describe(self) -> dict[str, object]:
        with self._lock:
            return {
                "state": self._peek_state(),
                "failures": self._failures,
                "opens": self.opens,
                "short circuits": self.short_circuits,
            }


# ----------------------------------------------------------------------
# Hedging
# ----------------------------------------------------------------------
class HedgePolicy:
    """When to issue a duplicate request against the same endpoint.

    Hedging trades a little extra load for a bounded tail: if the
    first attempt has not answered within the ``percentile`` of the
    observed latency distribution, a second identical request goes out
    and the first answer wins.  Until ``min_samples`` observations
    exist there is nothing to take a percentile of and :meth:`delay`
    returns ``None`` (no hedging); ``fixed_delay`` bypasses the
    estimator entirely, which is what deterministic tests use.
    """

    def __init__(
        self,
        percentile: float = 0.95,
        min_samples: int = 20,
        max_samples: int = 256,
        fixed_delay: float | None = None,
    ) -> None:
        if not 0.0 < percentile < 1.0:
            raise ValueError(f"percentile must be in (0, 1), got {percentile}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be positive, got {min_samples}")
        if max_samples < min_samples:
            raise ValueError("max_samples cannot be below min_samples")
        if fixed_delay is not None and fixed_delay < 0:
            raise ValueError(f"fixed_delay cannot be negative, got {fixed_delay}")
        self.percentile = percentile
        self.min_samples = min_samples
        self.max_samples = max_samples
        self.fixed_delay = fixed_delay
        self._samples: list[float] = []
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        """Feed one successful-request latency into the estimator."""
        with self._lock:
            self._samples.append(seconds)
            if len(self._samples) > self.max_samples:
                # Sliding window: old latencies stop describing the
                # endpoint once conditions change.
                del self._samples[: len(self._samples) - self.max_samples]

    def delay(self) -> float | None:
        """Seconds to wait before hedging; ``None`` means do not hedge."""
        if self.fixed_delay is not None:
            return self.fixed_delay
        with self._lock:
            if len(self._samples) < self.min_samples:
                return None
            ordered = sorted(self._samples)
            rank = min(
                int(self.percentile * len(ordered)), len(ordered) - 1
            )
            return ordered[rank]

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)


# ----------------------------------------------------------------------
# Adaptive admission control (AIMD)
# ----------------------------------------------------------------------
class AdaptiveLimiter:
    """AIMD concurrency limit: grow on on-time work, cut on misses.

    The classic congestion-control loop, applied to request
    admission:

    * **additive increase** — each on-time completion adds
      ``increase / limit`` to the limit, i.e. one extra admission slot
      per full window of successful completions, capped at
      ``max_limit`` (the operator's hard ceiling, the old static
      ``max_inflight``);
    * **multiplicative decrease** — a deadline miss or timeout cuts
      the limit to ``limit * backoff`` (never below ``min_limit``).
      Cuts within ``cooldown`` seconds of the last cut are coalesced:
      one overload episode produces many misses nearly at once, and
      reacting to each would collapse the limit to the floor on a
      single bad batch.

    The limit starts at ``initial`` (by default the ceiling: the
    server is optimistic until the first miss, which keeps a fault-free
    run byte-identical to the static configuration).  All state is
    behind a lock; ``clock`` is injectable so tests drive the cooldown
    deterministically.
    """

    def __init__(
        self,
        initial: int = 64,
        min_limit: int = 1,
        max_limit: int | None = None,
        increase: float = 1.0,
        backoff: float = 0.5,
        cooldown: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if min_limit < 1:
            raise ValueError(f"min_limit must be positive, got {min_limit}")
        if max_limit is not None and max_limit < min_limit:
            raise ValueError("max_limit cannot be below min_limit")
        if initial < min_limit:
            raise ValueError("initial cannot be below min_limit")
        if max_limit is not None and initial > max_limit:
            raise ValueError("initial cannot exceed max_limit")
        if increase <= 0:
            raise ValueError(f"increase must be positive, got {increase}")
        if not 0.0 < backoff < 1.0:
            raise ValueError(f"backoff must be in (0, 1), got {backoff}")
        if cooldown < 0:
            raise ValueError(f"cooldown cannot be negative, got {cooldown}")
        self.min_limit = min_limit
        self.max_limit = max_limit
        self.increase = increase
        self.backoff = backoff
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._limit = float(initial)
        self._last_cut: float | None = None
        self.successes = 0
        self.misses = 0
        self.cuts = 0

    @property
    def limit(self) -> int:
        """The current admission limit (integer, >= ``min_limit``)."""
        with self._lock:
            return max(int(self._limit), self.min_limit)

    def on_success(self) -> int:
        """One on-time completion: additive increase.  Returns the limit."""
        with self._lock:
            self.successes += 1
            self._limit += self.increase / max(self._limit, 1.0)
            if self.max_limit is not None:
                self._limit = min(self._limit, float(self.max_limit))
            return max(int(self._limit), self.min_limit)

    def on_overload(self) -> bool:
        """One deadline miss/timeout: multiplicative decrease.

        Returns ``True`` when the limit was actually cut (``False``
        while the cooldown coalesces the episode's remaining misses).
        """
        with self._lock:
            self.misses += 1
            now = self._clock()
            if self._last_cut is not None and now - self._last_cut < self.cooldown:
                return False
            self._last_cut = now
            self._limit = max(self._limit * self.backoff, float(self.min_limit))
            self.cuts += 1
            return True

    def describe(self) -> dict[str, object]:
        with self._lock:
            return {
                "limit": max(int(self._limit), self.min_limit),
                "min": self.min_limit,
                "max": self.max_limit,
                "successes": self.successes,
                "misses": self.misses,
                "cuts": self.cuts,
            }


class ServiceTimeTracker:
    """Sliding-window service-time percentiles for admission shedding.

    Structurally a sibling of :class:`HedgePolicy`'s estimator, but
    queried with an explicit percentile: the front-end asks for the
    p90 and refuses a request whose remaining deadline budget is
    smaller — that request would occupy a sweep slot and then expire,
    which under overload is precisely the work to drop first.  Until
    ``min_samples`` observations exist :meth:`percentile` returns
    ``None`` and no shedding happens (a cold server has no opinion).
    """

    def __init__(self, min_samples: int = 20, max_samples: int = 256) -> None:
        if min_samples < 1:
            raise ValueError(f"min_samples must be positive, got {min_samples}")
        if max_samples < min_samples:
            raise ValueError("max_samples cannot be below min_samples")
        self.min_samples = min_samples
        self.max_samples = max_samples
        self._samples: list[float] = []
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)
            if len(self._samples) > self.max_samples:
                del self._samples[: len(self._samples) - self.max_samples]

    def percentile(self, q: float = 0.9) -> float | None:
        """The ``q`` quantile of the window; ``None`` until warmed up."""
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {q}")
        with self._lock:
            if len(self._samples) < self.min_samples:
                return None
            ordered = sorted(self._samples)
            rank = min(int(q * len(ordered)), len(ordered) - 1)
            return ordered[rank]

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)


# ----------------------------------------------------------------------
# Generational index manager (hot reload)
# ----------------------------------------------------------------------
@dataclass
class _Generation:
    index: DatabaseIndex
    number: int


class IndexManager:
    """Atomically swappable, generation-stamped database index.

    The engine snapshots ``(index, generation)`` once per request
    (:meth:`current`), so a swap mid-batch is invisible to in-flight
    sweeps — they finish on the generation they started with, exactly
    as an FPGA finishes the resident query before the host reconfigures
    the array.  ``loader`` (when given) is how :meth:`reload` produces
    a fresh index; the load runs *outside* the lock, so live traffic
    never waits on disk.

    An attached :class:`~repro.service.cache.ResultCache` is purged of
    every prior-generation entry on swap; combined with the cache key
    carrying the generation number, a response can never be served
    from an index that is no longer live.
    """

    def __init__(
        self,
        index: DatabaseIndex | None = None,
        loader: Callable[[], DatabaseIndex] | None = None,
        obs: Observability | None = None,
    ) -> None:
        if index is None and loader is None:
            raise ValueError("IndexManager needs an index or a loader")
        self.loader = loader
        self._lock = threading.Lock()
        self._reload_lock = threading.Lock()
        self._cache: ResultCache | None = None
        self.reloads = 0
        self.reload_failures = 0
        self.bind_obs(obs if obs is not None else NULL_OBS)
        first = index if index is not None else loader()
        self._live = _Generation(index=first, number=1)
        self._g_generation.set(1)

    def bind_obs(self, obs: Observability) -> None:
        self.obs = obs
        registry = obs.registry
        self._g_generation = registry.gauge(
            "index_generation", "Generation number of the live index"
        )
        self._m_reloads = registry.counter(
            "index_reloads_total", "Successful hot index reloads"
        )
        self._m_reload_failures = registry.counter(
            "index_reload_failures_total", "Hot index reloads that failed"
        )
        self._m_cache_purged = registry.counter(
            "index_reload_cache_evictions_total",
            "Result-cache entries evicted by index reloads",
        )

    def attach_cache(self, cache: ResultCache) -> None:
        """The cache to purge of stale generations on every swap."""
        self._cache = cache

    # ------------------------------------------------------------------
    @property
    def index(self) -> DatabaseIndex:
        with self._lock:
            return self._live.index

    @property
    def generation(self) -> int:
        with self._lock:
            return self._live.number

    def current(self) -> tuple[DatabaseIndex, int]:
        """One consistent ``(index, generation)`` snapshot."""
        with self._lock:
            return self._live.index, self._live.number

    def swap(self, new_index: DatabaseIndex) -> int:
        """Install ``new_index`` as the live generation; returns its number.

        The swap itself is a pointer exchange under the lock —
        nanoseconds, never blocking on IO — and the stale-generation
        cache purge happens after, against the already-live new
        generation.
        """
        with self._lock:
            generation = self._live.number + 1
            self._live = _Generation(index=new_index, number=generation)
        self._g_generation.set(generation)
        purged = 0
        if self._cache is not None:
            purged = self._cache.evict_where(
                lambda key: getattr(key, "generation", None) != generation
            )
            self._m_cache_purged.inc(purged)
        self.obs.log.info(
            "index.swapped",
            generation=generation,
            version=new_index.version[:12],
            records=new_index.record_count,
            cache_purged=purged,
        )
        return generation

    def reload(self) -> int:
        """Load a fresh index via ``loader`` and swap it in.

        Whole reloads are serialized by their own lock (distinct from
        the pointer lock, so :meth:`current` never waits on disk):
        without it, two racing reloads could interleave ``loader()``
        and ``swap`` so that the *older* load publishes last and a
        stale index ends up live under the newest generation number.
        A failed load never reaches the swap — the live generation is
        untouched and the failure is counted and re-raised.
        """
        if self.loader is None:
            raise ValueError("no reload source configured (IndexManager has no loader)")
        with self._reload_lock:
            try:
                new_index = self.loader()
            except Exception as exc:
                self.reload_failures += 1
                self._m_reload_failures.inc()
                self.obs.log.error("index.reload-failed", error=str(exc))
                raise
            generation = self.swap(new_index)
            self.reloads += 1
            self._m_reloads.inc()
            return generation

    def describe(self) -> dict[str, object]:
        index, generation = self.current()
        return {
            "generation": generation,
            "reloads": self.reloads,
            "reload failures": self.reload_failures,
            "version": index.version[:12],
        }
