"""Pluggable locate-kernel backends behind one registry.

The phase-1 sweep — best local-alignment score plus end coordinates
for a query against a database record — is the hot path of the entire
serving stack, and this package is its selection point.  Every backend
implements the same :class:`KernelBackend` contract:

* ``locate(s, t, scheme)`` — one query against one record, returning a
  :class:`~repro.align.smith_waterman.LocalHit`;
* ``locate_batch(queries, targets, scheme)`` — many queries against
  many records in one call, returning ``hits[qi][ti]``.

and every backend is **bit-identical** on ``(score, i, j)`` under the
repo-wide tie-break convention (smallest ``i``, then smallest ``j``,
among equal best scores) — the property tests in
``tests/test_kernels.py`` enforce it across the whole registry.  That
contract is what makes the fast path safe to substitute anywhere the
reference path runs: rankings cannot change, only wall-clock does.

Built-in backends
-----------------
``reference``
    The vectorized single-pair row sweep
    (:func:`~repro.align.smith_waterman.sw_locate_best`); the default.
``pure``
    The pure-Python oracle (:func:`~repro.baselines.software.locate_pure`)
    — slow, dependency-free, shares no code with the kernels it checks.
``numpy-striped``
    The batched profile kernel (:class:`~repro.kernels.striped.StripedKernel`):
    every query × every record advances through one ``(Q, R, n)`` NumPy
    matrix pass per DP row, amortizing interpreter and dispatch
    overhead across the whole batch (SWAPHI's inter-/intra-sequence
    parallelization mapped onto array axes).
``hw-sim``
    The simulated FPGA accelerator
    (:class:`~repro.core.accelerator.SWAccelerator`) behind the same
    interface, so "run this sweep on the device" is just another
    backend name.

Selection
---------
:func:`get_backend` resolves a name to a shared backend instance;
``None`` resolves the process default — the ``REPRO_KERNEL``
environment variable when set, else ``reference``.  Precedence across
the service stack is **QueryOptions.kernel > server ``--kernel`` flag
> process default**.

Registering a third-party backend::

    from repro.kernels import KernelBackend, register_backend

    class MyKernel(KernelBackend):
        name = "my-kernel"
        def locate(self, s, t, scheme):
            ...  # return a LocalHit, honouring the tie-break rules

    register_backend("my-kernel", MyKernel)

after which ``QueryOptions(kernel="my-kernel")``, ``repro serve
--kernel my-kernel`` and ``scan_database(..., kernel="my-kernel")``
all reach it.
"""

from __future__ import annotations

import os
from typing import Callable, Sequence

import numpy as np

from ..align.scoring import DEFAULT_DNA, LinearScoring, SubstitutionMatrix, decode
from ..align.smith_waterman import LocalHit, sw_locate_best

__all__ = [
    "DEFAULT_KERNEL",
    "KERNEL_ENV_VAR",
    "KernelBackend",
    "HwSimBackend",
    "available_backends",
    "default_kernel",
    "get_backend",
    "register_backend",
]

#: The fallback default backend when ``REPRO_KERNEL`` is unset: the
#: trusted single-pair row sweep every prior release shipped.
DEFAULT_KERNEL = "reference"

#: Environment variable naming the process-wide default backend (CI
#: runs the whole tier-1 suite under ``REPRO_KERNEL=numpy-striped``).
KERNEL_ENV_VAR = "REPRO_KERNEL"


class KernelBackend:
    """One locate-kernel implementation.

    Subclasses must implement :meth:`locate`; :meth:`locate_batch` has
    a default pairwise loop so a minimal backend is a single method.
    Batched backends override :meth:`locate_batch` and derive
    :meth:`locate` from it instead.

    Backends must be stateless with respect to results (instances are
    shared and may be called from worker subprocesses) and must honour
    the repo-wide tie-break convention exactly.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    def locate(
        self,
        s: str | np.ndarray,
        t: str | np.ndarray,
        scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
    ) -> LocalHit:
        """Best local hit of query ``s`` against target ``t``."""
        raise NotImplementedError

    def locate_batch(
        self,
        queries: Sequence[str | np.ndarray],
        targets: Sequence[str | np.ndarray],
        scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
    ) -> list[list[LocalHit]]:
        """Every query against every target; ``hits[qi][ti]``.

        The default is the straightforward cross product of
        :meth:`locate` calls — exactly the per-record loop the shard
        sweep ran before batching existed, so a backend that only
        implements ``locate`` behaves identically to the old code.
        """
        return [[self.locate(q, t, scheme) for t in targets] for q in queries]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{type(self).__name__} {self.name!r}>"


class _ReferenceBackend(KernelBackend):
    """The vectorized single-pair row sweep (``sw_locate_best``)."""

    name = "reference"

    def locate(self, s, t, scheme=DEFAULT_DNA) -> LocalHit:
        return sw_locate_best(s, t, scheme)


class _PureBackend(KernelBackend):
    """The pure-Python oracle — independent of every NumPy kernel."""

    name = "pure"

    def locate(self, s, t, scheme=DEFAULT_DNA) -> LocalHit:
        from ..baselines.software import locate_pure

        if isinstance(s, np.ndarray):
            s = decode(s)
        if isinstance(t, np.ndarray):
            t = decode(t)
        return locate_pure(s, t, scheme)


class HwSimBackend(KernelBackend):
    """The simulated FPGA accelerator as a registry backend.

    A :class:`~repro.core.accelerator.SWAccelerator` is built lazily
    per scoring scheme (the device synthesizes its scheme into the
    datapath, so one device cannot serve two schemes); the built
    devices are kept for the backend's lifetime, which in a worker
    subprocess is one shard sweep.
    """

    name = "hw-sim"

    def __init__(self, elements: int = 100, engine: str = "emulator") -> None:
        self.elements = elements
        self.engine = engine
        # Keyed by id(scheme) with the scheme kept alive in the value,
        # so the id can never be recycled while the entry exists.
        self._devices: dict[int, tuple[object, object]] = {}

    def _device(self, scheme):
        entry = self._devices.get(id(scheme))
        if entry is None:
            from ..core.accelerator import SWAccelerator

            device = SWAccelerator(
                elements=self.elements, scheme=scheme, engine=self.engine
            )
            entry = (scheme, device)
            self._devices[id(scheme)] = entry
        return entry[1]

    def locate(self, s, t, scheme=DEFAULT_DNA) -> LocalHit:
        return self._device(scheme).locate(s, t, scheme)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_FACTORIES: dict[str, Callable[[], KernelBackend]] = {}
_INSTANCES: dict[str, KernelBackend] = {}


def register_backend(
    name: str, factory: Callable[[], KernelBackend], replace: bool = False
) -> None:
    """Register ``factory`` (class or zero-arg callable) under ``name``.

    Names are lowercase identifiers; re-registering an existing name
    without ``replace=True`` is an error (silent shadowing of a
    built-in would change every caller's results semantics-free).
    """
    if not name or name != name.strip().lower():
        raise ValueError(f"backend name must be a lowercase token, got {name!r}")
    if name in _FACTORIES and not replace:
        raise ValueError(f"backend {name!r} is already registered")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """Every registered backend name, sorted."""
    return tuple(sorted(_FACTORIES))


def default_kernel() -> str:
    """The process-default backend name.

    ``REPRO_KERNEL`` when set (and registered — a typo'd variable
    should fail loudly at selection time, not silently serve the
    fallback), else :data:`DEFAULT_KERNEL`.
    """
    name = os.environ.get(KERNEL_ENV_VAR, "").strip()
    if not name:
        return DEFAULT_KERNEL
    if name not in _FACTORIES:
        raise ValueError(
            f"{KERNEL_ENV_VAR}={name!r} names no registered backend "
            f"(available: {', '.join(available_backends())})"
        )
    return name


def get_backend(name: str | None = None) -> KernelBackend:
    """Resolve ``name`` to a shared backend instance.

    ``None`` resolves :func:`default_kernel`.  Unknown names raise
    :class:`ValueError`, which every service front-end maps to
    ``bad-request``.
    """
    if name is None:
        name = default_kernel()
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown kernel backend {name!r} "
            f"(available: {', '.join(available_backends())})"
        )
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = factory()
        _INSTANCES[name] = instance
    return instance


from .striped import StripedKernel  # noqa: E402  (needs KernelBackend above)

register_backend("reference", _ReferenceBackend)
register_backend("pure", _PureBackend)
register_backend("numpy-striped", StripedKernel)
register_backend("hw-sim", HwSimBackend)
