"""The ``numpy-striped`` backend: many pairs per matrix instruction.

The reference kernel sweeps one (query, record) pair at a time: per DP
row it issues a handful of NumPy calls over one length-``n`` vector.
For the short records a sharded database mostly holds, that makes the
sweep *dispatch-bound* — interpreter and ufunc-launch overhead, not
arithmetic, dominates.  This kernel restores the arithmetic bound by
advancing **every query against every record in the batch through the
same DP row simultaneously**: state is a ``(Q, R, n+1)`` array (Q
queries × R records × padded columns) and each row costs the same
fixed number of NumPy calls regardless of Q and R — SWAPHI's
inter-sequence (many records) × intra-sequence (vector lanes)
parallelization mapped onto array axes.

Two precomputations make the row cheap:

* a **query profile** ``prof[qi, i, b]`` — the substitution score of
  query ``qi``'s row-``i`` character against target byte ``b`` — so
  the per-row pair scores for the whole batch are one fancy-indexed
  gather ``prof[:, i, T]`` instead of Q×R ``pair_vector`` calls;
* the same max-plus prefix scan the reference kernel uses, applied
  along the last axis: ``cummax(H - j·g) + j·g`` resolves the
  within-row dependency for every lane in one ``maximum.accumulate``.

Exactness: records shorter than the chunk's padded width have their
pad columns **zeroed after every row**.  A real column ``j`` reads
only columns ``j-1`` and ``j`` of the previous and current rows, so a
record's real columns never observe another record's — or their own
pad — state; zeroed pads are exactly the cells of an all-zero DP
boundary and can never win an ``argmax`` against a positive real cell
(ties at 0 are never recorded: best-so-far starts at 0 and updates are
strict).  Likewise queries shorter than the batch's longest query are
simply masked out of the best-cell update once past their last row.
The result is **bit-identical** to the reference kernel — same
``(score, i, j)``, same smallest-``i``-then-smallest-``j`` tie-breaks
— which the cross-backend property tests pin down.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..align.scoring import DEFAULT_DNA, LinearScoring, SubstitutionMatrix, encode
from ..align.smith_waterman import LocalHit

from . import KernelBackend

__all__ = ["StripedKernel", "DEFAULT_CELL_BUDGET"]

#: Ceiling on ``Q × R × n`` live DP cells per chunk (~32 MiB of int64
#: per state array); batches larger than this are split into chunks of
#: records, never of queries, so every chunk still amortizes across
#: the full query set.
DEFAULT_CELL_BUDGET = 4_000_000


class StripedKernel(KernelBackend):
    """Batched profile-based locate kernel (see module docs)."""

    name = "numpy-striped"

    def __init__(self, cell_budget: int = DEFAULT_CELL_BUDGET) -> None:
        if cell_budget < 1:
            raise ValueError(f"cell budget must be positive, got {cell_budget}")
        self.cell_budget = cell_budget

    # ------------------------------------------------------------------
    def locate(self, s, t, scheme=DEFAULT_DNA) -> LocalHit:
        return self.locate_batch([s], [t], scheme)[0][0]

    def locate_batch(
        self,
        queries: Sequence[str | np.ndarray],
        targets: Sequence[str | np.ndarray],
        scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
    ) -> list[list[LocalHit]]:
        q_codes = [encode(q) for q in queries]
        t_codes = [encode(t) for t in targets]
        hits: list[list[LocalHit]] = [
            [LocalHit(0, 0, 0)] * len(targets) for _ in queries
        ]
        live_q = [qi for qi, qc in enumerate(q_codes) if len(qc)]
        live_t = [ti for ti, tc in enumerate(t_codes) if len(tc)]
        if not live_q or not live_t:
            return hits
        prof = self._profiles([q_codes[qi] for qi in live_q], scheme)
        # Chunk records by length (longest first) so each chunk pads to
        # a similar width — padding cells are real work here.
        order = sorted(live_t, key=lambda ti: -len(t_codes[ti]))
        per_chunk = max(1, self.cell_budget // (len(live_q) * len(t_codes[order[0]])))
        for lo in range(0, len(order), per_chunk):
            chunk = order[lo : lo + per_chunk]
            chunk_hits = self._sweep_chunk(
                prof,
                [len(q_codes[qi]) for qi in live_q],
                [t_codes[ti] for ti in chunk],
                scheme.gap,
            )
            for row, qi in enumerate(live_q):
                for col, ti in enumerate(chunk):
                    hits[qi][ti] = chunk_hits[row][col]
        return hits

    # ------------------------------------------------------------------
    @staticmethod
    def _profiles(
        q_codes: list[np.ndarray], scheme: LinearScoring | SubstitutionMatrix
    ) -> np.ndarray:
        """``prof[qi, i, byte]`` — row-``i`` pair scores per target byte.

        Rows past a query's length stay at the fill value; they are
        computed by the sweep but masked out of every best-cell update.
        """
        n_q = len(q_codes)
        m_max = max(len(qc) for qc in q_codes)
        if isinstance(scheme, SubstitutionMatrix):
            prof = np.zeros((n_q, m_max, 256), dtype=np.int64)
            for qi, qc in enumerate(q_codes):
                prof[qi, : len(qc), :] = scheme._table[qc, :]
            return prof
        prof = np.full((n_q, m_max, 256), scheme.mismatch, dtype=np.int64)
        for qi, qc in enumerate(q_codes):
            prof[qi, np.arange(len(qc)), qc] = scheme.match
        return prof

    @staticmethod
    def _state_dtype(prof: np.ndarray, m_max: int, n_max: int, gap: int):
        """The narrowest integer dtype no DP value can overflow.

        DP magnitudes are bounded by ``m·max|pair|`` above and by the
        scan offsets ``n·|gap|`` plus one pair score below; values are
        identical in any dtype inside that bound, so the narrowest
        state (a quarter of the memory traffic for short sequences —
        this kernel is bandwidth bound) changes nothing but wall-clock.
        """
        pair_bound = int(np.abs(prof).max(initial=0))
        bound = (m_max + n_max) * (pair_bound + abs(gap) + 1)
        if bound < 2**14:
            return np.int16
        return np.int32 if bound < 2**30 else np.int64

    def _sweep_chunk(
        self,
        prof: np.ndarray,
        q_lens: list[int],
        t_codes: list[np.ndarray],
        gap: int,
    ) -> list[list[LocalHit]]:
        """One padded chunk: every query × every record, row by row."""
        n_q = len(q_lens)
        n_t = len(t_codes)
        n_max = max(len(tc) for tc in t_codes)
        m_max = max(q_lens)
        dtype = self._state_dtype(prof, m_max, n_max, gap)
        prof = prof.astype(dtype, copy=False)
        T = np.zeros((n_t, n_max), dtype=np.intp)
        for ti, tc in enumerate(t_codes):
            T[ti, : len(tc)] = tc
        t_lens = np.array([len(tc) for tc in t_codes], dtype=np.int64)
        pad = np.arange(n_max, dtype=np.int64)[None, :] >= t_lens[:, None]
        any_pad = bool(pad.any())
        q_len_arr = np.array(q_lens, dtype=np.int64)
        flat_T = T.ravel()

        offsets = (gap * np.arange(1, n_max + 1)).astype(dtype)
        prev = np.zeros((n_q, n_t, n_max + 1), dtype=dtype)
        cur = np.zeros((n_q, n_t, n_max + 1), dtype=dtype)
        pair = np.empty((n_q, n_t * n_max), dtype=dtype)
        h = np.empty((n_q, n_t, n_max), dtype=dtype)
        up = np.empty((n_q, n_t, n_max), dtype=dtype)
        best = np.zeros((n_q, n_t), dtype=dtype)
        best_i = np.zeros((n_q, n_t), dtype=np.int64)
        best_j = np.zeros((n_q, n_t), dtype=np.int64)
        for i in range(1, m_max + 1):
            np.take(prof[:, i - 1, :], flat_T, axis=-1, out=pair)
            pair_qr = pair.reshape(n_q, n_t, n_max)
            np.add(prev[..., :-1], pair_qr, out=h)
            np.add(prev[..., 1:], gap, out=up)
            np.maximum(h, up, out=h)
            np.maximum(h, 0, out=h)
            row = cur[..., 1:]
            np.subtract(h, offsets, out=h)
            np.maximum.accumulate(h, axis=-1, out=row)
            row += offsets
            if any_pad:
                # Pad columns are never read by real columns; pinning
                # them to the all-zero boundary keeps argmax honest.
                row[:, pad] = 0
            vals = row.max(axis=-1)
            improved = (vals > best) & (i <= q_len_arr)[:, None]
            if improved.any():
                # argmax (first occurrence = smallest j) only on the
                # lanes that actually improved — most rows improve none.
                np.copyto(best, vals, where=improved)
                best_i[improved] = i
                best_j[improved] = np.argmax(row[improved], axis=-1) + 1
            prev, cur = cur, prev
        return [
            [
                LocalHit(int(best[qi, ti]), int(best_i[qi, ti]), int(best_j[qi, ti]))
                for ti in range(n_t)
            ]
            for qi in range(n_q)
        ]
