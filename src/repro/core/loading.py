"""Query-load mechanisms: register chain vs dynamic reconfiguration.

Section 4 contrasts two ways of getting the query into the elements:

* the conventional **register chain** — each element stores its base
  in flip-flops, loaded in ``chunk_length`` clocks per pass;
* the **JBits dynamic-reconfiguration** approach of [13] — the query
  is baked into the element LUTs by partial reconfiguration, "sparing
  2 flip-flops for each base storage" for "a 25% reduction in the
  overall circuit", at the price of a reconfiguration "that normally
  takes milliseconds", which "makes it difficult to use for large
  query sequences that would require many reconfigurations".

This module prices both mechanisms on our calibrated models so the
trade-off the paper narrates becomes a computable crossover: the
loading-mode ablation benchmark sweeps query/database sizes and finds
where reconfiguration stops paying.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..hw.device import ResourceVector
from .datapath import BASE_WIDTH
from .partition import plan_partition
from .resources import ResourceModel
from .timing import ClockModel, IDEAL_CLOCK

__all__ = ["QueryLoadMode", "LoadCostModel"]


class QueryLoadMode(Enum):
    """How a query chunk reaches the elements."""

    REGISTER_CHAIN = "register-chain"
    RECONFIGURATION = "jbits-reconfiguration"


@dataclass(frozen=True)
class LoadCostModel:
    """Per-mode time and area accounting.

    ``reconfig_seconds`` defaults to 5 ms per pass — the "normally
    takes milliseconds" of section 4.  Register loading is one clock
    per base.  The area saving of reconfiguration is the base
    register per element ([13]'s two flip-flops per base, i.e. our
    2-bit ``SP`` register) plus its load mux.
    """

    mode: QueryLoadMode = QueryLoadMode.REGISTER_CHAIN
    clock: ClockModel = IDEAL_CLOCK
    reconfig_seconds: float = 5e-3

    def load_seconds_per_pass(self, chunk_length: int) -> float:
        """Time to install one query chunk."""
        if chunk_length < 0:
            raise ValueError("chunk length cannot be negative")
        if self.mode is QueryLoadMode.RECONFIGURATION:
            return self.reconfig_seconds if chunk_length else 0.0
        return self.clock.seconds(chunk_length)

    def total_seconds(self, query_length: int, database_length: int, elements: int) -> float:
        """End-to-end time: compute passes + per-pass load cost."""
        plan = plan_partition(query_length, database_length, elements)
        compute = self.clock.seconds(plan.total_cycles())
        load = sum(self.load_seconds_per_pass(c.length) for c in plan.chunks)
        return compute + load

    def element_area(self) -> ResourceVector:
        """Per-element area under this load mode.

        Reconfiguration removes the ``SP`` flip-flops and the load
        path; [13] reports ~25% overall circuit reduction — we charge
        the directly attributable registers/LUTs and let the benchmark
        report the resulting percentage.
        """
        base = ResourceModel().per_element
        if self.mode is QueryLoadMode.REGISTER_CHAIN:
            return base
        return ResourceVector(
            slices=base.slices - 16,
            flipflops=base.flipflops - BASE_WIDTH - 2,  # SP + chain enable
            luts=base.luts - 24,  # load mux + chain routing
            iobs=base.iobs,
            gclks=base.gclks,
        )

    def resource_model(self) -> ResourceModel:
        """A full :class:`ResourceModel` with this mode's element."""
        base = ResourceModel()
        return ResourceModel(
            per_element=self.element_area(),
            controller=base.controller,
            base_period_ns=base.base_period_ns,
            routing_beta=base.routing_beta,
            device=base.device,
        )

    def crossover_passes(self, chunk_length: int) -> float:
        """Passes at which reconfiguration's fixed cost exceeds the
        register chain's per-base cost — always <= 1 in practice
        (milliseconds vs microseconds), which is exactly why [13]'s
        approach struggles with partitioned queries."""
        register = self.clock.seconds(chunk_length)
        if register == 0:
            return float("inf")
        return self.reconfig_seconds / register
