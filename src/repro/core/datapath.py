"""Gate-level model of the element datapath (figure 6) and the array
floorplan (figures 8/9).

Figure 6 draws the per-cycle combinational path of one processing
element: base comparison selecting ``Co``/``Su``, the diagonal adder,
the ``B``/``C`` comparator feeding the ``In/Re`` adder, the two-way
maximum, the zero clamp, and the best-score comparator writing ``Bs``
/``Bc``.  This module builds that datapath as an explicit DAG
(networkx) with per-node gate delays and per-edge routing delays, and
derives:

* the **critical path** and a first-principles ``f_max`` estimate —
  checked against the ISE-reported 144.9 MHz (they agree within the
  routing-model slop, which is the point: the paper's clock is what
  this datapath should run at);
* **resource counts** (LUTs/FFs) of a hand-mapped element — compared
  with the Table-2-calibrated coefficients of
  :mod:`repro.core.resources` to quantify the overhead of the paper's
  Forte high-level-synthesis flow;
* a **structural netlist summary** of the full design (array + global
  controller), the textual stand-in for the floorplan screenshots of
  figures 8 and 9.

Delay and area constants are generic Virtex-II-Pro-class figures
(about 0.4 ns register clock-to-out, ~1 ns for a 16-bit ripple
compare/add with dedicated carry, 0.35 ns average route); they are
deliberately round — the model's job is structure, not timing closure.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

__all__ = [
    "GateSpec",
    "build_pe_datapath",
    "critical_path",
    "fmax_mhz",
    "pe_resource_counts",
    "netlist_summary",
    "SCORE_WIDTH",
    "BASE_WIDTH",
    "CYCLE_WIDTH",
]

#: Score register width.  The paper's scheme (+1/-1/-2) on a 10 MBP
#: stream never exceeds the query length x match score, so 16 bits
#: hold any score up to a 32 KBP chunk; SAMBA used 12 bits (section 4).
SCORE_WIDTH = 16
#: DNA base encoding width (A/C/G/T).
BASE_WIDTH = 2
#: Cycle counter width — must count to n + N - 1; 32 bits covers the
#: paper's 10 MBP stream with headroom.
CYCLE_WIDTH = 32


@dataclass(frozen=True)
class GateSpec:
    """One datapath node: its kind, bit width, delay and area."""

    kind: str  # 'reg', 'cmp', 'add', 'mux', 'max', 'clamp', 'in', 'out'
    width: int
    delay_ns: float
    luts: int
    ffs: int


#: Per-kind delay (ns) and area (LUTs per bit / FFs per bit) recipes.
_RECIPES = {
    "reg": (0.4, 0.0, 1.0),  # clock-to-out; area is FFs
    "in": (0.0, 0.0, 0.0),  # port
    "cmp": (1.0, 1.0, 0.0),  # carry-chain comparator
    "add": (1.0, 1.0, 0.0),  # carry-chain adder
    "mux": (0.3, 0.5, 0.0),  # 2:1 mux folds into LUTs
    "max": (1.3, 1.5, 0.0),  # compare + select
    "clamp": (0.3, 0.5, 0.0),  # max(x, 0): sign test + mux
    "out": (0.4, 0.0, 1.0),  # output register (setup folded in)
}

#: Average routing delay charged per edge (ns).
ROUTE_NS = 0.33


def _gate(kind: str, width: int) -> GateSpec:
    delay, luts_per_bit, ffs_per_bit = _RECIPES[kind]
    return GateSpec(
        kind=kind,
        width=width,
        delay_ns=delay,
        luts=round(luts_per_bit * width),
        ffs=round(ffs_per_bit * width),
    )


def build_pe_datapath() -> nx.DiGraph:
    """The figure-6 datapath as a DAG.

    Node attributes carry the :class:`GateSpec`; edges are wires (each
    charged :data:`ROUTE_NS`).  The graph covers one clock cycle: from
    the registered state (``A``, ``B``, ``Bs``, ``Cl``) and the
    incoming wires (``C``, ``SB``) to the next-state registers.
    """
    g = nx.DiGraph()

    def add(name: str, kind: str, width: int) -> None:
        g.add_node(name, spec=_gate(kind, width))

    # State registers and inputs.
    add("SP", "reg", BASE_WIDTH)  # query base
    add("SB_in", "in", BASE_WIDTH)  # database base from the left
    add("A", "reg", SCORE_WIDTH)  # diagonal score
    add("B", "reg", SCORE_WIDTH)  # own previous score
    add("C_in", "in", SCORE_WIDTH)  # left neighbour score
    add("Bs", "reg", SCORE_WIDTH)  # lane best
    add("Cl", "reg", CYCLE_WIDTH)  # cycle counter
    # Combinational stages (left to right in figure 6).
    add("base_eq", "cmp", BASE_WIDTH)  # SP == SB ?
    add("co_su_mux", "mux", SCORE_WIDTH)  # select Co or Su
    add("diag_add", "add", SCORE_WIDTH)  # A + Co/Su
    add("bc_max", "max", SCORE_WIDTH)  # max(B, C)
    add("gap_add", "add", SCORE_WIDTH)  # + In/Re
    add("d_max", "max", SCORE_WIDTH)  # max(diag, gap)
    add("zero_clamp", "clamp", SCORE_WIDTH)  # max(., 0) -> D
    add("best_cmp", "cmp", SCORE_WIDTH)  # D > Bs ?
    # Next-state registers / outputs to the right neighbour.
    add("D_out", "out", SCORE_WIDTH)  # -> right C_in, and B := D
    add("SB_out", "out", BASE_WIDTH)  # base pipeline register
    add("A_next", "out", SCORE_WIDTH)  # A := C
    add("Bs_next", "out", SCORE_WIDTH)  # Bs := D (when enabled)
    add("Bc_next", "out", CYCLE_WIDTH)  # Bc := Cl (when enabled)

    edges = [
        ("SP", "base_eq"),
        ("SB_in", "base_eq"),
        ("base_eq", "co_su_mux"),
        ("co_su_mux", "diag_add"),
        ("A", "diag_add"),
        ("B", "bc_max"),
        ("C_in", "bc_max"),
        ("bc_max", "gap_add"),
        ("diag_add", "d_max"),
        ("gap_add", "d_max"),
        ("d_max", "zero_clamp"),
        ("zero_clamp", "best_cmp"),
        ("Bs", "best_cmp"),
        ("zero_clamp", "D_out"),
        ("SB_in", "SB_out"),
        ("C_in", "A_next"),
        ("zero_clamp", "Bs_next"),
        ("best_cmp", "Bs_next"),  # write enable
        ("Cl", "Bc_next"),
        ("best_cmp", "Bc_next"),  # write enable
    ]
    g.add_edges_from(edges)
    return g


def critical_path(g: nx.DiGraph | None = None) -> tuple[list[str], float]:
    """Longest register-to-register path and its delay in ns.

    Delay = sum of node delays on the path + one :data:`ROUTE_NS` per
    edge traversed.
    """
    if g is None:
        g = build_pe_datapath()
    best_path: list[str] = []
    best_delay = 0.0
    # The graph is tiny; enumerate all simple source->sink paths.
    sources = [n for n in g if g.in_degree(n) == 0]
    sinks = [n for n in g if g.out_degree(n) == 0]
    for src in sources:
        for dst in sinks:
            for path in nx.all_simple_paths(g, src, dst):
                delay = sum(g.nodes[n]["spec"].delay_ns for n in path)
                delay += ROUTE_NS * (len(path) - 1)
                if delay > best_delay:
                    best_delay = delay
                    best_path = path
    return best_path, best_delay


def fmax_mhz(g: nx.DiGraph | None = None) -> float:
    """First-principles maximum clock of the element datapath."""
    _, delay = critical_path(g)
    return 1e3 / delay


def pe_resource_counts(g: nx.DiGraph | None = None) -> dict[str, int]:
    """Hand-mapped LUT/FF counts of one element.

    The Table-2-calibrated model charges ~424 LUTs / 160 FFs per
    element; the hand-mapped figure here is substantially lower — the
    difference is the measured overhead of the Forte HLS flow (a test
    keeps the ratio in a sane band so the two models cannot drift
    apart silently).
    """
    if g is None:
        g = build_pe_datapath()
    luts = sum(g.nodes[n]["spec"].luts for n in g)
    ffs = sum(g.nodes[n]["spec"].ffs for n in g)
    # Bc register is CYCLE_WIDTH wide but lives in Bc_next's FFs;
    # control FSM overhead: ~10% of LUTs, at least 8.
    control = max(8, luts // 10)
    return {"luts": luts + control, "ffs": ffs, "control_luts": control}


def netlist_summary(n_elements: int = 100) -> str:
    """Structural summary of the full design (figures 8 and 9).

    The left part (figure 8) is the replicated element array; the
    right part (figure 9) the global controller: the readout chain,
    the global best comparator, and the coordinate recovery logic.
    """
    g = build_pe_datapath()
    counts = pe_resource_counts(g)
    path, delay = critical_path(g)
    lines = [
        f"design: sw-locate array, {n_elements} elements",
        "",
        "left part (figure 8) — element array:",
        f"  element instances : {n_elements}",
        f"  gates per element : {g.number_of_nodes()} nodes, {g.number_of_edges()} nets",
        f"  area per element  : ~{counts['luts']} LUTs, {counts['ffs']} FFs (hand-mapped)",
        f"  critical path     : {' -> '.join(path)}",
        f"  path delay        : {delay:.2f} ns  (f_max ~ {1e3 / delay:.1f} MHz)",
        "",
        "right part (figure 9) — global controller:",
        "  per-lane readout chain (Bs, Bc shifted out after each pass)",
        "  global best comparator: (score, -row, -column) lexicographic",
        "  coordinate recovery: j = Bc - k + 1 (+ segment offset)",
        "  host interface: 12-byte result register, PCI endpoint",
    ]
    return "\n".join(lines)
