"""Cycle-accurate simulator of the paper's systolic array (figure 5).

The array is a linear pipe of :class:`~repro.core.pe.ProcessingElement`
instances.  One *pass* streams a database segment through the array
while a query chunk (at most one base per element) sits in the ``SP``
registers; each clock advances the active anti-diagonal of the
similarity matrix by one (the wavefront of figures 3-5).

Dataflow per clock:

* element 1 receives the next database base together with the
  **boundary-row value** for that column — all zeros for the first
  query chunk (row 0 of the Smith-Waterman matrix), or the stored
  output row of the previous chunk when a long query is partitioned
  (figure 7, the rows "kept on the board to allow new scores to be
  calculated");
* every element consumes its left neighbour's *registered* outputs
  from the previous clock (two-phase update below), computes one cell,
  and registers its outputs for the right neighbour;
* the last element's score output is collected — it is the boundary
  row handed to the next chunk's pass (written to board SRAM in the
  real design).

The simulation is two-phase per clock (read all previous outputs, then
commit), which is exactly how a clocked synchronous circuit behaves —
there is no simulation-order artefact.

A pass over a database segment of length ``n`` with an array of ``N``
elements takes ``n + N - 1`` clocks: ``n`` issue cycles plus ``N - 1``
drain cycles while the wavefront exits the pipe.  This formula is the
heart of the paper's performance claim and is exported via
:attr:`PassResult.cycles` so the timing model can be validated against
the simulator cycle-for-cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..align.scoring import DEFAULT_DNA, LinearScoring, SubstitutionMatrix, encode
from .pe import PEOutput, ProcessingElement

__all__ = ["LaneBest", "PassResult", "SystolicArray"]


@dataclass(frozen=True)
class LaneBest:
    """Readout of one lane after a pass: the controller's raw input.

    ``row`` is the absolute query row this lane computed (chunk offset
    + element index); ``score``/``cycle`` are the element's ``Bs`` and
    ``Bc`` registers.  ``column`` is the recovered database coordinate
    ``Bc - k + 1`` (already shifted to 1-based segment coordinates).
    """

    row: int
    score: int
    cycle: int
    column: int


@dataclass
class PassResult:
    """Outcome of streaming one database segment through the array."""

    lane_bests: list[LaneBest]
    boundary_row: np.ndarray  # last element's output row, length n + 1
    cycles: int  # clocks consumed by this pass
    cells: int  # matrix cells computed (active element-steps)


class SystolicArray:
    """A linear systolic array of ``n_elements`` processing elements.

    Parameters
    ----------
    n_elements:
        Number of elements (the paper's prototype synthesizes 100).
    scheme:
        Scoring scheme shared by every element; must use a linear gap
        penalty (the hardware datapath has a single ``In/Re`` input).

    Use :meth:`load_query` then :meth:`run_pass`, or let
    :class:`repro.core.accelerator.SWAccelerator` orchestrate
    partitioned multi-pass runs.
    """

    def __init__(
        self,
        n_elements: int,
        scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
        clamp: bool = True,
    ) -> None:
        if n_elements < 1:
            raise ValueError(f"array needs at least one element, got {n_elements}")
        self.n_elements = n_elements
        self.scheme = scheme
        self.elements = [
            ProcessingElement(index=k + 1, scheme=scheme, clamp=clamp)
            for k in range(n_elements)
        ]
        self._loaded_rows = 0
        self._row_offset = 0
        self._col0 = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def load_query(
        self,
        chunk: str | bytes | np.ndarray,
        row_offset: int = 0,
        column0_scores: Sequence[int] | np.ndarray | None = None,
    ) -> None:
        """Fix a query chunk into the ``SP`` registers.

        ``chunk`` may be shorter than the array (final chunk of a
        partitioned query); the spare elements are marked unused.
        ``row_offset`` is the number of query rows already processed
        by earlier chunks — it shifts the reported lane rows so
        coordinates are absolute.  Loading clears all element state
        (in the real design this is the query-load phase the JBits
        work of [13] replaces with dynamic reconfiguration).

        ``column0_scores`` configures the matrix's **column 0**: entry
        ``k`` initializes element ``k``'s ``B`` register (its
        ``D[row_k, 0]``) and, via the shifted entry, the ``A``
        register (``D[row_k - 1, 0]``).  ``None`` keeps the local-mode
        zeros; semi-global mode passes ``row * gap`` — one of the two
        configuration changes that retarget the array (see
        :mod:`repro.align.semiglobal`).  Length must be
        ``len(chunk) + 1``: the boundary above the chunk first.
        """
        codes = encode(chunk)
        if len(codes) > self.n_elements:
            raise ValueError(
                f"query chunk of {len(codes)} exceeds array size {self.n_elements}; "
                "partition the query first (figure 7)"
            )
        col0 = None
        if column0_scores is not None:
            col0 = np.asarray(column0_scores, dtype=np.int64)
            if col0.shape != (len(codes) + 1,):
                raise ValueError(
                    f"column0_scores must have length {len(codes) + 1}, got {col0.shape}"
                )
        for k, element in enumerate(self.elements):
            element.load(int(codes[k]) if k < len(codes) else None)
            if col0 is not None and k < len(codes):
                element.a = int(col0[k])
                element.b = int(col0[k + 1])
        self._col0 = col0
        self._loaded_rows = len(codes)
        self._row_offset = row_offset

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_pass(
        self,
        database: str | bytes | np.ndarray,
        boundary_row: Sequence[int] | np.ndarray | None = None,
        on_cycle: Callable[[int, list[PEOutput]], None] | None = None,
    ) -> PassResult:
        """Stream a database segment through the loaded query chunk.

        Parameters
        ----------
        database:
            The segment to stream (length ``n``).
        boundary_row:
            Row of ``n + 1`` scores that sits *above* this chunk —
            ``None`` means row 0 of the matrix (all zeros).  Entry
            ``[j]`` is fed to element 1 together with database base
            ``j`` (the on-board SRAM read of figure 7).
        on_cycle:
            Optional tracing hook called after every clock with
            ``(cycle, registered_outputs)``; used by the figure-5
            renderer and the anti-diagonal equivalence tests.

        Returns a :class:`PassResult` with the lane readouts, the
        output boundary row for the next chunk and the exact clock
        count (``n + N - 1`` active clocks).
        """
        if self._loaded_rows == 0:
            raise RuntimeError("no query chunk loaded; call load_query() first")
        # Every pass starts from the configured reset state: dynamic
        # registers clear, column-0 boundary re-applied.  (The real
        # flow reloads the query before each pass; making the reset
        # part of run_pass removes a stale-state hazard when the same
        # chunk is streamed against several segments, as in a scan.)
        for k, element in enumerate(self.elements[: self._loaded_rows]):
            sp = element.sp
            element.load(sp)
            if self._col0 is not None:
                element.a = int(self._col0[k])
                element.b = int(self._col0[k + 1])
        db_codes = encode(database)
        n = len(db_codes)
        if boundary_row is None:
            boundary = np.zeros(n + 1, dtype=np.int64)
        else:
            boundary = np.asarray(boundary_row, dtype=np.int64)
            if boundary.shape != (n + 1,):
                raise ValueError(
                    f"boundary_row must have length {n + 1}, got {boundary.shape}"
                )
        n_active = self._loaded_rows
        total_cycles = n + n_active - 1 if n > 0 else 0
        # Registered outputs from the previous clock; wires[k] feeds
        # element k+1.  Index 0 is the array input port.
        wires = [PEOutput() for _ in range(self.n_elements + 1)]
        out_row = np.zeros(n + 1, dtype=np.int64)
        out_row[0] = 0  # column 0 of every row is zero in local mode
        for cycle in range(1, total_cycles + 1):
            # Input port: base j = cycle enters on cycle j, along with
            # the boundary-row score for column j.
            if cycle <= n:
                feed = PEOutput(
                    score=int(boundary[cycle]),
                    base=int(db_codes[cycle - 1]),
                    valid=True,
                )
            else:
                feed = PEOutput()
            new_wires = [feed]
            for k, element in enumerate(self.elements[:n_active]):
                new_wires.append(element.step(wires[k] if k else feed, cycle))
            # Inert lanes beyond the chunk keep bubbles flowing.
            new_wires.extend(PEOutput() for _ in range(self.n_elements - n_active))
            wires = new_wires
            # Collect the chunk's bottom row as it drains from the
            # last *active* element: cell (n_active, j) appears at
            # cycle j + n_active - 1.
            j = cycle - n_active + 1
            if 1 <= j <= n:
                out_row[j] = wires[n_active].score
            if on_cycle is not None:
                on_cycle(cycle, wires[1:])
        lane_bests = [
            LaneBest(
                row=self._row_offset + element.index,
                score=element.bs,
                cycle=element.bc,
                column=element.lane_column(),
            )
            for element in self.elements[:n_active]
            if element.bs > 0
        ]
        return PassResult(
            lane_bests=lane_bests,
            boundary_row=out_row,
            cycles=total_cycles,
            cells=sum(e.cells_computed for e in self.elements[:n_active]),
        )
