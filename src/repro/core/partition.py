"""Query partitioning for queries longer than the array (figure 7).

An array of ``N`` elements holds at most ``N`` query bases.  A longer
query is split into ``ceil(m / N)`` chunks processed in consecutive
passes over the *same* database segment; the bottom row of scores each
chunk produces is "kept on the board" (SRAM in the real design) and
fed back as the boundary row of the next chunk — making the chunked
computation bit-exact with the monolithic matrix, which the
property-based tests verify for every chunk size.

This module holds the pure bookkeeping (chunk spans, pass/cycle
formulas, boundary-row memory accounting);
:class:`repro.core.accelerator.SWAccelerator` drives the actual
passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

__all__ = ["QueryChunk", "PartitionPlan", "plan_partition"]


@dataclass(frozen=True)
class QueryChunk:
    """One query chunk: rows ``start + 1 .. end`` of the matrix.

    ``start``/``end`` are 0-based half-open offsets into the query;
    the chunk occupies absolute matrix rows ``start + 1`` through
    ``end`` (1-based), which is why ``row_offset == start``.
    """

    index: int
    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start

    @property
    def row_offset(self) -> int:
        return self.start


@dataclass(frozen=True)
class PartitionPlan:
    """Full plan for running a query of length ``m`` on an ``N`` array.

    Besides the chunk list, the plan exposes the quantities the
    paper's performance and memory arguments rest on:

    * :meth:`total_cycles` — the exact clock count of the whole run,
      ``passes * (n + N - 1)`` minus the drain savings of a short last
      chunk; validated cycle-for-cycle against the RTL simulator;
    * :meth:`boundary_memory_bytes` — the on-board storage the scheme
      needs (one score row of ``n + 1`` cells), i.e. the *linear*
      memory footprint that replaces the quadratic matrix.
    """

    query_length: int
    database_length: int
    array_size: int
    chunks: tuple[QueryChunk, ...]

    @property
    def passes(self) -> int:
        return len(self.chunks)

    def pass_cycles(self, chunk: QueryChunk) -> int:
        """Clocks for one pass: ``n`` issue + ``chunk - 1`` drain."""
        if self.database_length == 0:
            return 0
        return self.database_length + chunk.length - 1

    def total_cycles(self) -> int:
        """Exact clock count across all passes (compute only).

        Query-load and readout clocks are accounted separately by the
        timing model (:mod:`repro.core.timing`), as they depend on the
        load mechanism (registers vs JBits-style reconfiguration,
        section 4 of the paper).
        """
        return sum(self.pass_cycles(c) for c in self.chunks)

    def total_cells(self) -> int:
        """Matrix cells computed — ``m * n`` exactly (nothing wasted
        for full chunks; short final chunks idle the spare elements)."""
        return self.query_length * self.database_length

    def boundary_memory_bytes(self, bytes_per_score: int = 4) -> int:
        """On-board memory for the inter-chunk boundary row.

        Zero when the query fits in one chunk — the configuration the
        paper's prototype measures (100 BP query, 100 elements).
        """
        if self.passes <= 1:
            return 0
        return (self.database_length + 1) * bytes_per_score

    def utilization(self) -> float:
        """Fraction of element-cycles doing useful cell updates."""
        cycles = self.total_cycles()
        if cycles == 0:
            return 0.0
        return self.total_cells() / (cycles * self.array_size)


def plan_partition(query_length: int, database_length: int, array_size: int) -> PartitionPlan:
    """Split a query into array-sized chunks (figure 7).

    Every chunk except possibly the last has exactly ``array_size``
    rows.  A zero-length query yields an empty plan.
    """
    if query_length < 0 or database_length < 0:
        raise ValueError("sequence lengths must be non-negative")
    if array_size < 1:
        raise ValueError(f"array size must be positive, got {array_size}")
    n_chunks = ceil(query_length / array_size) if query_length else 0
    chunks = tuple(
        QueryChunk(
            index=c,
            start=c * array_size,
            end=min((c + 1) * array_size, query_length),
        )
        for c in range(n_chunks)
    )
    return PartitionPlan(
        query_length=query_length,
        database_length=database_length,
        array_size=array_size,
        chunks=chunks,
    )
