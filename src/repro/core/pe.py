"""Register-transfer model of one systolic processing element (figure 6).

Each element of the paper's array holds one query base and computes,
one matrix cell per clock, the Smith-Waterman recurrence for its lane
of the similarity matrix, plus the paper's two extra fields: the best
score seen in its lane and the cycle at which that score appeared.

Register set (names follow figure 6 of the paper):

========  ==========================================================
``SP``    the query base fixed in this element
``A``     diagonal input register — holds ``D[k-1, j-1]`` (last
          cycle's ``C`` input)
``B``     own-output register — holds ``D[k, j-1]``, the value this
          element computed on the previous cycle
``C``     combinational input from the left neighbour — ``D[k-1, j]``
``Bs``    best score computed in this lane so far
``Cl``    cycle counter, incremented once per computed cell
``Bc``    value of ``Cl`` when ``Bs`` was last written
========  ==========================================================

Orientation: the repository fixes rows = query ``s``, columns =
database ``t`` (see :mod:`repro.align.matrix`).  Element ``k``
(1-based) therefore computes every cell ``D[k, j]``; the paper's
prose, which puts the query on columns, is the transpose of the same
dataflow.  ``Cl`` stores the *global clock cycle* (the anti-diagonal
index), exactly as in figure 5 where "the upper number is the cycle
when that score was calculated"; since element ``k`` computes cell
``(k, j)`` on cycle ``k + j - 1``, the controller recovers the
database coordinate as ``j = Bc - k + 1``.

The datapath per cycle (figure 6, right-to-left):

1. compare ``SP`` with the arriving database base ``SB``; select the
   coincidence value ``Co`` (match) or substitution value ``Su``
   (mismatch) and add it to ``A``;
2. in parallel, compare ``B`` and ``C``, add the insertion/removal
   penalty ``In/Re`` to the larger;
3. take the larger of the two sums, clamp at zero — this is the new
   cell value ``D`` (the clamp is a configuration bit: local mode
   enables it, semi-global mode disables it);
4. if ``D > Bs`` then ``Bs := D`` and ``Bc := Cl`` (strictly-greater
   update, so the earliest cell wins ties within a lane);
5. pipeline: ``A := C``, ``B := D``; pass ``D`` and ``SB`` to the
   right neighbour (each registered, one-cycle delay per element).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..align.scoring import LinearScoring, SubstitutionMatrix

__all__ = ["PEOutput", "ProcessingElement"]


@dataclass(frozen=True)
class PEOutput:
    """Registered outputs an element presents to its right neighbour.

    ``score`` is the cell value ``D`` computed this cycle (the next
    element's ``C`` input); ``base`` is the database base ``SB``
    forwarded one element further down the pipe.  ``valid`` gates the
    pipeline: elements downstream of the wavefront see invalid bubbles
    and hold their state, exactly like the real array before its lane
    is reached by the streamed sequence.
    """

    score: int = 0
    base: int = 0
    valid: bool = False


@dataclass
class ProcessingElement:
    """One element of the systolic array, stepped once per clock.

    Parameters
    ----------
    index:
        1-based position in the array (lane number = query row).
    scheme:
        Scoring scheme providing ``Co``/``Su`` (via ``pair``) and the
        ``In/Re`` gap penalty.  :class:`SubstitutionMatrix` is accepted
        so protein configurations can be simulated; the paper's
        hardware uses the three-constant DNA scheme.
    """

    index: int
    scheme: LinearScoring | SubstitutionMatrix
    clamp: bool = True  # zero clamp (local mode); semi-global disables
    sp: int | None = None  # query base (ASCII code); None = lane unused
    a: int = 0  # diagonal register  D[k-1, j-1]
    b: int = 0  # own previous score D[k, j-1]
    bs: int = 0  # best score in lane
    cl: int = 0  # cycle counter (global cycle of last computed cell)
    bc: int = 0  # cycle at which bs was written
    cells_computed: int = field(default=0)

    def load(self, base: int | None) -> None:
        """Fix a query base in the element and clear all registers.

        ``None`` marks the lane unused (query chunk shorter than the
        array — the paper fills the spare elements with zero padding
        that never raises ``Bs``; modelling them as inert is
        equivalent and keeps the invariants crisp).
        """
        self.sp = base
        self.a = 0
        self.b = 0
        self.bs = 0
        self.cl = 0
        self.bc = 0
        self.cells_computed = 0

    def step(self, left: PEOutput, cycle: int) -> PEOutput:
        """Advance one clock.

        ``left`` carries the left neighbour's registered outputs from
        the *previous* cycle (for element 1, the array supplies the
        database stream and the boundary-row value here).  ``cycle``
        is the global clock index (1-based) recorded into ``Cl``.

        Returns this element's registered outputs, to be handed to the
        right neighbour on the *next* cycle.
        """
        if not left.valid or self.sp is None:
            # Bubble: no database base reached this element this cycle.
            return PEOutput()
        # --- combinational datapath (figure 6) -----------------------
        pair = self.scheme.pair(self.sp, left.base)
        diag_sum = self.a + pair
        larger_bc = self.b if self.b >= left.score else left.score
        gap_sum = larger_bc + self.scheme.gap
        d = diag_sum if diag_sum >= gap_sum else gap_sum
        if self.clamp and d < 0:
            d = 0
        # --- best-score bookkeeping ----------------------------------
        self.cl = cycle
        self.cells_computed += 1
        if d > self.bs:
            self.bs = d
            self.bc = cycle
        # --- register updates ----------------------------------------
        self.a = left.score
        self.b = d
        return PEOutput(score=d, base=left.base, valid=True)

    # ------------------------------------------------------------------
    # Readout (what the controller shifts out after a pass)
    # ------------------------------------------------------------------
    def lane_best(self) -> tuple[int, int]:
        """``(Bs, Bc)`` — the pair the controller reduces over."""
        return self.bs, self.bc

    def lane_column(self) -> int:
        """Database coordinate of the lane best: ``j = Bc - k + 1``.

        Only meaningful when ``Bs > 0``; a lane that never saw a
        positive score reports ``(0, 0)`` and is skipped by the
        controller.
        """
        return self.bc - self.index + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        base = chr(self.sp) if self.sp is not None else "-"
        return (
            f"PE#{self.index}[{base}] A={self.a} B={self.b} "
            f"Bs={self.bs} Bc={self.bc} Cl={self.cl}"
        )
