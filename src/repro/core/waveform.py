"""Waveform capture: VCD dumps of the simulated array.

Hardware teams debug systolic designs by staring at waveforms; this
module gives the Python RTL model the same affordance.  It records
every element's architectural registers each clock of a pass and
writes a standard **Value Change Dump** (IEEE 1364) file that opens in
GTKWave — the lingua-franca substitute for the ModelSim traces the
paper's SystemC flow would produce.

Signals per element ``k``: ``pe<k>.D`` (cell score output), ``pe<k>.Bs``,
``pe<k>.Bc``, ``pe<k>.valid``; plus the global ``cycle`` counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..align.scoring import DEFAULT_DNA, LinearScoring, SubstitutionMatrix, encode
from .systolic import SystolicArray

__all__ = ["WaveformRecorder", "record_pass", "write_vcd", "parse_vcd_changes"]

#: Bit width used for VCD integer signals.
_VCD_WIDTH = 32


def _identifier(index: int) -> str:
    """Short printable-ASCII VCD identifier codes (! " # ...)."""
    chars = []
    index += 1
    while index:
        index, rem = divmod(index - 1, 94)
        chars.append(chr(33 + rem))
    return "".join(chars)


@dataclass
class WaveformRecorder:
    """Collects per-cycle samples of the array state."""

    signals: list[str] = field(default_factory=list)
    samples: list[dict[str, int]] = field(default_factory=list)

    def attach(self, array: SystolicArray) -> "WaveformRecorder":
        """Declare the signal set for ``array`` (call before the pass)."""
        self.signals = ["cycle"]
        for k in range(1, array.n_elements + 1):
            self.signals.extend(
                (f"pe{k}.D", f"pe{k}.Bs", f"pe{k}.Bc", f"pe{k}.valid")
            )
        self._array = array
        return self

    def on_cycle(self, cycle: int, outputs) -> None:
        """``run_pass`` tracing hook: sample everything."""
        sample: dict[str, int] = {"cycle": cycle}
        for k, (element, out) in enumerate(
            zip(self._array.elements, outputs), start=1
        ):
            sample[f"pe{k}.D"] = out.score if out.valid else 0
            sample[f"pe{k}.Bs"] = element.bs
            sample[f"pe{k}.Bc"] = element.bc
            sample[f"pe{k}.valid"] = int(out.valid)
        self.samples.append(sample)


def record_pass(
    query: str,
    database: str,
    scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
) -> WaveformRecorder:
    """Run one pass and capture the full waveform."""
    q_codes = encode(query)
    array = SystolicArray(max(1, len(q_codes)), scheme)
    array.load_query(q_codes)
    recorder = WaveformRecorder().attach(array)
    array.run_pass(database, on_cycle=recorder.on_cycle)
    return recorder


def write_vcd(
    recorder: WaveformRecorder,
    path: str | Path | None = None,
    timescale: str = "1 ns",
    module: str = "sw_array",
) -> str:
    """Serialize a recording as VCD; returns the text (writes ``path``).

    Only genuine value *changes* are emitted per timestep, as the
    format requires; an initial ``$dumpvars`` block sets every signal.
    """
    if not recorder.signals:
        raise ValueError("recorder has no signals; call attach()/record_pass first")
    ids = {name: _identifier(i) for i, name in enumerate(recorder.signals)}
    lines = [
        "$date repro systolic simulation $end",
        f"$timescale {timescale} $end",
        f"$scope module {module} $end",
    ]
    for name in recorder.signals:
        width = 1 if name.endswith(".valid") else _VCD_WIDTH
        safe = name.replace(".", "_")
        lines.append(f"$var wire {width} {ids[name]} {safe} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    def emit(name: str, value: int) -> str:
        if name.endswith(".valid"):
            return f"{value & 1}{ids[name]}"
        if value < 0:
            value &= (1 << _VCD_WIDTH) - 1
        return f"b{value:b} {ids[name]}"

    last: dict[str, int] = {}
    lines.append("$dumpvars")
    first = recorder.samples[0] if recorder.samples else {n: 0 for n in recorder.signals}
    for name in recorder.signals:
        value = first.get(name, 0)
        lines.append(emit(name, value))
        last[name] = value
    lines.append("$end")
    for step, sample in enumerate(recorder.samples):
        changes = [
            emit(name, sample[name])
            for name in recorder.signals
            if sample.get(name, 0) != last.get(name)
        ]
        if step == 0:
            # Already dumped as initial values.
            for name in recorder.signals:
                last[name] = sample.get(name, 0)
            continue
        if changes:
            lines.append(f"#{step}")
            lines.extend(changes)
            for name in recorder.signals:
                last[name] = sample.get(name, 0)
    lines.append(f"#{max(1, len(recorder.samples))}")
    text = "\n".join(lines) + "\n"
    if path is not None:
        Path(path).write_text(text, encoding="ascii")
    return text


def parse_vcd_changes(text: str) -> dict[str, list[tuple[int, int]]]:
    """Minimal VCD reader for round-trip testing.

    Returns ``{signal_name: [(time, value), ...]}`` using the declared
    var names (with ``_`` as emitted).  Supports only the subset
    :func:`write_vcd` produces.
    """
    names: dict[str, str] = {}
    changes: dict[str, list[tuple[int, int]]] = {}
    time = 0
    for raw in text.splitlines():
        line = raw.strip()
        if line.startswith("$var"):
            parts = line.split()
            names[parts[3]] = parts[4]
            changes[parts[4]] = []
        elif line.startswith("#"):
            time = int(line[1:])
        elif line.startswith("b"):
            value_str, ident = line[1:].split()
            changes[names[ident]].append((time, int(value_str, 2)))
        elif line and line[0] in "01" and len(line) > 1 and not line.startswith("$"):
            ident = line[1:]
            if ident in names:
                changes[names[ident]].append((time, int(line[0])))
    return changes
