"""Hardware-style verification: random vectors and fault injection.

The paper validates its design by SystemC simulation before synthesis
(section 6).  This module provides the corresponding methodology for
the Python RTL model:

* :func:`random_vector_campaign` — drive the array with seeded random
  sequence pairs and compare every output (hit, boundary row, cycle
  count) against the independent software oracle;
* :func:`inject_fault` / :func:`fault_campaign` — force a stuck-at
  fault into one element register and measure whether the campaign
  *detects* it (any output mismatch).  A verification suite that
  cannot detect injected faults proves nothing; the tests assert high
  detection coverage for score-path faults and document which faults
  are architecturally silent (e.g. a stuck ``Bs`` in a lane whose best
  is never the winner).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..align.scoring import DEFAULT_DNA, LinearScoring, SubstitutionMatrix, encode
from ..align.smith_waterman import sw_locate_best, sw_row_sweep
from ..io.generate import random_dna
from .controller import BestScoreController
from .systolic import SystolicArray

__all__ = [
    "VectorResult",
    "CampaignReport",
    "run_vector",
    "random_vector_campaign",
    "inject_fault",
    "fault_campaign",
    "FAULTABLE_REGISTERS",
]

#: Element registers a stuck-at fault can target.
FAULTABLE_REGISTERS = ("a", "b", "bs", "bc", "sp")


@dataclass(frozen=True)
class VectorResult:
    """Outcome of one test vector."""

    query: str
    database: str
    passed: bool
    detail: str = ""


@dataclass
class CampaignReport:
    """Aggregate of a vector campaign."""

    results: list[VectorResult] = field(default_factory=list)

    @property
    def vectors(self) -> int:
        return len(self.results)

    @property
    def failures(self) -> list[VectorResult]:
        return [r for r in self.results if not r.passed]

    @property
    def all_passed(self) -> bool:
        return not self.failures

    @property
    def detection_rate(self) -> float:
        """For fault campaigns: fraction of vectors exposing the fault."""
        if not self.results:
            return 0.0
        return len(self.failures) / len(self.results)


def run_vector(
    query: str,
    database: str,
    scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
    corrupt: Callable[[SystolicArray], None] | None = None,
) -> VectorResult:
    """Run one vector through the RTL array and check every output.

    ``corrupt`` (if given) is applied after the query load — the fault
    injection hook.  Checks: final hit vs the software oracle, the
    boundary row vs the independent row sweep, and the cycle count vs
    the analytic formula.
    """
    q_codes = encode(query)
    d_codes = encode(database)
    array = SystolicArray(len(q_codes), scheme)
    array.load_query(q_codes)
    if corrupt is not None:
        corrupt(array)
    result = array.run_pass(d_codes)
    controller = BestScoreController()
    controller.consider_pass(result.lane_bests)

    expected_hit = sw_locate_best(query, database, scheme)
    if controller.hit() != expected_hit:
        return VectorResult(
            query, database, False,
            f"hit {controller.hit()} != oracle {expected_hit}",
        )
    expected_row, _ = sw_row_sweep(q_codes, d_codes, scheme)
    if not np.array_equal(result.boundary_row, expected_row):
        return VectorResult(query, database, False, "boundary row mismatch")
    expected_cycles = len(d_codes) + len(q_codes) - 1 if len(d_codes) else 0
    if result.cycles != expected_cycles:
        return VectorResult(
            query, database, False,
            f"cycles {result.cycles} != {expected_cycles}",
        )
    return VectorResult(query, database, True)


def random_vector_campaign(
    vectors: int = 25,
    max_query: int = 24,
    max_database: int = 48,
    seed: int = 0,
    scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
    corrupt: Callable[[SystolicArray], None] | None = None,
    min_query: int = 1,
) -> CampaignReport:
    """Seeded random campaign against the oracle.

    ``min_query`` keeps every vector long enough to cover a fault
    target deep in the array.
    """
    if vectors < 1:
        raise ValueError("need at least one vector")
    if not 1 <= min_query <= max_query:
        raise ValueError("need 1 <= min_query <= max_query")
    rng = np.random.default_rng(seed)
    report = CampaignReport()
    for v in range(vectors):
        m = int(rng.integers(min_query, max_query + 1))
        n = int(rng.integers(1, max_database + 1))
        query = random_dna(m, seed=seed * 1000 + 2 * v)
        database = random_dna(n, seed=seed * 1000 + 2 * v + 1)
        report.results.append(run_vector(query, database, scheme, corrupt))
    return report


def inject_fault(
    element_index: int, register: str, stuck_value: int
) -> Callable[[SystolicArray], None]:
    """A ``corrupt`` hook forcing ``register`` of one element to a
    stuck value — re-asserted every clock, a true stuck-at fault.

    ``element_index`` is 0-based.  Faulting ``sp`` flips the stored
    query base (a configuration upset); the score registers model
    datapath faults.
    """
    if register not in FAULTABLE_REGISTERS:
        raise ValueError(
            f"unknown register {register!r}; choose from {FAULTABLE_REGISTERS}"
        )

    def corrupt(array: SystolicArray) -> None:
        if element_index >= len(array.elements):
            raise ValueError(
                f"element {element_index} outside array of {len(array.elements)}"
            )
        element = array.elements[element_index]
        setattr(element, register, stuck_value)
        original_step = element.step

        def faulty_step(left, cycle):
            setattr(element, register, stuck_value)  # stuck before compute
            out = original_step(left, cycle)
            setattr(element, register, stuck_value)  # ...and after update
            return out

        element.step = faulty_step  # type: ignore[method-assign]

    return corrupt


def fault_campaign(
    register: str,
    stuck_value: int,
    element_index: int = 0,
    vectors: int = 20,
    seed: int = 7,
) -> CampaignReport:
    """Run the random campaign with one injected fault.

    The returned report's :attr:`CampaignReport.detection_rate` is the
    fault coverage of the campaign for this fault.
    """
    return random_vector_campaign(
        vectors=vectors,
        seed=seed,
        corrupt=inject_fault(element_index, register, stuck_value),
        min_query=element_index + 1,
    )
