"""Fast functional emulator of the partitioned systolic computation.

The RTL simulator (:mod:`repro.core.systolic`) models every register
of every element every clock — faithful, but ~10^5 cells/second in
Python.  The emulator computes the *same function* with the vectorized
row-sweep kernel, chunk by chunk with boundary-row handoff, i.e. it
emulates exactly the partitioned dataflow of figure 7 at NumPy speed
(~10^8 cells/second).  The test-suite pins the two together bit-exactly
(same hit, same boundary rows) on randomized inputs; the accelerator
uses the emulator by default and the RTL engine on demand.

The emulation is *architectural*, not merely algorithmic: it iterates
the same chunk decomposition, carries the same boundary rows the board
SRAM would, and reduces lane bests with the same controller tie-break
— so partitioning bugs (the interesting failure mode of figure 7)
cannot hide behind a monolithic shortcut.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..align.scoring import DEFAULT_DNA, LinearScoring, SubstitutionMatrix, encode
from ..align.smith_waterman import LocalHit, sw_row_sweep
from .partition import PartitionPlan, plan_partition

__all__ = ["EmulatorResult", "emulate_partitioned"]


@dataclass(frozen=True)
class EmulatorResult:
    """Hit plus the bookkeeping the accelerator reports."""

    hit: LocalHit
    plan: PartitionPlan
    final_boundary_row: np.ndarray


def emulate_partitioned(
    s: str | np.ndarray,
    t: str | np.ndarray,
    array_size: int,
    scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
) -> EmulatorResult:
    """Run the figure-7 partitioned computation functionally.

    Splits the query into ``array_size`` chunks, sweeps each against
    the full database with the previous chunk's bottom row as the
    initial row, and reduces per-chunk bests with the controller's
    strictly-greater-in-order rule (earliest chunk, i.e. smallest row,
    wins ties).  Returns the same :class:`LocalHit` the RTL simulator
    produces.
    """
    s_codes = encode(s)
    t_codes = encode(t)
    m, n = len(s_codes), len(t_codes)
    plan = plan_partition(m, n, array_size)
    boundary = np.zeros(n + 1, dtype=np.int64)
    best = LocalHit(0, 0, 0)
    if m == 0 or n == 0:
        return EmulatorResult(best, plan, boundary)
    for chunk in plan.chunks:
        boundary, chunk_hit = sw_row_sweep(
            s_codes[chunk.start : chunk.end], t_codes, scheme, initial_row=boundary
        )
        if chunk_hit.score > best.score:
            best = LocalHit(
                chunk_hit.score, chunk.row_offset + chunk_hit.i, chunk_hit.j
            )
    return EmulatorResult(best, plan, boundary)


def lane_readout(
    s: str | np.ndarray,
    t: str | np.ndarray,
    scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
) -> list["LaneBest"]:
    """Per-row best readout — what every lane's (Bs, Bc) registers hold.

    Functional equivalent of collecting the whole array's lane
    registers after a run: one candidate per query row (rows whose
    best is zero are omitted, as the hardware skips them).  Feeds the
    near-best machinery of :func:`repro.align.near_best.lane_candidates`.
    """
    from .systolic import LaneBest

    s_codes = encode(s)
    t_codes = encode(t)
    m, n = len(s_codes), len(t_codes)
    lanes: list[LaneBest] = []
    if m == 0 or n == 0:
        return lanes
    gap = scheme.gap
    offsets = gap * np.arange(1, n + 1, dtype=np.int64)
    prev = np.zeros(n + 1, dtype=np.int64)
    cur = np.zeros(n + 1, dtype=np.int64)
    for i in range(1, m + 1):
        pair_row = scheme.pair_vector(int(s_codes[i - 1]), t_codes)
        h = np.maximum(prev[:-1] + pair_row, prev[1:] + gap)
        np.maximum(h, 0, out=h)
        cur[0] = 0
        cur[1:] = np.maximum.accumulate(h - offsets) + offsets
        j = int(np.argmax(cur[1:])) + 1
        score = int(cur[j])
        if score > 0:
            lanes.append(LaneBest(row=i, score=score, cycle=j + i - 1, column=j))
        prev, cur = cur, prev
    return lanes
