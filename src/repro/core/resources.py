"""FPGA resource and frequency model — reproduces Table 2.

Table 2 of the paper reports the ISE synthesis results of the
100-element prototype on the xc2vp70:

=========  ======  =========  ====  ====  =====  =========
Elements   Slices  Flipflops  LUTs  IOBs  GCLKs  Frequency
=========  ======  =========  ====  ====  =====  =========
100        47%     25%        65%   7%    1      144.9 MHz
=========  ======  =========  ====  ====  =====  =========

We cannot run ISE, so the model is the standard architectural
estimate: resources are affine in the element count, ``total(N) =
controller + N * per_element``, with the coefficients **calibrated so
the N = 100 point reproduces the paper's percentages exactly** on the
xc2vp70 capacities (DESIGN.md substitution table).  The model then
*predicts* other array sizes — the quantity the paper itself argues
from ("there is space to add much more elements", figure 8) — and the
A2 ablation sweeps it to find the device's capacity limit.

The per-element LUT/FF coefficients are 2-3x what a hand-mapped
datapath of figure 6 needs (see :mod:`repro.core.datapath`); that gap
is the overhead of the Forte/Cynthesizer high-level-synthesis flow the
paper uses, and a test pins the ratio so the two models stay mutually
consistent.

Frequency: the post-place-and-route clock degrades as the die fills
(longer routes).  We model the period as ``P(N) = P0 * (1 + beta *
slice_utilization(N))`` with ``beta = 0.25`` and ``P0`` calibrated so
``f(100) = 144.9 MHz``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.device import XC2VP70, FPGADevice, ResourceVector

__all__ = ["ResourceModel", "PROTOTYPE_MODEL", "protein_resource_model"]

#: Calibration targets from Table 2 (fractions of xc2vp70 capacity).
TABLE2_UTILIZATION = {
    "slices": 0.47,
    "flipflops": 0.25,
    "luts": 0.65,
    "iobs": 0.07,
}
TABLE2_ELEMENTS = 100
TABLE2_FREQUENCY_MHZ = 144.9


@dataclass(frozen=True)
class ResourceModel:
    """Affine resource model ``total(N) = controller + N * per_element``.

    Defaults are calibrated to Table 2 at N = 100 on the xc2vp70 (the
    class-level doc shows the arithmetic); a unit test recomputes the
    calibration from the device capacities to guard against drift.
    """

    # 0.47 * 33088 slices = 15551 = 551 + 100 * 150
    # 0.25 * 66176 FFs    = 16544 = 544 + 100 * 160
    # 0.65 * 66176 LUTs   = 43014 = 614 + 100 * 424
    # 0.07 * 996 IOBs     =    70 (host/SRAM interface; N-independent)
    per_element: ResourceVector = ResourceVector(
        slices=150, flipflops=160, luts=424, iobs=0, gclks=0
    )
    controller: ResourceVector = ResourceVector(
        slices=551, flipflops=544, luts=614, iobs=70, gclks=1
    )
    base_period_ns: float = 6.176  # P0: (1/144.9 MHz) / (1 + 0.25 * 0.47)
    routing_beta: float = 0.25
    device: FPGADevice = field(default=XC2VP70)

    def estimate(self, n_elements: int) -> ResourceVector:
        """Resources of an ``n_elements`` array plus controller."""
        if n_elements < 1:
            raise ValueError(f"need at least one element, got {n_elements}")
        return self.controller + self.per_element.scale(n_elements)

    def utilization(self, n_elements: int) -> dict[str, float]:
        """Fractional device utilization per resource class."""
        return self.device.utilization(self.estimate(n_elements))

    def fits(self, n_elements: int) -> bool:
        """Does the design place on the device?"""
        return self.device.fits(self.estimate(n_elements))

    def max_elements(self) -> int:
        """Largest array the device can hold (binary search).

        With the calibrated coefficients the xc2vp70 tops out around
        150 elements (LUTs saturate first at 65% for 100) — the
        quantitative version of the paper's "space to add much more
        elements" remark.
        """
        lo, hi = 1, 2
        while self.fits(hi):
            lo, hi = hi, hi * 2
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.fits(mid):
                lo = mid
            else:
                hi = mid
        return lo

    def binding_resource(self, n_elements: int) -> str:
        """Which resource class saturates first at this size."""
        util = self.utilization(n_elements)
        return max(util, key=lambda k: util[k])

    def frequency_mhz(self, n_elements: int) -> float:
        """Predicted post-PAR clock for an ``n_elements`` array."""
        util = self.utilization(n_elements)["slices"]
        period_ns = self.base_period_ns * (1.0 + self.routing_beta * util)
        return 1e3 / period_ns

    def table2(self, n_elements: int = TABLE2_ELEMENTS) -> dict[str, object]:
        """The Table 2 row for a given array size.

        At the default 100 elements this reproduces the paper's row;
        other sizes are the model's predictions (benchmark T2/A2).
        """
        used = self.estimate(n_elements)
        util = self.utilization(n_elements)
        return {
            "elements": n_elements,
            "slices": used.slices,
            "slices_pct": round(util["slices"] * 100),
            "flipflops": used.flipflops,
            "flipflops_pct": round(util["flipflops"] * 100),
            "luts": used.luts,
            "luts_pct": round(util["luts"] * 100),
            "iobs": used.iobs,
            "iobs_pct": round(util["iobs"] * 100),
            "gclks": used.gclks,
            "frequency_mhz": round(self.frequency_mhz(n_elements), 1),
        }


#: The calibrated model of the paper's prototype.
PROTOTYPE_MODEL = ResourceModel()


def protein_resource_model(
    alphabet_size: int = 20, score_bits: int = 10
) -> ResourceModel:
    """Element area for protein comparison (SAMBA/PROSIDIS territory).

    The DNA element compares 2-bit bases and muxes two constants
    (Co/Su); a protein element must look up a full substitution row —
    ``alphabet_size^2`` entries of ``score_bits`` each, held in block
    RAM (4 kbit for BLOSUM62, well within one 18 kbit block) — and
    carries 5-bit residue registers.  Charged per element: one BRAM
    lookup (dual-ported blocks serve two elements, so half a block
    each), +6 FFs of wider residue registers, +20 LUTs of address
    formation.
    """
    if alphabet_size < 2 or score_bits < 2:
        raise ValueError("need a real alphabet and score width")
    base = ResourceModel()
    per = base.per_element
    table_kbits = max(1, (alphabet_size * alphabet_size * score_bits + 1023) // 1024)
    return ResourceModel(
        per_element=ResourceVector(
            slices=per.slices + 13,
            flipflops=per.flipflops + 6,
            luts=per.luts + 20,
            iobs=per.iobs,
            gclks=per.gclks,
            bram_kbits=(table_kbits + 1) // 2,  # dual-ported sharing
        ),
        controller=base.controller,
        base_period_ns=base.base_period_ns * 1.05,  # BRAM access in path
        routing_beta=base.routing_beta,
        device=base.device,
    )
