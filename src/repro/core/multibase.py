"""Multi-base-per-element design variant (section 4's [12]/[2]).

Section 4 describes the alternative to query partitioning: "some
designs like [12] avoid this problem by putting many query bases on
the same computing element.  The drawback of this approach is that to
put more bases at each cell requires more registers per element and
thus decreases the maximum number of computing elements"; the [2]
design holds up to 4 bases per element.

This module models that corner of the design space on our framework:

* **function** — an element holding ``b`` bases time-multiplexes ``b``
  matrix rows, visiting them once each per anti-diagonal step; the
  result is *identical* to the partitioned single-base array (the
  emulator proves it by construction — both are exact);
* **timing** — the array advances one anti-diagonal every ``b``
  clocks, so a pass costs ``b*n + b*N - 1`` clocks but covers ``b*N``
  query rows at once: against partitioning it trades nothing in cell
  throughput and wins by eliminating per-pass query reloads and the
  off-element boundary-row traffic;
* **area** — each element adds ``b-1`` base registers and ``b-1``
  score-row registers (the per-row ``A``/``B`` state), shrinking the
  maximum element count — the "drawback" quantified.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from ..align.scoring import DEFAULT_DNA, LinearScoring, SubstitutionMatrix
from ..align.smith_waterman import LocalHit
from ..hw.device import ResourceVector
from .datapath import BASE_WIDTH, SCORE_WIDTH
from .emulator import emulate_partitioned
from .resources import ResourceModel
from .timing import ClockModel, IDEAL_CLOCK

__all__ = ["MultiBaseDesign"]


@dataclass(frozen=True)
class MultiBaseDesign:
    """An array of ``elements`` elements, each holding ``bases_per_element``
    query bases.

    ``query_capacity`` rows fit without partitioning; longer queries
    still partition in chunks of the capacity (both mechanisms
    compose, as in [2] where the 4-base elements are combined with
    database splitting).
    """

    elements: int = 100
    bases_per_element: int = 1
    scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA
    clock: ClockModel = IDEAL_CLOCK

    def __post_init__(self) -> None:
        if self.elements < 1:
            raise ValueError("need at least one element")
        if self.bases_per_element < 1:
            raise ValueError("need at least one base per element")

    @property
    def query_capacity(self) -> int:
        """Query rows held on-array without partitioning."""
        return self.elements * self.bases_per_element

    # ------------------------------------------------------------------
    # Function
    # ------------------------------------------------------------------
    def locate(
        self,
        s: str,
        t: str,
        scheme: LinearScoring | SubstitutionMatrix | None = None,
    ) -> LocalHit:
        """Best score + coordinates; identical to every other engine.

        Functionally the multiplexed array computes the same chunked
        recurrence as a ``query_capacity``-element array, so the
        emulator is reused with that chunk size (partitioning only
        engages beyond the capacity).
        """
        if scheme is not None and scheme != self.scheme:
            raise ValueError("design was configured with a different scoring scheme")
        return emulate_partitioned(s, t, self.query_capacity, self.scheme).hit

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def pass_clocks(self, chunk_rows: int, n: int) -> int:
        """Clocks for one pass over ``n`` database bases.

        The wavefront advances every ``b`` clocks (each element
        touches its ``b`` rows sequentially), and the pipe is
        ``ceil(chunk_rows / b)`` elements long.
        """
        if n == 0 or chunk_rows == 0:
            return 0
        b = self.bases_per_element
        pipe = ceil(chunk_rows / b)
        return b * n + b * (pipe - 1)

    def run_clocks(self, m: int, n: int) -> int:
        """Clocks for a whole (possibly partitioned) query."""
        capacity = self.query_capacity
        total = 0
        remaining = m
        while remaining > 0:
            chunk = min(capacity, remaining)
            total += self.pass_clocks(chunk, n)
            remaining -= chunk
        return total

    def run_seconds(self, m: int, n: int) -> float:
        return self.clock.seconds(self.run_clocks(m, n))

    def passes(self, m: int) -> int:
        return ceil(m / self.query_capacity) if m else 0

    # ------------------------------------------------------------------
    # Area
    # ------------------------------------------------------------------
    def resource_model(self) -> ResourceModel:
        """Per-element area grown by the extra per-row state.

        Each additional base needs: its base register, plus an extra
        ``A``/``B`` score pair for that row's recurrence state — the
        "more registers per element" of section 4.
        """
        base = ResourceModel()
        extra_rows = self.bases_per_element - 1
        extra_ffs = extra_rows * (BASE_WIDTH + 2 * SCORE_WIDTH)
        per = base.per_element
        return ResourceModel(
            per_element=ResourceVector(
                slices=per.slices + extra_ffs // 2,
                flipflops=per.flipflops + extra_ffs,
                luts=per.luts + extra_rows * 8,  # row-select muxing
                iobs=per.iobs,
                gclks=per.gclks,
            ),
            controller=base.controller,
            base_period_ns=base.base_period_ns,
            routing_beta=base.routing_beta,
            device=base.device,
        )

    def max_elements_on_device(self) -> int:
        return self.resource_model().max_elements()
