"""Register-width analysis: how many bits the element datapath needs.

The related work fixes widths by fiat (SAMBA: "128 processors of 12
bits", section 4); a width that is too small silently wraps scores
and corrupts results.  This module derives the required widths from
first principles and provides a wrap-around checker the verification
suite uses to demonstrate that an under-provisioned datapath is
actually caught by the test harness.

Bounds (linear scheme, local alignment):

* a cell score is at most ``min(chunk_rows, n) * match`` (a perfect
  diagonal run is the only way to grow) — but with query partitioning
  the boundary row carries scores from earlier chunks, so the bound is
  ``min(m, n) * match`` for the *whole* query;
* scores are never negative (zero clamp), so an unsigned register of
  ``ceil(log2(bound + 1))`` bits suffices; one headroom bit covers the
  pre-clamp intermediate ``max(B, C) + gap``... which is bounded below
  by ``-|gap|`` — hence signed arithmetic with one extra bit;
* the cycle counter must count to ``n + N - 1``.
"""

from __future__ import annotations

from math import ceil, log2

import numpy as np

from ..align.scoring import LinearScoring, SubstitutionMatrix, encode
from ..align.smith_waterman import LocalHit

__all__ = [
    "max_possible_score",
    "required_score_width",
    "required_cycle_width",
    "locate_with_width",
]


def max_possible_score(
    query_length: int,
    database_length: int,
    scheme: LinearScoring | SubstitutionMatrix,
) -> int:
    """Tight upper bound on any cell of the similarity matrix."""
    if query_length < 0 or database_length < 0:
        raise ValueError("lengths cannot be negative")
    per_pair = (
        scheme.match if isinstance(scheme, LinearScoring) else scheme.max_score()
    )
    return min(query_length, database_length) * max(per_pair, 0)


def required_score_width(
    query_length: int,
    database_length: int,
    scheme: LinearScoring | SubstitutionMatrix,
) -> int:
    """Bits of the signed score registers (A, B, Bs, and the wires).

    One sign bit (pre-clamp intermediates go below zero by at most
    ``|gap|``) plus enough magnitude bits for the maximum score.
    """
    bound = max_possible_score(query_length, database_length, scheme)
    magnitude = max(bound, abs(scheme.gap))
    return 1 + max(1, ceil(log2(magnitude + 1)))


def required_cycle_width(database_length: int, elements: int) -> int:
    """Bits of the Cl/Bc cycle registers: count to ``n + N - 1``."""
    if database_length < 0 or elements < 1:
        raise ValueError("need non-negative n and at least one element")
    last_cycle = max(1, database_length + elements - 1)
    return max(1, ceil(log2(last_cycle + 1)))


def locate_with_width(
    s: str,
    t: str,
    width_bits: int,
    scheme: LinearScoring | None = None,
) -> LocalHit:
    """The locate computation with ``width_bits`` wrapping registers.

    Simulates what an under-provisioned datapath computes: every
    score register and wire wraps modulo ``2**width_bits`` (two's
    complement).  With sufficient width this equals the exact kernel;
    with insufficient width it visibly corrupts results — both facts
    are asserted by the width tests, demonstrating that the repo's
    oracle cross-checks detect datapath sizing bugs.
    """
    if width_bits < 2 or width_bits > 62:
        raise ValueError(f"width must be in [2, 62] bits, got {width_bits}")
    if scheme is None:
        scheme = LinearScoring()
    s_codes = encode(s)
    t_codes = encode(t)
    m, n = len(s_codes), len(t_codes)
    if m == 0 or n == 0:
        return LocalHit(0, 0, 0)
    modulus = 1 << width_bits
    half = modulus >> 1

    def wrap(x: np.ndarray) -> np.ndarray:
        return (x + half) % modulus - half

    gap = scheme.gap
    prev = np.zeros(n + 1, dtype=np.int64)
    cur = np.zeros(n + 1, dtype=np.int64)
    best = LocalHit(0, 0, 0)
    for i in range(1, m + 1):
        pair_row = scheme.pair_vector(int(s_codes[i - 1]), t_codes)
        for j in range(1, n + 1):
            diag = wrap(np.int64(prev[j - 1] + pair_row[j - 1]))
            up = wrap(np.int64(prev[j] + gap))
            left = wrap(np.int64(cur[j - 1] + gap))
            v = max(int(diag), int(up), int(left), 0)
            cur[j] = v
            if v > best.score:
                best = LocalHit(int(v), i, j)
        prev, cur = cur, prev
        cur[:] = 0
    return best
