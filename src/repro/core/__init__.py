"""The paper's contribution: the reconfigurable SW-locate accelerator.

* :class:`~repro.core.pe.ProcessingElement` — register-transfer model
  of one systolic element (figure 6);
* :class:`~repro.core.systolic.SystolicArray` — the clocked array
  (figure 5) with boundary-row chaining (figure 7);
* :class:`~repro.core.controller.BestScoreController` — global best
  reduction and coordinate recovery (figure 9);
* :mod:`~repro.core.partition` / :mod:`~repro.core.timing` — the exact
  cycle model;
* :mod:`~repro.core.emulator` — bit-exact NumPy emulation of the
  partitioned dataflow;
* :class:`~repro.core.accelerator.SWAccelerator` — the public driver
  that plugs into the section 2.3 software pipeline;
* :mod:`~repro.core.resources` / :mod:`~repro.core.datapath` — the
  Table 2 resource/frequency models.
"""

from .accelerator import RESULT_BYTES, AcceleratorRun, SWAccelerator
from .affine import (
    AffineAccelerator,
    AffineProcessingElement,
    AffineSystolicArray,
    affine_resource_model,
    affine_row_sweep,
    emulate_affine_partitioned,
)
from .controller import BestScoreController
from .loading import LoadCostModel, QueryLoadMode
from .multibase import MultiBaseDesign
from .verification import (
    CampaignReport,
    fault_campaign,
    inject_fault,
    random_vector_campaign,
    run_vector,
)
from .waveform import WaveformRecorder, parse_vcd_changes, record_pass, write_vcd
from .widths import (
    locate_with_width,
    max_possible_score,
    required_cycle_width,
    required_score_width,
)
from .datapath import (
    build_pe_datapath,
    critical_path,
    fmax_mhz,
    netlist_summary,
    pe_resource_counts,
)
from .emulator import EmulatorResult, emulate_partitioned, lane_readout
from .partition import PartitionPlan, QueryChunk, plan_partition
from .pe import PEOutput, ProcessingElement
from .resources import PROTOTYPE_MODEL, ResourceModel, protein_resource_model
from .segmented import SegmentedRun, max_database_extent, run_segmented
from .systolic import LaneBest, PassResult, SystolicArray
from .timing import (
    IDEAL_CLOCK,
    PAPER_CLOCK,
    PAPER_FPGA_SECONDS,
    PAPER_SOFTWARE_SECONDS,
    PAPER_SPEEDUP,
    ClockModel,
    RunTiming,
    estimate_run,
)

__all__ = [
    "SWAccelerator",
    "AcceleratorRun",
    "RESULT_BYTES",
    "AffineAccelerator",
    "AffineProcessingElement",
    "AffineSystolicArray",
    "affine_resource_model",
    "affine_row_sweep",
    "emulate_affine_partitioned",
    "LoadCostModel",
    "QueryLoadMode",
    "MultiBaseDesign",
    "CampaignReport",
    "fault_campaign",
    "inject_fault",
    "random_vector_campaign",
    "run_vector",
    "WaveformRecorder",
    "record_pass",
    "write_vcd",
    "parse_vcd_changes",
    "locate_with_width",
    "max_possible_score",
    "required_cycle_width",
    "required_score_width",
    "BestScoreController",
    "SystolicArray",
    "LaneBest",
    "PassResult",
    "ProcessingElement",
    "PEOutput",
    "PartitionPlan",
    "QueryChunk",
    "plan_partition",
    "EmulatorResult",
    "emulate_partitioned",
    "lane_readout",
    "SegmentedRun",
    "max_database_extent",
    "run_segmented",
    "ResourceModel",
    "PROTOTYPE_MODEL",
    "protein_resource_model",
    "ClockModel",
    "RunTiming",
    "estimate_run",
    "IDEAL_CLOCK",
    "PAPER_CLOCK",
    "PAPER_SPEEDUP",
    "PAPER_FPGA_SECONDS",
    "PAPER_SOFTWARE_SECONDS",
    "build_pe_datapath",
    "critical_path",
    "fmax_mhz",
    "pe_resource_counts",
    "netlist_summary",
]
