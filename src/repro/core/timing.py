"""Clock and throughput model for the simulated accelerator.

The paper's performance claim (section 6) has three ingredients:

* the **clock count** of a run — exact, reproduced cycle-for-cycle by
  the simulator and by :meth:`repro.core.partition.PartitionPlan.total_cycles`;
* the **clock rate** — 144.9 MHz reported by ISE for the 100-element
  prototype on the xc2vp70;
* the **cycles per wavefront step** — how many clocks the synthesized
  datapath needs to advance the anti-diagonal by one.  An ideally
  pipelined systolic cell takes 1; the paper's Forte/Cynthesizer-
  generated circuit is slower.  We derive the effective value from the
  paper's own numbers: 10 MBP x 100 BP = 1e9 cells in ~0.84 s at
  144.9 MHz with 100 elements gives

      ``cycles_per_step = 0.839 * 144.9e6 / (1e7 + 99) ~= 12.16``

  (reported time back-computed from the stated 246.9x speedup over a
  software run of "more than 3 minutes").  :data:`PAPER_CLOCK` uses
  this calibrated value so the headline experiment reproduces the
  paper's wall-clock; :data:`IDEAL_CLOCK` uses 1 for the architecture
  the figures describe.  Both are exposed so the E1 benchmark can show
  the ideal/effective gap explicitly.

Throughput is quoted in CUPS (cell updates per second), the metric the
paper uses to compare FPGA designs — with its caveat (section 4) that
only architectures doing the same per-cell work compare fairly.
"""

from __future__ import annotations

from dataclasses import dataclass

from .partition import PartitionPlan, plan_partition

__all__ = [
    "ClockModel",
    "RunTiming",
    "IDEAL_CLOCK",
    "PAPER_CLOCK",
    "PAPER_SOFTWARE_SECONDS",
    "PAPER_FPGA_SECONDS",
    "PAPER_SPEEDUP",
    "estimate_run",
]

#: Section 6: the optimized C program on a 3 GHz Pentium 4, 10 MBP x
#: 100 BP ("more than 3 minutes"; back-computed from the 246.9x
#: speedup and the FPGA time below).
PAPER_SOFTWARE_SECONDS = 207.1

#: Section 6: the 100-element xc2vp70 prototype on the same workload
#: ("less than 1 second").
PAPER_FPGA_SECONDS = 0.8388

#: Abstract & section 6: the headline speedup.
PAPER_SPEEDUP = 246.9


@dataclass(frozen=True)
class ClockModel:
    """Clock rate plus per-step cost of the synthesized datapath.

    ``frequency_mhz`` is the ISE-reported operating frequency;
    ``cycles_per_step`` the clocks needed per wavefront advance
    (1 = fully pipelined; the paper's generated circuit is ~12).
    """

    frequency_mhz: float = 144.9
    cycles_per_step: float = 1.0

    def __post_init__(self) -> None:
        if self.frequency_mhz <= 0:
            raise ValueError(f"frequency must be positive, got {self.frequency_mhz}")
        if self.cycles_per_step < 1:
            raise ValueError(
                f"cycles_per_step cannot beat one clock per step, got {self.cycles_per_step}"
            )

    def seconds(self, steps: int) -> float:
        """Wall-clock for ``steps`` wavefront advances."""
        return steps * self.cycles_per_step / (self.frequency_mhz * 1e6)


#: The architecture as drawn (one anti-diagonal per clock).
IDEAL_CLOCK = ClockModel(frequency_mhz=144.9, cycles_per_step=1.0)

#: Calibrated to the paper's reported wall-clock (see module docs).
PAPER_CLOCK = ClockModel(frequency_mhz=144.9, cycles_per_step=12.16)


@dataclass(frozen=True)
class RunTiming:
    """Predicted timing of one accelerator run.

    ``steps`` counts wavefront advances (the simulator's clock count
    at ``cycles_per_step = 1``); ``load_steps`` the query-load clocks
    (one per base per pass, the register-chain load the paper
    contrasts with JBits reconfiguration); ``readout_steps`` the
    per-pass lane readout (one clock per element).
    """

    plan: PartitionPlan
    clock: ClockModel
    steps: int
    load_steps: int
    readout_steps: int

    @property
    def total_steps(self) -> int:
        return self.steps + self.load_steps + self.readout_steps

    @property
    def compute_seconds(self) -> float:
        return self.clock.seconds(self.steps)

    @property
    def overhead_seconds(self) -> float:
        return self.clock.seconds(self.load_steps + self.readout_steps)

    @property
    def total_seconds(self) -> float:
        return self.clock.seconds(self.total_steps)

    @property
    def cells(self) -> int:
        return self.plan.total_cells()

    @property
    def cups(self) -> float:
        """Cell updates per second (0.0 for an empty run)."""
        seconds = self.total_seconds
        return self.cells / seconds if seconds > 0 else 0.0

    @property
    def gcups(self) -> float:
        return self.cups / 1e9


def estimate_run(
    query_length: int,
    database_length: int,
    array_size: int = 100,
    clock: ClockModel = IDEAL_CLOCK,
) -> RunTiming:
    """Analytic timing of a (possibly partitioned) accelerator run.

    The ``steps`` term is exact — the property tests pin it to the RTL
    simulator's cycle counter; load/readout are the documented linear
    overheads.  Use ``clock=PAPER_CLOCK`` to predict the prototype's
    wall-clock (experiment E1) and the default ideal clock for the
    architectural numbers.
    """
    plan = plan_partition(query_length, database_length, array_size)
    steps = plan.total_cycles()
    load_steps = sum(c.length for c in plan.chunks)
    readout_steps = plan.passes * array_size
    return RunTiming(
        plan=plan,
        clock=clock,
        steps=steps,
        load_steps=load_steps,
        readout_steps=readout_steps,
    )
