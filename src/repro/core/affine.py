"""Affine-gap systolic variant (the design space of [2]/[32]).

The paper's own datapath carries a single ``In/Re`` gap constant — a
*linear* gap model.  The closest Table 1 competitor (Anish's XC2V6000
design) implements Gotoh's **affine** model ``g(k) = open +
(k-1) * extend`` in hardware; this module builds that variant on the
same simulation framework, both to reproduce that row of the design
space and to quantify what the affine capability costs in registers
and datapath (the trade-off section 4 alludes to when it discusses
register pressure per element).

Cell recurrence per element ``k`` (query row ``k``), column ``j``:

    ``E[k, j] = max(D[k, j-1] + open, E[k, j-1] + extend)``   (own-row run)
    ``F[k, j] = max(D[k-1, j] + open, F[k-1, j] + extend)``   (from the left)
    ``D[k, j] = max(0, D[k-1, j-1] + subst, E[k, j], F[k, j])``

``E`` lives entirely inside the element (it consumes the element's own
previous ``D`` and ``E``); ``F`` pipelines down the array exactly like
the cell score, so the inter-element wire widens from one score to two
— the concrete area cost measured by :func:`affine_resource_model`.

Query partitioning needs a **two-row boundary** between chunks (the
``D`` row and the ``F`` row), which is why the paper's linear design
stores half as much inter-chunk state; :func:`affine_row_sweep`
implements the chunked functional semantics and the RTL model is
pinned to it by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..align.scoring import AffineScoring, encode
from ..align.smith_waterman import LocalHit
from ..hw.device import ResourceVector
from .controller import BestScoreController
from .partition import plan_partition
from .resources import ResourceModel
from .systolic import LaneBest

__all__ = [
    "AffinePEOutput",
    "AffineProcessingElement",
    "AffineSystolicArray",
    "affine_row_sweep",
    "emulate_affine_partitioned",
    "AffineAccelerator",
    "affine_resource_model",
]

_NEG = -(1 << 40)


@dataclass(frozen=True)
class AffinePEOutput:
    """Registered outputs: cell score ``D``, gap-run score ``F``, base."""

    score: int = 0
    f: int = _NEG
    base: int = 0
    valid: bool = False


@dataclass
class AffineProcessingElement:
    """One affine-gap element: the linear element plus ``E``/``F`` state.

    Register set: the linear design's ``SP``/``A``/``B``/``Bs``/``Cl``
    /``Bc`` plus ``E`` (own gap run) and ``Af`` (the delayed ``F``
    input, mirroring how ``A`` delays ``C``) — two extra score-wide
    registers and two extra adders per element.
    """

    index: int
    scheme: AffineScoring
    sp: int | None = None
    a: int = 0  # D[k-1, j-1]
    b: int = 0  # D[k, j-1]
    e: int = _NEG  # E[k, j-1]
    bs: int = 0
    cl: int = 0
    bc: int = 0
    cells_computed: int = 0

    def load(self, base: int | None) -> None:
        """Fix a query base and clear all state (query-load phase)."""
        self.sp = base
        self.a = 0
        self.b = 0
        self.e = _NEG
        self.bs = 0
        self.cl = 0
        self.bc = 0
        self.cells_computed = 0

    def step(self, left: AffinePEOutput, cycle: int) -> AffinePEOutput:
        """Advance one clock (same handshake as the linear element)."""
        if not left.valid or self.sp is None:
            return AffinePEOutput()
        open_, ext = self.scheme.gap_open, self.scheme.gap_extend
        # E: horizontal run inside this element's row.
        e_new = max(self.b + open_, self.e + ext)
        # F: vertical run arriving from the left neighbour.
        f_new = max(left.score + open_, left.f + ext)
        diag = self.a + self.scheme.pair(self.sp, left.base)
        d = max(0, diag, e_new, f_new)
        self.cl = cycle
        self.cells_computed += 1
        if d > self.bs:
            self.bs = d
            self.bc = cycle
        self.a = left.score
        self.b = d
        self.e = e_new
        return AffinePEOutput(score=d, f=f_new, base=left.base, valid=True)

    def lane_column(self) -> int:
        return self.bc - self.index + 1


class AffineSystolicArray:
    """Linear pipe of affine elements; same pass protocol as the
    linear array, with a two-row (D, F) boundary for chunking."""

    def __init__(self, n_elements: int, scheme: AffineScoring) -> None:
        if n_elements < 1:
            raise ValueError(f"array needs at least one element, got {n_elements}")
        self.n_elements = n_elements
        self.scheme = scheme
        self.elements = [
            AffineProcessingElement(index=k + 1, scheme=scheme)
            for k in range(n_elements)
        ]
        self._loaded_rows = 0
        self._row_offset = 0

    def load_query(self, chunk: str | bytes | np.ndarray, row_offset: int = 0) -> None:
        codes = encode(chunk)
        if len(codes) > self.n_elements:
            raise ValueError(
                f"query chunk of {len(codes)} exceeds array size {self.n_elements}"
            )
        for k, element in enumerate(self.elements):
            element.load(int(codes[k]) if k < len(codes) else None)
        self._loaded_rows = len(codes)
        self._row_offset = row_offset

    def run_pass(
        self,
        database: str | bytes | np.ndarray,
        boundary_d: np.ndarray | None = None,
        boundary_f: np.ndarray | None = None,
    ) -> tuple[list[LaneBest], np.ndarray, np.ndarray, int]:
        """Stream a segment; returns (lane bests, D row, F row, cycles)."""
        if self._loaded_rows == 0:
            raise RuntimeError("no query chunk loaded; call load_query() first")
        # Fresh pass: clear dynamic element state (see the linear
        # array's run_pass for the rationale).
        for element in self.elements[: self._loaded_rows]:
            element.load(element.sp)
        db_codes = encode(database)
        n = len(db_codes)
        if boundary_d is None:
            boundary_d = np.zeros(n + 1, dtype=np.int64)
        if boundary_f is None:
            boundary_f = np.full(n + 1, _NEG, dtype=np.int64)
        if boundary_d.shape != (n + 1,) or boundary_f.shape != (n + 1,):
            raise ValueError(f"boundary rows must have length {n + 1}")
        n_active = self._loaded_rows
        total_cycles = n + n_active - 1 if n > 0 else 0
        wires: list[AffinePEOutput] = [AffinePEOutput() for _ in range(self.n_elements + 1)]
        out_d = np.zeros(n + 1, dtype=np.int64)
        out_f = np.full(n + 1, _NEG, dtype=np.int64)
        for cycle in range(1, total_cycles + 1):
            if cycle <= n:
                feed = AffinePEOutput(
                    score=int(boundary_d[cycle]),
                    f=int(boundary_f[cycle]),
                    base=int(db_codes[cycle - 1]),
                    valid=True,
                )
            else:
                feed = AffinePEOutput()
            new_wires = [feed]
            for k, element in enumerate(self.elements[:n_active]):
                new_wires.append(element.step(wires[k] if k else feed, cycle))
            new_wires.extend(
                AffinePEOutput() for _ in range(self.n_elements - n_active)
            )
            wires = new_wires
            j = cycle - n_active + 1
            if 1 <= j <= n:
                out_d[j] = wires[n_active].score
                out_f[j] = wires[n_active].f
        lane_bests = [
            LaneBest(
                row=self._row_offset + el.index,
                score=el.bs,
                cycle=el.bc,
                column=el.lane_column(),
            )
            for el in self.elements[:n_active]
            if el.bs > 0
        ]
        return lane_bests, out_d, out_f, total_cycles


def affine_row_sweep(
    s_codes: np.ndarray,
    t_codes: np.ndarray,
    scheme: AffineScoring,
    initial_d: np.ndarray | None = None,
    initial_f: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, LocalHit]:
    """Vectorized affine local sweep with (D, F) boundary chaining.

    The functional counterpart of :class:`AffineSystolicArray` — the
    same chunked semantics at NumPy speed, pinned bit-exact by tests.
    Returns ``(last_D_row, last_F_row, best-within-sweep)``.
    """
    m, n = len(s_codes), len(t_codes)
    open_, ext = scheme.gap_open, scheme.gap_extend
    prev_d = (
        np.zeros(n + 1, dtype=np.int64)
        if initial_d is None
        else np.asarray(initial_d, dtype=np.int64).copy()
    )
    prev_f = (
        np.full(n + 1, _NEG, dtype=np.int64)
        if initial_f is None
        else np.asarray(initial_f, dtype=np.int64).copy()
    )
    if prev_d.shape != (n + 1,) or prev_f.shape != (n + 1,):
        raise ValueError(f"boundary rows must have length {n + 1}")
    best = LocalHit(0, 0, 0)
    k_steps = ext * np.arange(0, n + 1, dtype=np.int64)
    hk = np.empty(n + 1, dtype=np.int64)
    for i in range(1, m + 1):
        pair_row = scheme.pair_vector(int(s_codes[i - 1]), t_codes)
        f = np.maximum(prev_d + open_, prev_f + ext)
        h = np.maximum(prev_d[:-1] + pair_row, f[1:])
        np.maximum(h, 0, out=h)
        hk[0] = 0
        hk[1:] = h
        cum = np.maximum.accumulate(hk - k_steps)
        d = np.empty(n + 1, dtype=np.int64)
        d[0] = 0
        d[1:] = np.maximum(h, cum[:-1] + open_ + k_steps[:-1])
        row_best_j = int(np.argmax(d[1:])) + 1 if n else 0
        row_best = int(d[row_best_j]) if n else 0
        if row_best > best.score:
            best = LocalHit(row_best, i, row_best_j)
        prev_d, prev_f = d, f
    return prev_d, prev_f, best


def emulate_affine_partitioned(
    s: str | np.ndarray,
    t: str | np.ndarray,
    array_size: int,
    scheme: AffineScoring,
) -> LocalHit:
    """Chunked affine locate — the figure-7 dataflow for affine gaps."""
    s_codes = encode(s)
    t_codes = encode(t)
    m, n = len(s_codes), len(t_codes)
    if m == 0 or n == 0:
        return LocalHit(0, 0, 0)
    plan = plan_partition(m, n, array_size)
    boundary_d: np.ndarray | None = None
    boundary_f: np.ndarray | None = None
    best = LocalHit(0, 0, 0)
    for chunk in plan.chunks:
        boundary_d, boundary_f, chunk_hit = affine_row_sweep(
            s_codes[chunk.start : chunk.end],
            t_codes,
            scheme,
            initial_d=boundary_d,
            initial_f=boundary_f,
        )
        if chunk_hit.score > best.score:
            best = LocalHit(chunk_hit.score, chunk.row_offset + chunk_hit.i, chunk_hit.j)
    return best


class AffineAccelerator:
    """Driver for the affine variant (RTL or emulator engine).

    Mirrors :class:`~repro.core.accelerator.SWAccelerator` for the
    affine cell; its ``locate`` satisfies the same protocol, so the
    affine hardware slots into affine software pipelines identically.
    """

    def __init__(
        self,
        elements: int = 100,
        scheme: AffineScoring | None = None,
        engine: str = "emulator",
    ) -> None:
        if engine not in ("emulator", "rtl"):
            raise ValueError(f"unknown engine {engine!r}")
        if elements < 1:
            raise ValueError("need at least one element")
        self.elements = elements
        self.scheme = scheme if scheme is not None else AffineScoring()
        self.engine = engine

    def locate(
        self, s: str, t: str, scheme: AffineScoring | None = None
    ) -> LocalHit:
        if scheme is not None and scheme != self.scheme:
            raise ValueError(
                "accelerator was configured with a different scoring scheme"
            )
        q_codes = encode(s)
        d_codes = encode(t)
        if len(q_codes) == 0 or len(d_codes) == 0:
            return LocalHit(0, 0, 0)
        if self.engine == "emulator":
            return emulate_affine_partitioned(q_codes, d_codes, self.elements, self.scheme)
        plan = plan_partition(len(q_codes), len(d_codes), self.elements)
        array = AffineSystolicArray(self.elements, self.scheme)
        controller = BestScoreController()
        boundary_d = boundary_f = None
        for chunk in plan.chunks:
            array.load_query(q_codes[chunk.start : chunk.end], row_offset=chunk.row_offset)
            lanes, boundary_d, boundary_f, _ = array.run_pass(
                d_codes, boundary_d=boundary_d, boundary_f=boundary_f
            )
            controller.consider_pass(lanes)
        return controller.hit()


def affine_resource_model() -> ResourceModel:
    """Resource model of the affine element on the same device.

    Versus the linear element: +2 score-wide registers (``E`` and the
    pipelined ``F``), +2 adders and +1 comparator in the datapath, and
    a second score crossing every inter-element boundary.  Charged as
    +48 FFs / +96 LUTs / +34 slices per element — the affine variant
    therefore tops out at ~120 elements on the xc2vp70 where the
    linear design reaches 154 (the capacity cost of affine gaps, A2b).
    """
    base = ResourceModel()
    per = base.per_element
    return ResourceModel(
        per_element=ResourceVector(
            slices=per.slices + 34,
            flipflops=per.flipflops + 48,
            luts=per.luts + 96,
            iobs=per.iobs,
            gclks=per.gclks,
        ),
        controller=base.controller,
        base_period_ns=base.base_period_ns * 1.08,  # longer max chain
        routing_beta=base.routing_beta,
        device=base.device,
    )
