"""Global best-score controller (the "right part" of the circuit, fig 9).

After every pass, each lane of the array holds its column-best score
``Bs`` and the cycle ``Bc`` at which it was computed.  The controller
is the logic the paper synthesizes next to the array: it shifts out
the per-lane pairs, converts cycles to matrix coordinates, and keeps a
running global best across lanes, passes and query chunks, so that at
the end of the run exactly three words — score, row, column — are
returned to the host.

Coordinate recovery: lane ``k`` (absolute query row ``r``) computed
its cell of segment column ``j`` on cycle ``j + k - 1``, so
``j = Bc - k + 1``; the controller adds the segment's database offset
to produce absolute coordinates (relevant when a long database is
streamed in SRAM-sized segments).

Tie-break (repo-wide convention, see
:mod:`repro.align.smith_waterman`): the candidate with the strictly
greater score wins; among equals, the smaller row, then the smaller
column.  Within a lane the element hardware already keeps the earliest
cell (strictly-greater update on ``Bs``), and the controller compares
``(score, -row, -column)`` lexicographically, so the reduction order
of lanes and passes does not matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..align.smith_waterman import LocalHit
from .systolic import LaneBest

__all__ = ["BestScoreController"]


@dataclass
class BestScoreController:
    """Accumulates lane readouts into the global best hit.

    A fresh controller reports ``LocalHit(0, 0, 0)`` — the empty
    alignment — matching the software kernels on all-mismatch inputs.
    """

    best_score: int = 0
    best_row: int = 0
    best_column: int = 0
    candidates_seen: int = field(default=0)

    def reset(self) -> None:
        """Clear state for a new comparison (new sequence pair)."""
        self.best_score = 0
        self.best_row = 0
        self.best_column = 0
        self.candidates_seen = 0

    def consider(self, lane: LaneBest, column_offset: int = 0) -> None:
        """Fold one lane readout into the running best.

        ``column_offset`` is the absolute database position at which
        the streamed segment started (0 for an un-segmented run).
        """
        if lane.score <= 0:
            return
        row = lane.row
        column = column_offset + lane.column
        self.candidates_seen += 1
        if (lane.score, -row, -column) > (
            self.best_score,
            -self.best_row,
            -self.best_column,
        ):
            self.best_score = lane.score
            self.best_row = row
            self.best_column = column

    def consider_pass(self, lanes: list[LaneBest], column_offset: int = 0) -> None:
        """Fold a whole pass readout (one call per pass in hardware)."""
        for lane in lanes:
            self.consider(lane, column_offset)

    def hit(self) -> LocalHit:
        """The three words shipped to the host over the PCI bus."""
        return LocalHit(self.best_score, self.best_row, self.best_column)
