"""Segmented database streaming: databases larger than board SRAM.

Section 5 puts the database in board SRAM ("several megabytes"); a
database that does not fit must be streamed in segments.  Naive
segmentation loses alignments that straddle a boundary, so segments
must **overlap** by at least the maximum database-side extent any
positive-scoring alignment can have — a quantity derivable from the
scoring scheme:

    an alignment scoring >= 1 has at most ``m`` matches contributing
    ``m * match``, and every additional database position costs at
    least ``min(|mismatch|, |gap|)``; hence its database extent is at
    most ``m + (m * match - 1) / min(|mismatch|, |gap|)``.

With that overlap every optimal alignment lies wholly inside some
segment, so the per-segment hits (shifted by the segment's absolute
offset) reduce to the exact global answer under the standard
controller tie-break — property-tested against the monolithic kernel
for every segment size.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..align.scoring import DEFAULT_DNA, LinearScoring, SubstitutionMatrix
from ..align.smith_waterman import LocalHit
from .accelerator import SWAccelerator

__all__ = ["max_database_extent", "SegmentedRun", "run_segmented"]


def max_database_extent(
    query_length: int, scheme: LinearScoring | SubstitutionMatrix
) -> int:
    """Largest database span a positive-scoring alignment can cover."""
    if query_length <= 0:
        return 0
    per_match = (
        scheme.match if isinstance(scheme, LinearScoring) else scheme.max_score()
    )
    if per_match <= 0:
        return query_length
    worst_penalty = (
        min(abs(scheme.mismatch), abs(scheme.gap))
        if isinstance(scheme, LinearScoring)
        else abs(scheme.gap)
    )
    budget = query_length * per_match - 1
    return query_length + budget // max(worst_penalty, 1)


@dataclass(frozen=True)
class SegmentedRun:
    """Result of a segmented scan plus its streaming accounting."""

    hit: LocalHit
    segments: int
    segment_bases: int
    overlap: int
    total_streamed_bases: int

    @property
    def stream_amplification(self) -> float:
        """Streamed bases / database bases — the overlap overhead."""
        if self.total_streamed_bases == 0:
            return 1.0
        net = self.total_streamed_bases - (self.segments - 1) * self.overlap
        return self.total_streamed_bases / max(net, 1)


def run_segmented(
    accelerator: SWAccelerator,
    query: str,
    database: str,
    segment_bases: int | None = None,
) -> SegmentedRun:
    """Stream ``database`` through the accelerator in SRAM-sized
    segments with the exact-overlap guarantee.

    ``segment_bases`` defaults to the largest segment the
    accelerator's board SRAM holds.  Raises if the segment cannot even
    cover one overlap window (SRAM too small for this query/scheme).
    """
    scheme = accelerator.scheme
    m = len(query)
    n = len(database)
    overlap = max(0, max_database_extent(m, scheme) - 1)
    partitioned = m > accelerator.elements
    if segment_bases is None:
        segment_bases = accelerator.board.sram.max_segment(partitioned)
    if segment_bases <= overlap:
        raise ValueError(
            f"segment of {segment_bases} bases cannot cover the required "
            f"overlap of {overlap}; enlarge SRAM or shorten the query"
        )
    if n == 0 or m == 0:
        return SegmentedRun(LocalHit(0, 0, 0), 0, segment_bases, overlap, 0)

    best = LocalHit(0, 0, 0)
    step = segment_bases - overlap
    segments = 0
    streamed = 0
    start = 0
    while True:
        end = min(n, start + segment_bases)
        segment = database[start:end]
        segments += 1
        streamed += len(segment)
        hit = accelerator.run(query, segment).hit
        if hit.score > 0:
            absolute = LocalHit(hit.score, hit.i, start + hit.j)
            if (absolute.score, -absolute.i, -absolute.j) > (
                best.score,
                -best.i,
                -best.j,
            ):
                best = absolute
        if end >= n:
            break
        start += step
    return SegmentedRun(
        hit=best,
        segments=segments,
        segment_bases=segment_bases,
        overlap=overlap,
        total_streamed_bases=streamed,
    )
