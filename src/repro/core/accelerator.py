"""High-level accelerator: the paper's hardware/software co-design.

:class:`SWAccelerator` is the public face of the reproduction: it owns
a (simulated) board, partitions queries (figure 7), drives passes of
the systolic array, reduces lane readouts through the controller, and
charges the board model for every host transfer.  Its
:meth:`SWAccelerator.locate` method has the
:class:`~repro.align.local_linear.LocateFn` signature, so it plugs
directly into the software pipeline of section 2.3::

    acc = SWAccelerator(elements=100)
    result = local_align_linear(s, t, locate=acc.locate)

which is precisely the integration the paper proposes ("this solution
can be easily integrated to parallel algorithms ... that will produce
the alignments in software").

Two engines compute the passes:

* ``"emulator"`` (default) — the NumPy functional emulator, bit-exact
  with the RTL model and fast enough for the benchmark workloads;
* ``"rtl"`` — the cycle-accurate element-by-element simulator, used by
  the equivalence tests, the figure traces, and whenever per-cycle
  behaviour matters.

Either way the cycle count reported in :class:`AcceleratorRun` is the
exact clock count of the hardware (for the RTL engine it is *counted*,
for the emulator it is *computed* from the partition plan; a property
test pins the two together).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..align.scoring import DEFAULT_DNA, LinearScoring, SubstitutionMatrix, encode
from ..align.smith_waterman import LocalHit
from ..hw.board import Board, prototype_board
from .controller import BestScoreController
from .emulator import emulate_partitioned
from .partition import PartitionPlan, plan_partition
from .systolic import SystolicArray
from .timing import IDEAL_CLOCK, ClockModel, RunTiming, estimate_run

__all__ = ["AcceleratorRun", "SWAccelerator"]

#: Bytes returned to the host: score + row + column, 4 bytes each —
#: the "only a few bytes" of section 6.
RESULT_BYTES = 12


@dataclass(frozen=True)
class AcceleratorRun:
    """Everything one comparison produced.

    ``hit`` is the device output (score + coordinates); the remaining
    fields are the performance-model accounting the benchmarks
    consume.
    """

    hit: LocalHit
    plan: PartitionPlan
    timing: RunTiming
    download_seconds: float
    upload_seconds: float

    @property
    def cells(self) -> int:
        return self.plan.total_cells()

    @property
    def device_seconds(self) -> float:
        """Modeled on-device time (compute + load/readout)."""
        return self.timing.total_seconds

    @property
    def total_seconds(self) -> float:
        """Modeled end-to-end time including host transfers."""
        return self.device_seconds + self.download_seconds + self.upload_seconds

    @property
    def gcups(self) -> float:
        return self.cells / self.device_seconds / 1e9 if self.device_seconds else 0.0


class SWAccelerator:
    """Simulated FPGA accelerator for linear-space SW locate.

    Parameters
    ----------
    elements:
        Systolic array size ``N`` (the prototype has 100).
    scheme:
        Linear-gap scoring scheme loaded into the element datapaths.
    board:
        Board model to charge transfers/capacity against; defaults to
        the paper's prototype board.
    clock:
        Clock model for wall-clock predictions (``IDEAL_CLOCK`` by
        default; pass :data:`repro.core.timing.PAPER_CLOCK` to predict
        the synthesized prototype).
    engine:
        ``"emulator"`` or ``"rtl"`` (see module docs).
    """

    def __init__(
        self,
        elements: int = 100,
        scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
        board: Board | None = None,
        clock: ClockModel = IDEAL_CLOCK,
        engine: str = "emulator",
    ) -> None:
        if engine not in ("emulator", "rtl"):
            raise ValueError(f"unknown engine {engine!r}; use 'emulator' or 'rtl'")
        if elements < 1:
            raise ValueError(f"need at least one element, got {elements}")
        self.elements = elements
        self.scheme = scheme
        self.board = board if board is not None else prototype_board()
        self.clock = clock
        self.engine = engine

    # ------------------------------------------------------------------
    # Device operations
    # ------------------------------------------------------------------
    def run(self, query: str, database: str) -> AcceleratorRun:
        """Compare ``query`` against ``database`` on the device.

        The query is the sequence fixed into the array ("the smallest
        one is placed at the FPGA"); the database streams from board
        SRAM.  Returns the best hit with 1-based coordinates — ``i``
        indexes the query, ``j`` the database — plus the full timing
        and transfer accounting.
        """
        q_codes = encode(query)
        d_codes = encode(database)
        m, n = len(q_codes), len(d_codes)
        plan = plan_partition(m, n, self.elements)
        self.board.check_database_fits(n, partitioned=plan.passes > 1)
        down = self.board.download(m + self.board.sram.database_bytes(n))
        if m == 0 or n == 0:
            hit = LocalHit(0, 0, 0)
        elif self.engine == "emulator":
            hit = emulate_partitioned(q_codes, d_codes, self.elements, self.scheme).hit
        else:
            hit = self._run_rtl(q_codes, d_codes, plan)
        up = self.board.upload(RESULT_BYTES)
        timing = estimate_run(m, n, self.elements, self.clock)
        return AcceleratorRun(
            hit=hit,
            plan=plan,
            timing=timing,
            download_seconds=down,
            upload_seconds=up,
        )

    def _run_rtl(
        self, q_codes: np.ndarray, d_codes: np.ndarray, plan: PartitionPlan
    ) -> LocalHit:
        """Cycle-accurate multi-pass run (figure 7 dataflow)."""
        array = SystolicArray(self.elements, self.scheme)
        controller = BestScoreController()
        boundary: np.ndarray | None = None  # row 0 for the first chunk
        observed_cycles = 0
        for chunk in plan.chunks:
            array.load_query(q_codes[chunk.start : chunk.end], row_offset=chunk.row_offset)
            result = array.run_pass(d_codes, boundary_row=boundary)
            controller.consider_pass(result.lane_bests)
            boundary = result.boundary_row
            observed_cycles += result.cycles
        expected = plan.total_cycles()
        if observed_cycles != expected:
            raise AssertionError(
                f"cycle model drifted from RTL: counted {observed_cycles}, "
                f"model says {expected}"
            )
        return controller.hit()

    def locate_semiglobal(self, query: str, database: str) -> LocalHit:
        """Semi-global locate: whole query vs any database window.

        The array retargets with three configuration bits (see
        :mod:`repro.align.semiglobal`): column 0 initialized to ``row *
        gap`` (via ``load_query(column0_scores=...)``), the zero clamp
        disabled, and the readout taken from the final boundary row's
        maximum instead of the lane registers.  Both engines implement
        the same configuration; results match
        :func:`repro.align.semiglobal.semiglobal_locate` exactly
        (property-tested).
        """
        q_codes = encode(query)
        d_codes = encode(database)
        m, n = len(q_codes), len(d_codes)
        gap = self.scheme.gap
        if m == 0:
            return LocalHit(0, 0, 0)
        if n == 0:
            return LocalHit(gap * m, m, 0)
        plan = plan_partition(m, n, self.elements)
        self.board.check_database_fits(n, partitioned=plan.passes > 1)
        if self.engine == "rtl":
            boundary: np.ndarray | None = None
            for chunk in plan.chunks:
                array = SystolicArray(self.elements, self.scheme, clamp=False)
                col0 = [
                    gap * (chunk.row_offset + k) for k in range(chunk.length + 1)
                ]
                array.load_query(
                    q_codes[chunk.start : chunk.end],
                    row_offset=chunk.row_offset,
                    column0_scores=col0,
                )
                boundary = array.run_pass(d_codes, boundary_row=boundary).boundary_row
            assert boundary is not None
            last_row = boundary.copy()
        else:
            steps = gap * np.arange(0, n + 1, dtype=np.int64)
            prev = np.zeros(n + 1, dtype=np.int64)
            h = np.empty(n + 1, dtype=np.int64)
            for i in range(1, m + 1):
                pair_row = self.scheme.pair_vector(int(q_codes[i - 1]), d_codes)
                h[0] = gap * i
                np.maximum(prev[:-1] + pair_row, prev[1:] + gap, out=h[1:])
                prev = np.maximum.accumulate(h - steps) + steps
            last_row = prev
        # Column 0 of the drained row represents the all-gap alignment
        # (the RTL drain reports 0 there; restore the true boundary).
        last_row[0] = gap * m
        best_j = int(np.argmax(last_row))
        return LocalHit(int(last_row[best_j]), m, best_j)

    def lane_readout(self, query: str, database: str):
        """Per-lane ``(row, Bs, column)`` readouts of a full run.

        The raw material of near-best search (reference [6] of section
        2.4): each query row contributes its best cell.  The RTL
        engine shifts the registers out of the array; the emulator
        computes the identical values functionally (property-tested).
        Only single-chunk queries expose all lanes at once in the RTL
        engine, so for partitioned queries this method always uses the
        functional readout.
        """
        from .emulator import lane_readout as functional_readout

        q_codes = encode(query)
        d_codes = encode(database)
        if (
            self.engine == "rtl"
            and 0 < len(q_codes) <= self.elements
            and len(d_codes) > 0
        ):
            array = SystolicArray(self.elements, self.scheme)
            array.load_query(q_codes)
            return array.run_pass(d_codes).lane_bests
        return functional_readout(q_codes, d_codes, self.scheme)

    # ------------------------------------------------------------------
    # Software-pipeline integration (LocateFn)
    # ------------------------------------------------------------------
    def locate(
        self,
        s: str,
        t: str,
        scheme: LinearScoring | SubstitutionMatrix | None = None,
    ) -> LocalHit:
        """Phase-1/2 kernel for :func:`repro.align.local_linear.local_align_linear`.

        ``scheme`` must match the scheme the array was configured with
        (the datapath constants are synthesized in); passing a
        different one raises rather than silently reconfiguring.
        """
        if scheme is not None and scheme != self.scheme:
            raise ValueError(
                "accelerator was configured with a different scoring scheme; "
                "instantiate a new SWAccelerator for it"
            )
        # The array holds the query: keep the convention s = query.
        return self.run(s, t).hit
