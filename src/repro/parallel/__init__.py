"""Parallel wavefront substrate: figure 3 and the cluster algorithms
the accelerator integrates with (section 2.4)."""

from .wavefront_cluster import ClusterConfig, ClusterRun, Message, WavefrontCluster, accelerated_config
from .sharding import even_spans
from .wavefront import BlockResult, WavefrontSchedule, block_sweep
from .zalign import ZAlignResult, zalign

__all__ = [
    "block_sweep",
    "even_spans",
    "BlockResult",
    "WavefrontSchedule",
    "WavefrontCluster",
    "ClusterConfig",
    "ClusterRun",
    "Message",
    "accelerated_config",
    "zalign",
    "ZAlignResult",
]
