"""Deprecated shim: the wavefront simulation moved to
:mod:`repro.parallel.wavefront_cluster`.

Historically ``repro.parallel.cluster`` held the figure-3 simulated
message-passing cluster.  The name now collides with the *service*
cluster tier (:mod:`repro.service.cluster` — a real coordinator
scatter-gathering over TCP shard nodes), so the simulation lives under
the unambiguous name ``wavefront_cluster`` and this module only
re-exports it with a :class:`DeprecationWarning`.

Migration::

    from repro.parallel.cluster import WavefrontCluster       # old
    from repro.parallel.wavefront_cluster import WavefrontCluster  # new

Looking for multi-node *database search*?  That is the new tier:
:class:`repro.service.cluster.ClusterClient`.
"""

from __future__ import annotations

import warnings

from . import wavefront_cluster as _impl

__all__ = list(_impl.__all__)


def __getattr__(name: str):
    if name in __all__:
        warnings.warn(
            "repro.parallel.cluster is deprecated: the wavefront simulation "
            "moved to repro.parallel.wavefront_cluster (the service cluster "
            "tier is repro.service.cluster)",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(_impl, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
