"""Work-partitioning helpers shared by the parallel substrates.

Both the figure-3 cluster (columns over ranks) and the search service
(database records over index shards) need the same primitive: split
``total`` items into ``parts`` contiguous, near-even spans whose sizes
differ by at most one.  Keeping the arithmetic in one place means the
two layers provably balance the same way, and the property tests cover
both at once.
"""

from __future__ import annotations

__all__ = ["even_spans"]


def even_spans(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``parts`` contiguous near-even spans.

    Returns ``parts`` half-open ``(start, stop)`` spans covering
    ``0..total`` in order; the first ``total % parts`` spans are one
    longer.  ``total`` may be smaller than ``parts`` (trailing spans
    are empty), but both must be non-negative / positive respectively.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if parts < 1:
        raise ValueError(f"need at least one part, got {parts}")
    base, extra = divmod(total, parts)
    spans: list[tuple[int, int]] = []
    start = 0
    for part in range(parts):
        width = base + (1 if part < extra else 0)
        spans.append((start, start + width))
        start += width
    return spans
