"""Simulated message-passing cluster running the wavefront method.

The paper positions its accelerator as a drop-in for the
compute-intensive phase of cluster algorithms ([3], [4], [6], [7]);
this module supplies that cluster as a deterministic simulation in the
mpi4py idiom: ranks, explicit sends of border state, and a virtual
clock.

Decomposition (figure 3): each of ``P`` workers owns a block of
*columns*; the query rows are processed in row-blocks.  Worker ``p``
can compute row-block ``r`` once worker ``p-1`` has sent the border
column of ``(p-1, r)`` — the computation ripples as an anti-diagonal
wave across the grid of tiles.

The simulation produces two things:

* the **exact result** — the global best hit, bit-identical to the
  sequential kernel (property-tested for every grid shape), assembled
  from :func:`~repro.parallel.wavefront.block_sweep` tiles plus the
  repo-wide tie-break applied to per-tile bests;
* a **virtual-time model** — per-tile compute cost (cells / node
  CUPS) and per-message cost (latency + border bytes / bandwidth)
  rolled up through the dependency DAG to a makespan, from which
  speedup and efficiency vs the one-node run follow (benchmark F3).

Optionally, each worker can delegate its tile sweeps to a simulated
:class:`~repro.core.accelerator.SWAccelerator` — the hardware/software
integration the paper proposes ("can be integrated to a parallel
algorithm, leading to a hardware-software approach").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..align.scoring import DEFAULT_DNA, LinearScoring, SubstitutionMatrix, encode
from ..align.smith_waterman import LocalHit
from .sharding import even_spans
from .wavefront import WavefrontSchedule, block_sweep

__all__ = ["ClusterConfig", "Message", "ClusterRun", "WavefrontCluster", "accelerated_config"]


@dataclass(frozen=True)
class ClusterConfig:
    """Cost model of the simulated cluster.

    ``node_cups`` — per-node software DP throughput (cells/second);
    ``latency_s``/``bandwidth_bytes_s`` — the interconnect;
    ``row_block`` — rows per tile (granularity of the pipeline).
    """

    processors: int = 4
    node_cups: float = 5e6
    latency_s: float = 50e-6
    bandwidth_bytes_s: float = 100e6
    row_block: int = 64
    bytes_per_score: int = 4

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise ValueError("need at least one processor")
        if self.node_cups <= 0 or self.bandwidth_bytes_s <= 0:
            raise ValueError("throughputs must be positive")
        if self.row_block < 1:
            raise ValueError("row_block must be positive")

    def compute_seconds(self, cells: int) -> float:
        return cells / self.node_cups

    def message_seconds(self, n_scores: int) -> float:
        return self.latency_s + n_scores * self.bytes_per_score / self.bandwidth_bytes_s


@dataclass(frozen=True)
class Message:
    """One border-column send between neighbouring ranks."""

    src: int
    dst: int
    row_block: int
    n_scores: int
    send_time: float


@dataclass
class ClusterRun:
    """Result + virtual-clock accounting of one cluster execution."""

    hit: LocalHit
    makespan_seconds: float
    sequential_seconds: float
    messages: list[Message] = field(default_factory=list)
    tile_finish: dict[tuple[int, int], float] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.sequential_seconds / self.makespan_seconds if self.makespan_seconds else 0.0

    @property
    def bytes_communicated(self) -> int:
        return sum(m.n_scores * 4 for m in self.messages)


class WavefrontCluster:
    """Deterministic simulation of the figure-3 cluster."""

    def __init__(
        self,
        config: ClusterConfig | None = None,
        scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
    ) -> None:
        self.config = config if config is not None else ClusterConfig()
        self.scheme = scheme

    # ------------------------------------------------------------------
    def _column_blocks(self, n: int) -> list[tuple[int, int]]:
        """Split ``n`` database columns over the ranks (near-even)."""
        return even_spans(n, self.config.processors)

    def run(self, s: str, t: str) -> ClusterRun:
        """Execute the wavefront computation of ``s`` vs ``t``.

        Returns the global best hit (bit-identical to
        :func:`repro.align.smith_waterman.sw_locate_best`) and the
        virtual-time accounting.  Workers own column blocks of ``t``;
        tiles are ``row_block`` rows tall.
        """
        cfg = self.config
        s_codes = encode(s)
        t_codes = encode(t)
        m, n = len(s_codes), len(t_codes)
        if m == 0 or n == 0:
            return ClusterRun(LocalHit(0, 0, 0), 0.0, 0.0)
        col_spans = self._column_blocks(n)
        row_starts = list(range(0, m, cfg.row_block))
        n_row_blocks = len(row_starts)

        # Border state: for each rank, the column of scores it last
        # received from the left (one entry per row of the current
        # row-block) plus the diagonal corner value.
        best = LocalHit(0, 0, 0)
        messages: list[Message] = []
        finish: dict[tuple[int, int], float] = {}
        # bottom_rows[rank] = bottom boundary of this rank's columns
        # from the previous row-block (width + corner semantics).
        bottom_rows: list[np.ndarray] = [
            np.zeros((hi - lo) + 1, dtype=np.int64) for lo, hi in col_spans
        ]
        # Virtual clocks.
        rank_clock = [0.0] * cfg.processors
        recv_ready: dict[tuple[int, int], float] = {}

        for r, i0 in enumerate(row_starts):
            i1 = min(i0 + cfg.row_block, m)
            rows = s_codes[i0:i1]
            h = len(rows)
            # Matrix column 0 is all zeros in local alignment; this is
            # rank 0's left boundary for every row-block.
            left_col = np.zeros(h, dtype=np.int64)
            for rank, (lo, hi) in enumerate(col_spans):
                w = hi - lo
                # Dependencies: own previous row-block (rank_clock),
                # and the border-column message from the left.
                ready = rank_clock[rank]
                if rank > 0:
                    ready = max(ready, recv_ready[(rank, r)])
                prev_bottom = bottom_rows[rank]
                result = block_sweep(
                    rows,
                    t_codes[lo:hi],
                    top_row=prev_bottom[1:],
                    left_col=left_col,
                    corner=int(prev_bottom[0]),
                    scheme=self.scheme,
                )
                done = ready + cfg.compute_seconds(h * w)
                rank_clock[rank] = done
                finish[(rank, r)] = done
                # Fold tile best into the global best (absolute coords,
                # repo-wide tie-break).
                if result.best.score > 0:
                    cand = LocalHit(
                        result.best.score, i0 + result.best.i, lo + result.best.j
                    )
                    if (cand.score, -cand.i, -cand.j) > (best.score, -best.i, -best.j):
                        best = cand
                # block_sweep's bottom row already carries the corner
                # (index 0 = this tile's bottom-left boundary value).
                bottom_rows[rank] = result.bottom_row
                # Send the border column to the right neighbour.
                if rank + 1 < cfg.processors:
                    recv_ready[(rank + 1, r)] = done + cfg.message_seconds(h)
                    messages.append(
                        Message(
                            src=rank,
                            dst=rank + 1,
                            row_block=r,
                            n_scores=h,
                            send_time=done,
                        )
                    )
                left_col = result.right_col

        makespan = max(rank_clock)
        sequential = cfg.compute_seconds(m * n)
        run = ClusterRun(
            hit=best,
            makespan_seconds=makespan,
            sequential_seconds=sequential,
            messages=messages,
            tile_finish=finish,
        )
        return run

    # ------------------------------------------------------------------
    def schedule(self, m: int, n: int) -> WavefrontSchedule:
        """The analytic schedule of this decomposition."""
        n_row_blocks = max(1, -(-m // self.config.row_block))
        return WavefrontSchedule(
            row_blocks=n_row_blocks, col_blocks=self.config.processors
        )


def accelerated_config(
    accelerator,
    processors: int = 4,
    latency_s: float = 50e-6,
    bandwidth_bytes_s: float = 100e6,
    row_block: int = 64,
) -> ClusterConfig:
    """Cluster config whose nodes carry the simulated accelerator.

    The hardware/software approach of section 1 ("FPGA based solutions
    that can be integrated to a parallel algorithm"): each node's DP
    throughput is the accelerator's modeled effective rate instead of
    a CPU's.  The returned config plugs straight into
    :class:`WavefrontCluster`/:func:`~repro.parallel.zalign.zalign`,
    so the F3 benchmark can put numbers on the combination.
    """
    from ..core.timing import estimate_run

    # Effective device throughput on a representative long stream.
    timing = estimate_run(
        accelerator.elements, 1_000_000, accelerator.elements, accelerator.clock
    )
    return ClusterConfig(
        processors=processors,
        node_cups=timing.cups,
        latency_s=latency_s,
        bandwidth_bytes_s=bandwidth_bytes_s,
        row_block=row_block,
    )
