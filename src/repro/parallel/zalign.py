"""Simplified Z-align: exact parallel local alignment in restricted
memory (paper reference [3], summarized in section 2.4).

Z-align is the parallel software algorithm the paper's accelerator is
meant to slot into — its second phase ("the most compute-intensive
since it calculates the entire similarity array in linear space over
the reverses of the sequences") is exactly the locate operation the
FPGA performs.  We implement the four phases over the simulated
cluster:

1. **Distribute** — split the database columns over the nodes (the
   column-block decomposition of :class:`~repro.parallel.wavefront_cluster.WavefrontCluster`).
2. **Locate over reverses** — every node participates in a wavefront
   sweep of the *reversed* sequences in linear space, producing the
   best score and the begin coordinates of the best alignment(s); the
   sweep can run in software or on each node's simulated accelerator.
3. **Reduce** — nodes send their candidate (score, coordinates) to
   the master, which picks the global best (the same tie-break as the
   hardware controller).
4. **Retrieve** — with begin coordinates known, the alignment itself
   is recovered in user-restricted memory: the **divergence-banded**
   retrieval of :mod:`repro.align.divergence` — the superior/inferior
   divergences measured during the sweep bound the band, which is
   exactly what the paper's summary of [3] describes ("the number of
   diagonals needed to obtain the alignments ... is also calculated").

The returned alignment is property-tested to score exactly the
Smith-Waterman optimum, and the memory ledger records the peak
per-node allocation — the "user-restricted memory space" claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..align.divergence import BandedResult, local_align_banded
from ..align.scoring import DEFAULT_DNA, LinearScoring, SubstitutionMatrix
from ..align.smith_waterman import LocalHit
from ..align.traceback import Alignment
from .wavefront_cluster import ClusterConfig, ClusterRun, WavefrontCluster

__all__ = ["ZAlignResult", "zalign"]


@dataclass(frozen=True)
class ZAlignResult:
    """Output of the four-phase run, with per-phase accounting."""

    alignment: Alignment
    banded: BandedResult
    reverse_run: ClusterRun
    begin_hit_reversed: LocalHit
    peak_node_memory_bytes: int
    phase_seconds: dict[str, float]

    @property
    def score(self) -> int:
        return self.alignment.score

    @property
    def retrieval_memory_bytes(self) -> int:
        """Bytes of the banded retrieval matrix (8-byte cells)."""
        return self.banded.memory_cells * 8


def zalign(
    s: str,
    t: str,
    config: ClusterConfig | None = None,
    scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
) -> ZAlignResult:
    """Exact local alignment via the four Z-align phases.

    Phase 2's cluster sweep runs over the *reversed* sequences, so its
    hit directly gives the begin coordinates of an optimal alignment;
    phases 3-4 then bracket and retrieve it in linear space.  The
    virtual-time ledger separates distribution, sweep, reduction and
    retrieval so benchmark F3 can show where the time goes as the
    node count scales.
    """
    s = s.upper()
    t = t.upper()
    cfg = config if config is not None else ClusterConfig()
    cluster = WavefrontCluster(cfg, scheme)

    # Phase 1: distribution — each node receives its column block plus
    # the full query (the paper's phase 1 "input sequences s and t are
    # distributed to the nodes").
    n_bytes = len(s) * cfg.processors + len(t)
    phase1 = cfg.message_seconds(n_bytes // max(cfg.bytes_per_score, 1))

    # Phase 2: the compute-intensive sweep over the reversed
    # sequences, in linear space, on the cluster.
    reverse_run = cluster.run(s[::-1], t[::-1])
    begin_hit = reverse_run.hit

    # Phase 3: reduction to the master — one (score, i, j) triple per
    # node (12 bytes each, mirroring the accelerator's result word).
    phase3 = cfg.processors * cfg.message_seconds(3)

    # Phase 4: divergence-banded retrieval in restricted memory.
    alignment, banded, _forward = local_align_banded(s, t, scheme)

    # Peak per-node memory: two DP rows over the node's column block,
    # plus the border column of one row-block — all linear.
    cols_per_node = -(-len(t) // cfg.processors)
    peak = 2 * (cols_per_node + 1) * cfg.bytes_per_score + cfg.row_block * cfg.bytes_per_score

    phase_seconds = {
        "distribute": phase1,
        "reverse_sweep": reverse_run.makespan_seconds,
        "reduce": phase3,
        "retrieve": cfg.compute_seconds(max(1, banded.memory_cells)),
    }
    return ZAlignResult(
        alignment=alignment,
        banded=banded,
        reverse_run=reverse_run,
        begin_hit_reversed=begin_hit,
        peak_node_memory_bytes=peak,
        phase_seconds=phase_seconds,
    )
