"""Wavefront decomposition of the similarity matrix (figure 3).

The non-uniform dependency pattern of equation (1) admits parallelism
along anti-diagonals: cell ``(i, j)`` needs ``(i-1, j-1)``,
``(i-1, j)`` and ``(i, j-1)``, so every cell of one anti-diagonal is
independent.  Figure 3 shows the classical cluster realization: each
processor owns a block of *columns* and the computation ripples
through block-rows as border columns are passed along.

This module provides the two building blocks the cluster simulator
(:mod:`repro.parallel.wavefront_cluster`) composes:

* :func:`block_sweep` — exact Smith-Waterman DP over one rectangular
  block given its top row and left column boundaries (the state a
  cluster node receives from its neighbours).  The global matrix can
  be tiled into any grid of such blocks and recomposed exactly — the
  tests sweep random tilings against the monolithic kernel.
* :class:`WavefrontSchedule` — the analytic schedule of figure 3:
  which blocks are active at each step, the pipeline fill/drain, and
  the resulting parallel speedup bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..align.scoring import DEFAULT_DNA, LinearScoring, SubstitutionMatrix
from ..align.smith_waterman import LocalHit

__all__ = ["BlockResult", "block_sweep", "WavefrontSchedule"]


@dataclass(frozen=True)
class BlockResult:
    """Output state of one block: exactly what a node sends onward.

    ``bottom_row`` has width ``w + 1`` — index 0 is the block's
    bottom-left *corner* (the diagonal input of the block below-left
    neighbour's successor); ``right_col`` has height ``h`` (rows top
    to bottom at the block's last column).  ``best`` is in 1-based
    *block-local* coordinates, ``LocalHit(0, 0, 0)`` when no positive
    cell exists.
    """

    bottom_row: np.ndarray
    right_col: np.ndarray
    best: LocalHit


def block_sweep(
    s_block: np.ndarray,
    t_block: np.ndarray,
    top_row: np.ndarray,
    left_col: np.ndarray,
    corner: int,
    scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
) -> BlockResult:
    """Exact SW DP over one tile of the similarity matrix.

    Parameters
    ----------
    s_block, t_block:
        Encoded sequence slices covered by this tile (height ``h``,
        width ``w``).
    top_row:
        The ``w`` matrix values directly above the tile.
    left_col:
        The ``h`` matrix values directly left of the tile.
    corner:
        The single value diagonally above-left of the tile.
    scheme:
        Linear-gap scoring scheme.

    For tiles on the matrix border the boundaries are all zeros
    (Smith-Waterman row/column 0).  The within-row dependency is
    resolved with the same max-plus scan as the monolithic kernel,
    seeded at ``k = 0`` with the left-boundary value, so arbitrary
    boundaries — not just zeros — are exact.
    """
    h, w = len(s_block), len(t_block)
    if top_row.shape != (w,):
        raise ValueError(f"top_row must have length {w}, got {top_row.shape}")
    if left_col.shape != (h,):
        raise ValueError(f"left_col must have length {h}, got {left_col.shape}")
    gap = scheme.gap
    steps = gap * np.arange(0, w + 1, dtype=np.int64)
    prev = np.empty(w + 1, dtype=np.int64)
    prev[0] = corner
    prev[1:] = top_row
    right_col = np.empty(h, dtype=np.int64)
    best = LocalHit(0, 0, 0)
    cur = np.empty(w + 1, dtype=np.int64)
    hk = np.empty(w + 1, dtype=np.int64)
    for i in range(1, h + 1):
        pair_row = scheme.pair_vector(int(s_block[i - 1]), t_block)
        hvals = np.maximum(prev[:-1] + pair_row, prev[1:] + gap)
        np.maximum(hvals, 0, out=hvals)
        hk[0] = left_col[i - 1]
        hk[1:] = hvals
        cur[:] = np.maximum.accumulate(hk - steps) + steps
        cur[0] = left_col[i - 1]
        if w:
            row_best_j = int(np.argmax(cur[1:])) + 1
            row_best = int(cur[row_best_j])
            if row_best > best.score:
                best = LocalHit(row_best, i, row_best_j)
        right_col[i - 1] = cur[w]
        prev, cur = cur, prev
    return BlockResult(bottom_row=prev.copy(), right_col=right_col, best=best)


@dataclass(frozen=True)
class WavefrontSchedule:
    """Analytic block-wavefront schedule (figure 3).

    A grid of ``row_blocks x col_blocks`` tiles where tile ``(r, c)``
    depends on ``(r-1, c)``, ``(r, c-1)`` and ``(r-1, c-1)``: tile
    ``(r, c)`` executes at step ``r + c`` (0-based), so the schedule
    length is ``row_blocks + col_blocks - 1`` steps — the pipeline
    fill and drain visible in figures 3.a-3.c.
    """

    row_blocks: int
    col_blocks: int

    def __post_init__(self) -> None:
        if self.row_blocks < 1 or self.col_blocks < 1:
            raise ValueError("block grid must be at least 1 x 1")

    @property
    def steps(self) -> int:
        """Parallel steps to complete the grid."""
        return self.row_blocks + self.col_blocks - 1

    def active_blocks(self, step: int) -> list[tuple[int, int]]:
        """Tiles executing at ``step`` (the grey anti-diagonal)."""
        if not 0 <= step < self.steps:
            raise ValueError(f"step {step} outside schedule of {self.steps}")
        return [
            (r, step - r)
            for r in range(
                max(0, step - self.col_blocks + 1), min(step, self.row_blocks - 1) + 1
            )
        ]

    def max_parallelism(self) -> int:
        """Largest number of simultaneously active tiles."""
        return min(self.row_blocks, self.col_blocks)

    def efficiency(self, processors: int) -> float:
        """Useful fraction of processor-steps with ``processors``
        workers, one column block per worker (figure 3's layout:
        ``col_blocks == processors``).

        Total work is ``row_blocks * col_blocks`` tile executions;
        elapsed steps is the schedule length, each costing
        ``processors`` processor-steps.
        """
        if processors < 1:
            raise ValueError("need at least one processor")
        work = self.row_blocks * self.col_blocks
        return work / (self.steps * processors)

    def speedup(self, processors: int) -> float:
        """Ideal wavefront speedup with ``processors`` workers."""
        return self.efficiency(processors) * processors
