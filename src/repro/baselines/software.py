"""Software baselines: the "optimized C program" stand-in.

The paper's speedup is measured against "an optimized C program that
implemented the same algorithm (i.e. computation of the same matrix
and highest score)" on the host CPU — score and coordinates only, no
traceback, no I/O.  We provide two software implementations of exactly
that computation:

* :func:`locate_numpy` — the vectorized row-sweep (our stand-in for
  the optimized C program; NumPy's compiled inner loops play the role
  of the C compiler's);
* :func:`locate_pure` — a straightforward pure-Python version: the
  naive implementation a scripting-language user would write, kept as
  an independent oracle (it shares no code with the kernels it
  validates) and as the lower anchor of the measured software range.

Both honour the repo-wide coordinate and tie-break conventions, so
every implementation in the repository is interchangeable on outputs.
"""

from __future__ import annotations

from ..align.scoring import DEFAULT_DNA, LinearScoring, SubstitutionMatrix
from ..align.smith_waterman import LocalHit

__all__ = ["locate_numpy", "locate_pure"]


def locate_numpy(
    s: str, t: str, scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA
) -> LocalHit:
    """Optimized software locate: the batched NumPy profile kernel.

    Historically this was an alias of
    :func:`~repro.align.smith_waterman.sw_locate_best` — the "NumPy
    baseline" and the reference kernel were the same code, so E1's
    software side measured nothing distinct.  It now routes through
    the ``numpy-striped`` backend (:mod:`repro.kernels`): genuinely
    different code (profile gather + batched row sweep) that is still
    bit-identical on ``(score, i, j)``, keeping the paper's fairness
    rule — hardware and software do *the same work* — while making the
    software side an honest optimized baseline.
    """
    from ..kernels import get_backend

    return get_backend("numpy-striped").locate(s, t, scheme)


def locate_pure(
    s: str, t: str, scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA
) -> LocalHit:
    """Pure-Python reference locate (no NumPy in the inner loop).

    Deliberately written from the recurrence as in paper equation (1),
    cell by cell, with its own scoring lookups — an implementation
    independent enough that agreement with the kernels is evidence,
    not tautology.  Quadratic time, linear space.
    """
    s = s.upper()
    t = t.upper()
    m, n = len(s), len(t)
    if m == 0 or n == 0:
        return LocalHit(0, 0, 0)
    gap = scheme.gap
    prev = [0] * (n + 1)
    best_score, best_i, best_j = 0, 0, 0
    for i in range(1, m + 1):
        cur = [0] * (n + 1)
        si = s[i - 1]
        for j in range(1, n + 1):
            diag = prev[j - 1] + scheme.pair(si, t[j - 1])
            up = prev[j] + gap
            left = cur[j - 1] + gap
            v = diag
            if up > v:
                v = up
            if left > v:
                v = left
            if v < 0:
                v = 0
            cur[j] = v
            if v > best_score:
                best_score, best_i, best_j = v, i, j
        prev = cur
    return LocalHit(best_score, best_i, best_j)
