"""Software comparators: exact baselines, classic heuristics, and
Myers' bit-parallel matcher."""

from .bitparallel import BitParallelMatcher, edit_distance_search
from .heuristics import banded_locate, blast_like, fasta_like
from .software import locate_numpy, locate_pure

__all__ = [
    "locate_numpy",
    "locate_pure",
    "blast_like",
    "fasta_like",
    "banded_locate",
    "BitParallelMatcher",
    "edit_distance_search",
]
