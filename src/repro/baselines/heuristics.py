"""Heuristic comparators: BLAST-like and FASTA-like search.

The paper's introduction frames the design space: "heuristic methods
such as BLAST [1] and Fasta [22] have been proposed. However, the
performance gain is often achieved by reducing the quality of the
results produced."  To reproduce that trade-off quantitatively (the
exact-vs-heuristic comparison benchmark), this module implements the
two classic heuristics in their textbook forms:

* :func:`blast_like` — seed-and-extend: exact word matches of length
  ``w`` seed ungapped extensions with X-drop termination (BLAST 1.x
  semantics, which is what existed when the compared FPGA ports [5],
  [18], [19] were built);
* :func:`fasta_like` — k-tuple diagonal scoring: word matches are
  binned by diagonal, the best diagonals are re-scored with a banded
  Smith-Waterman around the diagonal.

Both return a :class:`~repro.align.smith_waterman.LocalHit` like the
exact kernels, so the benchmark can measure *score recall* (how often
the heuristic finds the true optimum) against speed.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..align.scoring import DEFAULT_DNA, LinearScoring, SubstitutionMatrix, encode
from ..align.smith_waterman import LocalHit

__all__ = ["blast_like", "fasta_like", "banded_locate"]


def _word_index(codes: np.ndarray, w: int) -> dict[bytes, list[int]]:
    """Positions of every length-``w`` word (0-based)."""
    index: dict[bytes, list[int]] = defaultdict(list)
    buf = codes.tobytes()
    for pos in range(len(codes) - w + 1):
        index[buf[pos : pos + w]].append(pos)
    return index


def blast_like(
    query: str,
    database: str,
    w: int = 8,
    x_drop: int = 8,
    scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
) -> LocalHit:
    """Best ungapped HSP found by seed-and-extend.

    Exact ``w``-mers of the query index the database scan; each hit is
    extended left and right without gaps until the running score drops
    ``x_drop`` below its maximum.  Returns the best HSP as a
    :class:`LocalHit` (1-based end coordinates, matching the exact
    kernels) — or the empty hit when no seed exists.

    Being ungapped *and* seeded, this can miss the true optimum: that
    miss rate is precisely what the heuristics benchmark measures.
    """
    if w < 1:
        raise ValueError(f"word size must be positive, got {w}")
    q = encode(query)
    d = encode(database)
    m, n = len(q), len(d)
    if m < w or n < w:
        return LocalHit(0, 0, 0)
    index = _word_index(q, w)
    dbuf = d.tobytes()
    best = LocalHit(0, 0, 0)
    seen_diagonal_end: dict[int, int] = {}
    for dpos in range(n - w + 1):
        word = dbuf[dpos : dpos + w]
        for qpos in index.get(word, ()):
            diag = dpos - qpos
            # Skip seeds inside a region already extended on this diagonal.
            if seen_diagonal_end.get(diag, -1) >= dpos:
                continue
            score, qi, dj, q_end, d_end = _ungapped_extend(
                q, d, qpos, dpos, w, x_drop, scheme
            )
            seen_diagonal_end[diag] = d_end - 1
            cand = LocalHit(score, q_end, d_end)
            if score > best.score or (
                score == best.score
                and (cand.i, cand.j) < (best.i, best.j)
                and best.score > 0
            ):
                best = cand
    return best


def _ungapped_extend(
    q: np.ndarray,
    d: np.ndarray,
    qpos: int,
    dpos: int,
    w: int,
    x_drop: int,
    scheme: LinearScoring | SubstitutionMatrix,
) -> tuple[int, int, int, int, int]:
    """X-drop extension of a seed; returns (score, qs, ds, qe, de).

    ``qs``/``ds`` are 0-based starts; ``qe``/``de`` 1-based ends of
    the maximal-scoring extension.
    """
    # Seed score.
    score = sum(scheme.pair(int(q[qpos + k]), int(d[dpos + k])) for k in range(w))
    best_score = score
    best_right = 0
    # Right extension.
    run = score
    k = 0
    while qpos + w + k < len(q) and dpos + w + k < len(d):
        run += scheme.pair(int(q[qpos + w + k]), int(d[dpos + w + k]))
        k += 1
        if run > best_score:
            best_score, best_right = run, k
        if run < best_score - x_drop:
            break
    # Left extension (from the seed's best-right configuration).
    run = best_score
    best_left = 0
    k = 0
    while qpos - 1 - k >= 0 and dpos - 1 - k >= 0:
        run += scheme.pair(int(q[qpos - 1 - k]), int(d[dpos - 1 - k]))
        k += 1
        if run > best_score:
            best_score, best_left = run, k
        if run < best_score - x_drop:
            break
    qs = qpos - best_left
    ds = dpos - best_left
    qe = qpos + w + best_right  # 1-based end == 0-based end index
    de = dpos + w + best_right
    return best_score, qs, ds, qe, de


def banded_locate(
    query: str,
    database: str,
    diagonal: int,
    band: int,
    scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
) -> LocalHit:
    """Smith-Waterman restricted to ``|j - i - diagonal| <= band``.

    The re-scoring stage of the FASTA heuristic.  Exact within its
    band; cells outside are treated as zero.  Runs in ``O(m * band)``
    time, the whole point of banding.
    """
    if band < 0:
        raise ValueError(f"band must be non-negative, got {band}")
    q = encode(query)
    d = encode(database)
    m, n = len(q), len(d)
    if m == 0 or n == 0:
        return LocalHit(0, 0, 0)
    gap = scheme.gap
    prev = np.zeros(n + 1, dtype=np.int64)
    cur = np.zeros(n + 1, dtype=np.int64)
    best = LocalHit(0, 0, 0)
    for i in range(1, m + 1):
        lo = max(1, i + diagonal - band)
        hi = min(n, i + diagonal + band)
        if i + diagonal - band > n:
            # The band has left the matrix; every further row is empty.
            break
        if i + diagonal + band < 1:
            # The band has not entered the matrix yet; this row is all
            # zeros (and so is prev, untouched since initialization).
            continue
        cur[: lo - 1] = 0
        si = int(q[i - 1])
        row_best, row_best_j = 0, 0
        left = 0  # cell (i, lo - 1) lies outside the band -> zero
        for j in range(lo, hi + 1):
            diag_v = prev[j - 1] + scheme.pair(si, int(d[j - 1]))
            up = prev[j] + gap
            lf = left + gap
            v = max(diag_v, up, lf, 0)
            cur[j] = v
            left = v
            if v > row_best:
                row_best, row_best_j = int(v), j
        cur[hi + 1 :] = 0
        if row_best > best.score:
            best = LocalHit(row_best, i, row_best_j)
        prev, cur = cur, prev
    return best


def fasta_like(
    query: str,
    database: str,
    k: int = 6,
    band: int = 12,
    top_diagonals: int = 3,
    scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
) -> LocalHit:
    """FASTA-style k-tuple search with banded re-scoring.

    Word matches of length ``k`` vote for their diagonal; the
    ``top_diagonals`` strongest regions are re-scored with
    :func:`banded_locate`.  Exact when the true alignment stays within
    ``band`` of a top-voted diagonal — the classic FASTA failure mode
    (gappy alignments drifting across diagonals) is reproduced
    faithfully.
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    q = encode(query)
    d = encode(database)
    if len(q) < k or len(d) < k:
        return LocalHit(0, 0, 0)
    index = _word_index(q, k)
    votes: dict[int, int] = defaultdict(int)
    dbuf = d.tobytes()
    for dpos in range(len(d) - k + 1):
        for qpos in index.get(dbuf[dpos : dpos + k], ()):
            votes[dpos - qpos] += 1
    if not votes:
        return LocalHit(0, 0, 0)
    ranked = sorted(votes.items(), key=lambda kv: (-kv[1], kv[0]))
    best = LocalHit(0, 0, 0)
    for diagonal, _count in ranked[:top_diagonals]:
        cand = banded_locate(query, database, diagonal, band, scheme)
        if cand.score > best.score:
            best = cand
    return best
