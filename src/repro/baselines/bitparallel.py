"""Myers' bit-parallel approximate matching (Myers, JACM 1999).

The paper accelerates DP with *spatial* parallelism (one element per
cell of an anti-diagonal).  The classic *software* counterpart packs
an entire DP column into machine-word bit-vectors and updates all of
it with ~15 boolean operations — a 64x-per-word parallelism that is
the reason modern CPUs are competitive for edit-distance-style
recurrences.  Implementing it here gives the benchmark suite an
apples-to-apples "best software" comparator for the unit-cost domain
and rounds out the baselines the way the related-work section rounds
out the hardware space.

Semantics: semi-global **edit distance** (unit substitution/indel
costs) of a pattern against every text prefix end — ``score[j]`` is
the minimum edit distance of the whole pattern to some window of the
text ending at position ``j``.  Python integers are arbitrary
precision, so a single "word" covers any pattern length; the update
count per text character is constant either way.

Validated against an independent DP oracle by the tests; the S2
benchmark measures the speedup over the plain-DP implementation of
the same function.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BitParallelMatcher", "edit_distance_search"]


@dataclass(frozen=True)
class Occurrence:
    """One end position where the pattern matches within ``k`` edits."""

    end: int  # 1-based text position (matches the repo's j convention)
    distance: int


class BitParallelMatcher:
    """Myers' algorithm, prepared once per pattern.

    Usage::

        matcher = BitParallelMatcher("ACGTACGT")
        distances = matcher.distances("TTACGTACGTTT")
        hits = matcher.search(text, k=2)
    """

    def __init__(self, pattern: str) -> None:
        pattern = pattern.upper()
        if not pattern:
            raise ValueError("pattern must be non-empty")
        self.pattern = pattern
        self.m = len(pattern)
        self._mask = (1 << self.m) - 1
        # Per-character occurrence bit-vectors (Peq).
        peq: dict[str, int] = {}
        for i, ch in enumerate(pattern):
            peq[ch] = peq.get(ch, 0) | (1 << i)
        self._peq = peq

    def distances(self, text: str) -> list[int]:
        """Edit distance of the pattern to windows ending at each j.

        Returns a list of length ``len(text)``: entry ``j-1`` is the
        semi-global edit distance with the window ending at text
        position ``j`` (1-based).  O(len(text)) word operations.
        """
        text = text.upper()
        mask = self._mask
        top = 1 << (self.m - 1)
        VP = mask  # vertical deltas: +1 everywhere down column 0
        VN = 0
        score = self.m
        out: list[int] = []
        # Hyyrö's formulation of Myers' recurrence: D0 marks diagonal
        # zero-deltas, HP/HN the horizontal +1/-1 deltas, VP/VN the
        # next column's vertical deltas.
        # Hyyrö's formulation: Xh drives the horizontal deltas, Xv the
        # vertical feedback; the un-set bit 0 after the Ph/Mh shifts
        # encodes the free row-0 boundary of the semi-global search.
        for ch in text:
            EQ = self._peq.get(ch, 0)
            Xv = EQ | VN
            Xh = ((((EQ & VP) + VP) & mask) ^ VP) | EQ
            Ph = VN | (~(Xh | VP) & mask)
            Mh = VP & Xh
            if Ph & top:
                score += 1
            elif Mh & top:
                score -= 1
            Ph = (Ph << 1) & mask
            Mh = (Mh << 1) & mask
            VP = Mh | (~(Xv | Ph) & mask)
            VN = Ph & Xv
            out.append(score)
        return out

    def search(self, text: str, k: int) -> list[Occurrence]:
        """All end positions where the pattern occurs within ``k`` edits."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        return [
            Occurrence(end=j + 1, distance=d)
            for j, d in enumerate(self.distances(text))
            if d <= k
        ]

    def best(self, text: str) -> Occurrence:
        """The lowest-distance end position (earliest on ties)."""
        distances = self.distances(text)
        if not distances:
            return Occurrence(end=0, distance=self.m)
        best_j = min(range(len(distances)), key=lambda j: (distances[j], j))
        return Occurrence(end=best_j + 1, distance=distances[best_j])


def edit_distance_search(pattern: str, text: str, k: int) -> list[Occurrence]:
    """One-shot convenience wrapper around :class:`BitParallelMatcher`."""
    return BitParallelMatcher(pattern).search(text, k)
