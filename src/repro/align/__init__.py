"""Software alignment substrate: exact DP algorithms the paper builds on.

Contents map to the paper's section 2:

* scoring schemes and substitution matrices (section 2.1),
* the full-matrix Smith-Waterman oracle with traceback (section 2.2),
* linear-space score + coordinate kernels (section 2.3 phase 1),
* Hirschberg's linear-space global alignment ([15]),
* the complete linear-space local-alignment pipeline (section 2.3),
* Gotoh's affine-gap variant ([11]) used by the related-work models.
"""

from .divergence import (
    banded_global_align,
    local_align_banded,
    locate_with_divergence,
)
from .generic_dp import (
    Recurrence,
    edit_distance,
    lcs_length,
    smith_waterman_recurrence,
    sweep,
)
from .gotoh import gotoh_align, gotoh_locate_best, gotoh_score
from .hirschberg import hirschberg_align, hirschberg_crossing
from .local_linear import LocalPipelineResult, local_align_linear, locate_span
from .matrix import PTR_DIAG, PTR_LEFT, PTR_UP, SimilarityMatrix
from .myers_miller import (
    gotoh_cells_argmax,
    local_align_affine,
    myers_miller_align,
)
from .near_best import lane_candidates, near_best_alignments
from .needleman_wunsch import nw_align, nw_cells_argmax, nw_last_row, nw_score
from .scoring import (
    DEFAULT_DNA,
    DNA_ALPHABET,
    PROTEIN_ALPHABET,
    AffineScoring,
    LinearScoring,
    SubstitutionMatrix,
    blosum62,
    decode,
    encode,
)
from .semiglobal import semiglobal_align, semiglobal_locate
from .smith_waterman import LocalHit, sw_align, sw_locate_best, sw_score
from .traceback import GAP, Alignment
from .ukkonen import UkkonenResult, ukkonen_edit_distance

__all__ = [
    "GAP",
    "Alignment",
    "LocalHit",
    "LocalPipelineResult",
    "SimilarityMatrix",
    "PTR_DIAG",
    "PTR_LEFT",
    "PTR_UP",
    "LinearScoring",
    "AffineScoring",
    "SubstitutionMatrix",
    "DEFAULT_DNA",
    "DNA_ALPHABET",
    "PROTEIN_ALPHABET",
    "blosum62",
    "encode",
    "decode",
    "sw_align",
    "sw_score",
    "sw_locate_best",
    "nw_align",
    "nw_score",
    "nw_last_row",
    "nw_cells_argmax",
    "hirschberg_align",
    "hirschberg_crossing",
    "gotoh_align",
    "gotoh_score",
    "gotoh_locate_best",
    "local_align_linear",
    "locate_span",
    "near_best_alignments",
    "lane_candidates",
    "banded_global_align",
    "local_align_banded",
    "locate_with_divergence",
    "Recurrence",
    "sweep",
    "edit_distance",
    "lcs_length",
    "smith_waterman_recurrence",
    "myers_miller_align",
    "local_align_affine",
    "gotoh_cells_argmax",
    "semiglobal_align",
    "semiglobal_locate",
    "ukkonen_edit_distance",
    "UkkonenResult",
]
