"""Full dynamic-programming similarity matrix with traceback pointers.

This is the quadratic-space *reference oracle* of the repository: the
plain Smith-Waterman / Needleman-Wunsch recurrence of paper equation
(1), storing every cell and every traceback arrow.  It exists for three
reasons:

1. It is the ground truth that the linear-space kernels, the NumPy
   emulator and the cycle-accurate systolic simulator are all tested
   against (same scores, same coordinates).
2. It regenerates figure 2 of the paper (the similarity matrix for
   ``s=TATGGAC``, ``t=TAGTGACT`` with traceback arrows).
3. It quantifies the memory the paper's architecture *avoids*: a
   ``(m+1) x (n+1)`` matrix of scores plus pointers.

Orientation convention (used repo-wide): rows index ``s`` (``i`` in
``0..m``), columns index ``t`` (``j`` in ``0..n``).  ``D[i, j]`` is the
best score of an alignment ending at ``s[i]``/``t[j]`` (1-based prefix
semantics, exactly the paper's ``sim(s[1..i], t[1..j])``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .scoring import DEFAULT_DNA, LinearScoring, SubstitutionMatrix, encode
from .traceback import GAP, Alignment

__all__ = ["PTR_DIAG", "PTR_UP", "PTR_LEFT", "SimilarityMatrix"]

#: Pointer bit: value came from the diagonal (s[i] aligned to t[j]).
PTR_DIAG = 1
#: Pointer bit: value came from above (s[i] aligned to a gap in t).
PTR_UP = 2
#: Pointer bit: value came from the left (t[j] aligned to a gap in s).
PTR_LEFT = 4


@dataclass
class SimilarityMatrix:
    """Fully materialized similarity matrix for two sequences.

    Parameters
    ----------
    s, t:
        The sequences (strings; stored upper-cased).
    scheme:
        A :class:`~repro.align.scoring.LinearScoring` or
        :class:`~repro.align.scoring.SubstitutionMatrix`.
    local:
        ``True`` (default) fills with the Smith-Waterman recurrence
        (scores clamped at zero, first row/column zero); ``False``
        fills the Needleman-Wunsch global recurrence (first row/column
        are gap multiples and no clamping).
    """

    s: str
    t: str
    scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA
    local: bool = True

    def __post_init__(self) -> None:
        self.s = self.s.upper()
        self.t = self.t.upper()
        self._fill()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _fill(self) -> None:
        s_codes = encode(self.s)
        t_codes = encode(self.t)
        m, n = len(s_codes), len(t_codes)
        gap = self.scheme.gap
        D = np.zeros((m + 1, n + 1), dtype=np.int64)
        P = np.zeros((m + 1, n + 1), dtype=np.uint8)
        if not self.local:
            D[:, 0] = gap * np.arange(m + 1)
            D[0, :] = gap * np.arange(n + 1)
            P[1:, 0] = PTR_UP
            P[0, 1:] = PTR_LEFT
        for i in range(1, m + 1):
            pair_row = self.scheme.pair_vector(int(s_codes[i - 1]), t_codes)
            for j in range(1, n + 1):
                diag = D[i - 1, j - 1] + pair_row[j - 1]
                up = D[i - 1, j] + gap
                left = D[i, j - 1] + gap
                best = max(diag, up, left)
                if self.local and best < 0:
                    D[i, j] = 0
                    continue
                D[i, j] = best
                ptr = 0
                if diag == best:
                    ptr |= PTR_DIAG
                if up == best:
                    ptr |= PTR_UP
                if left == best:
                    ptr |= PTR_LEFT
                P[i, j] = ptr
        self.scores = D
        self.pointers = P

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.scores.shape

    def memory_bytes(self) -> int:
        """Bytes held by the materialized score + pointer arrays.

        This is the quadratic cost the paper's linear-space design
        eliminates (section 2.3: two 100 KBP sequences already need
        10 GB at 8 bits/cell... our int64 cells are even larger).
        """
        return self.scores.nbytes + self.pointers.nbytes

    def best(self) -> tuple[int, int, int]:
        """``(score, i, j)`` of the best cell.

        For local alignment: the maximum cell, ties broken by smallest
        ``i`` then smallest ``j`` (the first cell reached in row-major
        order — matching both the software baseline and the systolic
        controller's first-anti-diagonal-wins rule after projection).
        For global alignment: the bottom-right corner.
        """
        if not self.local:
            m, n = len(self.s), len(self.t)
            return int(self.scores[m, n]), m, n
        flat = int(np.argmax(self.scores))
        i, j = divmod(flat, self.scores.shape[1])
        return int(self.scores[i, j]), i, j

    def traceback_from(self, i: int, j: int) -> Alignment:
        """Follow pointer arrows from ``(i, j)`` and build the alignment.

        Local mode stops at the first zero cell; global mode stops at
        the origin.  When a cell holds several arrows (the paper notes
        "many best local alignments can exist"), the diagonal is
        preferred, then up, then left — a fixed, documented tie-break.
        """
        score = int(self.scores[i, j])
        s_frag: list[str] = []
        t_frag: list[str] = []
        while True:
            if self.local and self.scores[i, j] == 0:
                break
            if not self.local and i == 0 and j == 0:
                break
            ptr = int(self.pointers[i, j])
            if ptr & PTR_DIAG:
                s_frag.append(self.s[i - 1])
                t_frag.append(self.t[j - 1])
                i, j = i - 1, j - 1
            elif ptr & PTR_UP:
                s_frag.append(self.s[i - 1])
                t_frag.append(GAP)
                i -= 1
            elif ptr & PTR_LEFT:
                s_frag.append(GAP)
                t_frag.append(self.t[j - 1])
                j -= 1
            else:  # pragma: no cover - fill() always sets a pointer
                raise RuntimeError(f"no pointer at non-terminal cell ({i}, {j})")
        return Alignment(
            s_aligned="".join(reversed(s_frag)),
            t_aligned="".join(reversed(t_frag)),
            score=score,
            s_start=i,
            t_start=j,
        )

    def best_alignment(self) -> Alignment:
        """Traceback from :meth:`best`."""
        _, i, j = self.best()
        return self.traceback_from(i, j)

    def antidiagonal(self, k: int) -> np.ndarray:
        """Cells of anti-diagonal ``k`` (``i + j == k``) as a vector.

        Anti-diagonal ``k`` is exactly the set of cells the systolic
        array computes in parallel on one clock (figure 4); exposing it
        here lets the tests compare the simulator's per-cycle output
        against the oracle diagonal-by-diagonal.
        """
        m, n = len(self.s), len(self.t)
        lo = max(0, k - n)
        hi = min(k, m)
        i = np.arange(lo, hi + 1)
        return self.scores[i, k - i]

    # ------------------------------------------------------------------
    # Rendering (figure 2)
    # ------------------------------------------------------------------
    def render(self, arrows: bool = True, highlight_traceback: bool = True) -> str:
        """ASCII rendering of the matrix in the style of figure 2.

        Each cell shows its score; with ``arrows=True`` the incoming
        pointer arrows are shown (``\\`` diagonal, ``^`` up, ``<``
        left).  With ``highlight_traceback=True`` the cells on the
        best-alignment traceback path are bracketed.
        """
        m, n = len(self.s), len(self.t)
        on_path: set[tuple[int, int]] = set()
        if highlight_traceback:
            on_path = set(self._traceback_cells())
        width = max(5, int(np.abs(self.scores).max() >= 100) + 5)
        header = " " * 7 + "".join(f"{c:>{width + 3}}" for c in " " + self.t)
        lines = [header]
        for i in range(m + 1):
            row_label = self.s[i - 1] if i > 0 else " "
            cells = []
            for j in range(n + 1):
                mark = ""
                if arrows and (i > 0 or j > 0):
                    ptr = int(self.pointers[i, j])
                    mark += "\\" if ptr & PTR_DIAG else ""
                    mark += "^" if ptr & PTR_UP else ""
                    mark += "<" if ptr & PTR_LEFT else ""
                val = f"{int(self.scores[i, j])}"
                cell = f"{mark}{val}"
                if (i, j) in on_path:
                    cell = f"[{cell}]"
                cells.append(f"{cell:>{width + 3}}")
            lines.append(f"{row_label:>4}   " + "".join(cells))
        return "\n".join(lines)

    def _traceback_cells(self) -> list[tuple[int, int]]:
        """Cells visited by the preferred traceback from the best cell."""
        _, i, j = self.best()
        cells = [(i, j)]
        while True:
            if self.local and self.scores[i, j] == 0:
                break
            if not self.local and i == 0 and j == 0:
                break
            ptr = int(self.pointers[i, j])
            if ptr & PTR_DIAG:
                i, j = i - 1, j - 1
            elif ptr & PTR_UP:
                i -= 1
            elif ptr & PTR_LEFT:
                j -= 1
            else:  # pragma: no cover
                break
            cells.append((i, j))
        return cells
