"""Semi-global alignment: whole query vs a window of the database.

The third classic DP variant after local and global — the query must
align end-to-end, the database contributes any window for free.  It is
the natural mode for the paper's architecture (section 5 fixes the
*whole* query in the elements and streams the database), and the mode
read mapping wants: a sequencing read either maps somewhere in the
reference or it does not.

Recurrence differences from Smith-Waterman (equation (1)):

* column 0 costs gaps (``D[i, 0] = i * gap``) — skipping query
  characters is penalized;
* row 0 stays zero — the alignment may start anywhere in the database;
* no zero clamp;
* the answer is the maximum of the **last row** (the whole query
  consumed), not of the whole matrix.

Hardware mapping: the same systolic array computes this with three
configuration bits — element ``k``'s ``A``/``B`` registers load
``k * gap`` boundaries instead of 0 (the column-0 init), the zero
clamp is disabled, and the readout takes the maximum of the drained
last row instead of the lane registers.
:meth:`repro.core.accelerator.SWAccelerator.locate_semiglobal` runs
exactly that configuration on both engines, pinned to this module's
kernels by property tests.
"""

from __future__ import annotations

import numpy as np

from .scoring import DEFAULT_DNA, LinearScoring, SubstitutionMatrix, encode
from .smith_waterman import LocalHit
from .traceback import Alignment

__all__ = ["semiglobal_locate", "semiglobal_align"]


def semiglobal_locate(
    s: str | np.ndarray,
    t: str | np.ndarray,
    scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
) -> LocalHit:
    """Best semi-global score and end coordinates, linear space.

    ``hit.i`` is always ``len(s)`` (the query is consumed entirely);
    ``hit.j`` is the 1-based database position where the alignment
    ends.  Ties prefer the smallest ``j``.  An empty query scores 0 at
    ``(0, 0)``; an empty database forces an all-gap alignment.
    """
    s_codes = encode(s)
    t_codes = encode(t)
    m, n = len(s_codes), len(t_codes)
    if m == 0:
        return LocalHit(0, 0, 0)
    gap = scheme.gap
    if n == 0:
        return LocalHit(gap * m, m, 0)
    steps = gap * np.arange(0, n + 1, dtype=np.int64)
    prev = np.zeros(n + 1, dtype=np.int64)  # row 0: free start
    cur = np.empty(n + 1, dtype=np.int64)
    h = np.empty(n + 1, dtype=np.int64)
    for i in range(1, m + 1):
        pair_row = scheme.pair_vector(int(s_codes[i - 1]), t_codes)
        h[0] = gap * i
        np.maximum(prev[:-1] + pair_row, prev[1:] + gap, out=h[1:])
        cur[:] = np.maximum.accumulate(h - steps) + steps
        prev, cur = cur, prev
    best_j = int(np.argmax(prev))
    return LocalHit(int(prev[best_j]), m, best_j)


def semiglobal_align(
    s: str,
    t: str,
    scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
) -> Alignment:
    """Optimal semi-global alignment with traceback (quadratic space).

    The query spans ``s`` entirely (``s_start = 0``, ``s_end =
    len(s)``); ``t_start``/``t_end`` delimit the matched database
    window.  For long references prefer :func:`semiglobal_locate` plus
    a windowed re-alignment.
    """
    s = s.upper()
    t = t.upper()
    s_codes = encode(s)
    t_codes = encode(t)
    m, n = len(s_codes), len(t_codes)
    gap = scheme.gap
    D = np.zeros((m + 1, n + 1), dtype=np.int64)
    D[:, 0] = gap * np.arange(m + 1)
    # Row 0 is zeros: free database prefix.
    for i in range(1, m + 1):
        pair_row = scheme.pair_vector(int(s_codes[i - 1]), t_codes)
        for j in range(1, n + 1):
            D[i, j] = max(
                D[i - 1, j - 1] + pair_row[j - 1],
                D[i - 1, j] + gap,
                D[i, j - 1] + gap,
            )
    end_j = int(np.argmax(D[m, :]))
    score = int(D[m, end_j])
    # Traceback to row 0 (any column).
    i, j = m, end_j
    s_frag: list[str] = []
    t_frag: list[str] = []
    while i > 0:
        if j > 0 and D[i, j] == D[i - 1, j - 1] + scheme.pair(
            int(s_codes[i - 1]), int(t_codes[j - 1])
        ):
            s_frag.append(s[i - 1])
            t_frag.append(t[j - 1])
            i, j = i - 1, j - 1
        elif D[i, j] == D[i - 1, j] + gap:
            s_frag.append(s[i - 1])
            t_frag.append("-")
            i -= 1
        else:
            s_frag.append("-")
            t_frag.append(t[j - 1])
            j -= 1
    return Alignment(
        s_aligned="".join(reversed(s_frag)),
        t_aligned="".join(reversed(t_frag)),
        score=score,
        s_start=0,
        t_start=j,
    )
