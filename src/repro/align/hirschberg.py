"""Hirschberg's linear-space global alignment (paper reference [15]).

The divide-and-conquer of Hirschberg (1975) retrieves an *optimal
global alignment* — not just its score — in ``O(m + n)`` space:

1. Split ``s`` at its midpoint ``mid``.
2. Compute the last row of the global DP matrix of ``s[:mid]`` vs
   ``t`` (forward) and of ``reversed(s[mid:])`` vs ``reversed(t)``
   (backward), both in linear space (:func:`~repro.align.needleman_wunsch.nw_last_row`).
3. The crossing column ``k`` maximizing ``forward[k] + backward[n-k]``
   lies on an optimal alignment; recurse on the two quadrants.

The paper uses this (via Myers & Miller [25] and Gusfield [14]) as the
*software* half of its hardware/software co-design: the FPGA finds
where the best local alignment starts and ends, then Hirschberg
retrieves the alignment between those coordinates in linear space —
"This approach can double the execution time, in the average case"
(section 2.3), which the A1 ablation benchmark measures.
"""

from __future__ import annotations

import numpy as np

from .needleman_wunsch import nw_align, nw_last_row
from .scoring import DEFAULT_DNA, LinearScoring, SubstitutionMatrix, decode, encode
from .traceback import Alignment

__all__ = ["hirschberg_align", "hirschberg_crossing"]


def hirschberg_crossing(
    s_codes: np.ndarray,
    t_codes: np.ndarray,
    mid: int,
    scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
) -> int:
    """Optimal crossing column of row ``mid`` (the split point).

    Returns the ``k`` maximizing ``NW(s[:mid], t[:k]) +
    NW(rev(s[mid:]), rev(t[k:]))``; ties resolved to the smallest
    ``k`` so the recursion is deterministic.
    """
    forward = nw_last_row(s_codes[:mid], t_codes, scheme)
    backward = nw_last_row(s_codes[mid:][::-1].copy(), t_codes[::-1].copy(), scheme)
    totals = forward + backward[::-1]
    return int(np.argmax(totals))


def _hirschberg(
    s_codes: np.ndarray,
    t_codes: np.ndarray,
    scheme: LinearScoring | SubstitutionMatrix,
    parts_s: list[str],
    parts_t: list[str],
) -> None:
    """Recursive worker appending aligned fragments in order."""
    m, n = len(s_codes), len(t_codes)
    if m <= 1 or n <= 1:
        # Base case: a single row or column — the full matrix is
        # already linear-sized, so use the exact DP directly.
        if m == 0 and n == 0:
            return
        base = nw_align(decode(s_codes), decode(t_codes), scheme)
        parts_s.append(base.s_aligned)
        parts_t.append(base.t_aligned)
        return
    mid = m // 2
    k = hirschberg_crossing(s_codes, t_codes, mid, scheme)
    _hirschberg(s_codes[:mid], t_codes[:k], scheme, parts_s, parts_t)
    _hirschberg(s_codes[mid:], t_codes[k:], scheme, parts_s, parts_t)


def hirschberg_align(
    s: str, t: str, scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA
) -> Alignment:
    """Optimal global alignment of ``s`` and ``t`` in linear space.

    Produces an :class:`~repro.align.traceback.Alignment` whose audited
    score equals the Needleman-Wunsch optimum (a property test in the
    suite).  The alignment chosen among equal-scoring optima depends on
    the deterministic tie-breaks documented in
    :func:`hirschberg_crossing` and the base-case DP.
    """
    s = s.upper()
    t = t.upper()
    s_codes = encode(s)
    t_codes = encode(t)
    parts_s: list[str] = []
    parts_t: list[str] = []
    _hirschberg(s_codes, t_codes, scheme, parts_s, parts_t)
    s_aligned = "".join(parts_s)
    t_aligned = "".join(parts_t)
    # Score the assembled alignment; Alignment.audit_score is the
    # single source of truth for scoring a gapped pair.
    aln = Alignment(s_aligned, t_aligned, score=0)
    score = aln.audit_score(scheme)
    return Alignment(s_aligned, t_aligned, score=score)
