"""Myers-Miller: optimal affine-gap alignment in linear space
(paper reference [25]).

Section 2.3 credits Myers & Miller with observing that Hirschberg's
divide-and-conquer retrieves alignments in linear space; their 1988
algorithm is the affine-gap version, which plain Hirschberg cannot do
(a gap run crossing the split row would pay its open penalty twice).
The fix is the classic two-state crossing test: alongside the usual
best-score rows ``CC``, carry rows ``DD`` for alignments *ending in an
open deletion run* (query character against gap), and at the split
choose between

* a type-1 crossing — ``CC_fwd[j] + CC_bwd[n-j]`` (no run crosses), and
* a type-2 crossing — ``DD_fwd[j] + DD_bwd[n-j] - open-correction``
  (one deletion run spans the split; the double-counted open is
  refunded and the two split rows are emitted as an explicit gap
  column each),

with boundary parameters ``tb``/``te`` telling each recursive call
whether a deletion run is already open at its top/bottom edge.

Implementation notes: internally this works in *cost* form (cost =
-score) with ``gap(k) = g + h*k`` where ``g = extend - open >= 0`` and
``h = -extend > 0`` — the affine shape Myers & Miller assume.  The
result converts back to a score-form :class:`Alignment` whose audited
score equals Gotoh's global optimum (property-tested).

``local_align_affine`` composes the affine locate kernels with this
retrieval into the full section-2.3 pipeline for affine gaps — the
software the affine hardware variant (:mod:`repro.core.affine`) would
serve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .gotoh import gotoh_locate_best
from .scoring import AffineScoring, encode
from .smith_waterman import LocalHit
from .traceback import GAP, Alignment

__all__ = ["myers_miller_align", "gotoh_cells_argmax", "local_align_affine"]

_INF = float(1 << 50)


@dataclass(frozen=True)
class _Costs:
    """Cost-form parameters: sub(a, b), gap(k) = g + h*k."""

    scheme: AffineScoring

    @property
    def g(self) -> int:
        return self.scheme.gap_extend - self.scheme.gap_open  # >= 0

    @property
    def h(self) -> int:
        return -self.scheme.gap_extend  # > 0

    def sub(self, a: str, b: str) -> int:
        return -self.scheme.pair(a, b)

    def gap(self, k: int) -> int:
        return self.g + self.h * k if k > 0 else 0


def _forward_rows(
    A: str, B: str, tb: float, costs: _Costs
) -> tuple[np.ndarray, np.ndarray]:
    """Last rows (CC, DD) of the cost DP of ``A`` vs ``B``.

    ``CC[j]`` = min cost of aligning all of ``A`` with ``B[:j]``;
    ``DD[j]`` = same but the alignment ends in an open deletion run
    (last ``A`` character against a gap).  ``tb`` is the open cost a
    deletion starting at the top boundary pays (``g`` normally, ``0``
    when the caller's run is already open).
    """
    m, n = len(A), len(B)
    g, h = costs.g, costs.h
    CC = np.empty(n + 1, dtype=np.float64)
    DD = np.empty(n + 1, dtype=np.float64)
    CC[0] = 0.0
    for j in range(1, n + 1):
        CC[j] = g + h * j
    DD[:] = CC + tb  # virtual already-opened state above row 1
    for i in range(1, m + 1):
        prev_c0 = CC[0]
        CC[0] = costs.gap(i) if tb == g else tb + h * i
        # Recompute row: e tracks the insertion state (horizontal).
        e = _INF
        diag = prev_c0
        for j in range(1, n + 1):
            e = min(e, CC[j - 1] + g) + h
            DD[j] = min(DD[j], CC[j] + g) + h
            c = min(DD[j], e, diag + costs.sub(A[i - 1], B[j - 1]))
            diag = CC[j]
            CC[j] = c
        DD[0] = CC[0]  # a pure-deletion prefix is itself an open run
    return CC, DD


def _mm(
    A: str,
    B: str,
    tb: float,
    te: float,
    costs: _Costs,
    out_a: list[str],
    out_b: list[str],
) -> float:
    """Recursive Myers-Miller; appends aligned fragments, returns cost."""
    m, n = len(A), len(B)
    g, h = costs.g, costs.h
    if n == 0:
        if m > 0:
            out_a.append(A)
            out_b.append(GAP * m)
            return min(tb, te) + h * m
        return 0.0
    if m == 0:
        out_a.append(GAP * n)
        out_b.append(B)
        return costs.gap(n)
    if m == 1:
        # Either A[0] is deleted (all of B inserted), or A[0] matches
        # some B[j] with insertions around it.
        best = min(tb, te) + h + costs.gap(n)
        best_j = -1
        for j in range(n):
            cand = costs.gap(j) + costs.sub(A[0], B[j]) + costs.gap(n - 1 - j)
            if cand < best:
                best = cand
                best_j = j
        if best_j < 0:
            out_a.append(A + GAP * n)
            out_b.append(GAP + B)
        else:
            out_a.append(GAP * best_j + A[0] + GAP * (n - 1 - best_j))
            out_b.append(B)
        return best
    mid = m // 2
    CC_f, DD_f = _forward_rows(A[:mid], B, tb, costs)
    CC_b, DD_b = _forward_rows(A[mid:][::-1], B[::-1], te, costs)
    # Crossing search.
    best = _INF
    best_j = 0
    best_type = 1
    for j in range(n + 1):
        t1 = CC_f[j] + CC_b[n - j]
        t2 = DD_f[j] + DD_b[n - j] - g
        if t1 <= t2:
            if t1 < best:
                best, best_j, best_type = t1, j, 1
        else:
            if t2 < best:
                best, best_j, best_type = t2, j, 2
    j = best_j
    if best_type == 1:
        _mm(A[:mid], B[:j], tb, g, costs, out_a, out_b)
        _mm(A[mid:], B[j:], g, te, costs, out_a, out_b)
    else:
        # A deletion run crosses the split: rows mid and mid+1 are
        # both gap columns; the flanking recursions are told the run
        # is already open at their shared boundary (cost 0 to extend).
        _mm(A[: mid - 1], B[:j], tb, 0.0, costs, out_a, out_b)
        out_a.append(A[mid - 1 : mid + 1])
        out_b.append(GAP * 2)
        _mm(A[mid + 1 :], B[j:], 0.0, te, costs, out_a, out_b)
    return best


def myers_miller_align(s: str, t: str, scheme: AffineScoring) -> Alignment:
    """Optimal affine-gap *global* alignment in linear space.

    The affine analogue of
    :func:`~repro.align.hirschberg.hirschberg_align`; audited score
    equals ``gotoh_align(s, t, scheme, local=False).score``.
    """
    s = s.upper()
    t = t.upper()
    costs = _Costs(scheme)
    out_a: list[str] = []
    out_b: list[str] = []
    _mm(s, t, costs.g, costs.g, costs, out_a, out_b)
    s_aligned = "".join(out_a)
    t_aligned = "".join(out_b)
    aln = Alignment(s_aligned, t_aligned, score=0)
    return Alignment(s_aligned, t_aligned, score=aln.audit_score(scheme))


def gotoh_cells_argmax(
    s: str | np.ndarray, t: str | np.ndarray, scheme: AffineScoring
) -> LocalHit:
    """Max over all interior cells of the affine *global* DP matrix.

    The affine analogue of
    :func:`~repro.align.needleman_wunsch.nw_cells_argmax` — the
    anchored sweep that converts an optimal start into an exact end.
    Linear space; repo tie-break.
    """
    s_codes = encode(s)
    t_codes = encode(t)
    m, n = len(s_codes), len(t_codes)
    if m == 0 or n == 0:
        return LocalHit(0, 0, 0)
    open_, ext = scheme.gap_open, scheme.gap_extend
    NEG = -(1 << 40)
    prev_d = np.empty(n + 1, dtype=np.int64)
    prev_d[0] = 0
    for j in range(1, n + 1):
        prev_d[j] = open_ + (j - 1) * ext
    prev_f = np.full(n + 1, NEG, dtype=np.int64)
    best = LocalHit(NEG, 0, 0)
    for i in range(1, m + 1):
        cur_d = np.empty(n + 1, dtype=np.int64)
        cur_d[0] = open_ + (i - 1) * ext
        e = NEG
        f_row = np.maximum(prev_d + open_, prev_f + ext)
        for j in range(1, n + 1):
            e = max(cur_d[j - 1] + open_, e + ext)
            diag = prev_d[j - 1] + scheme.pair(int(s_codes[i - 1]), int(t_codes[j - 1]))
            v = max(diag, e, int(f_row[j]))
            cur_d[j] = v
            if v > best.score:
                best = LocalHit(int(v), i, j)
        prev_d, prev_f = cur_d, f_row
    return best


def local_align_affine(
    s: str, t: str, scheme: AffineScoring
) -> tuple[Alignment, LocalHit]:
    """Optimal affine-gap *local* alignment in linear space.

    The section-2.3 pipeline for affine gaps: Gotoh locate forward,
    Gotoh locate on the reversed prefixes, anchored affine sweep for
    the exact end, Myers-Miller retrieval of the bracketed region.
    Returns ``(alignment, forward_hit)``; the audited score equals
    ``gotoh_score(s, t, scheme)``.
    """
    s = s.upper()
    t = t.upper()
    forward = gotoh_locate_best(s, t, scheme)
    if forward.score <= 0:
        return Alignment("", "", 0), forward
    i_end, j_end = forward.i, forward.j
    reverse = gotoh_locate_best(s[:i_end][::-1], t[:j_end][::-1], scheme)
    if reverse.score != forward.score:
        raise AssertionError(
            f"affine reverse duality violated: {reverse.score} != {forward.score}"
        )
    a = i_end - reverse.i
    b = j_end - reverse.j
    anchored = gotoh_cells_argmax(s[a:i_end], t[b:j_end], scheme)
    if anchored.score != forward.score:
        raise AssertionError(
            f"affine anchored sweep lost the optimum: {anchored.score} != {forward.score}"
        )
    e_i = a + anchored.i
    e_j = b + anchored.j
    inner = myers_miller_align(s[a:e_i], t[b:e_j], scheme)
    if inner.score != forward.score:
        raise AssertionError(
            f"Myers-Miller retrieval mismatch: {inner.score} != {forward.score}"
        )
    return (
        Alignment(
            inner.s_aligned,
            inner.t_aligned,
            inner.score,
            s_start=a,
            t_start=b,
        ),
        forward,
    )
