"""Alignment representation, auditing and pretty-printing.

Every algorithm in :mod:`repro.align` that retrieves an actual
alignment returns an :class:`Alignment`.  The object is deliberately
self-auditing: it stores the gapped strings *and* the claimed score and
coordinates, and :meth:`Alignment.audit_score` /
:meth:`Alignment.validate` recompute everything from first principles.
The test-suite leans on this heavily — any DP bookkeeping bug that
produces an inconsistent alignment is caught at the object boundary
rather than deep inside a kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .scoring import AffineScoring, LinearScoring, SubstitutionMatrix

__all__ = ["Alignment", "GAP"]

#: Gap character used in aligned strings.
GAP = "-"


@dataclass(frozen=True)
class Alignment:
    """A pairwise alignment between slices of two sequences.

    Attributes
    ----------
    s_aligned, t_aligned:
        The aligned strings, equal length, with :data:`GAP` characters
        inserted.  ``s_aligned`` with gaps removed equals
        ``s[s_start:s_end]``, likewise for ``t``.
    score:
        The score claimed by the producing algorithm.
    s_start, s_end, t_start, t_end:
        0-based half-open coordinates of the aligned region in the
        *original* (ungapped) sequences.  For a global alignment these
        span the whole sequences.
    """

    s_aligned: str
    t_aligned: str
    score: int
    s_start: int = 0
    s_end: int = field(default=-1)
    t_start: int = 0
    t_end: int = field(default=-1)

    def __post_init__(self) -> None:
        if len(self.s_aligned) != len(self.t_aligned):
            raise ValueError(
                "aligned strings differ in length: "
                f"{len(self.s_aligned)} vs {len(self.t_aligned)}"
            )
        # Default end coordinates from the gapped strings themselves.
        if self.s_end == -1:
            object.__setattr__(
                self, "s_end", self.s_start + self._ungapped_len(self.s_aligned)
            )
        if self.t_end == -1:
            object.__setattr__(
                self, "t_end", self.t_start + self._ungapped_len(self.t_aligned)
            )
        for col, (a, b) in enumerate(zip(self.s_aligned, self.t_aligned)):
            if a == GAP and b == GAP:
                raise ValueError(f"column {col} aligns a gap against a gap")

    @staticmethod
    def _ungapped_len(aligned: str) -> int:
        return len(aligned) - aligned.count(GAP)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of alignment columns."""
        return len(self.s_aligned)

    @property
    def s_slice(self) -> str:
        """The s-side of the alignment with gaps removed."""
        return self.s_aligned.replace(GAP, "")

    @property
    def t_slice(self) -> str:
        """The t-side of the alignment with gaps removed."""
        return self.t_aligned.replace(GAP, "")

    def columns(self) -> list[tuple[str, str]]:
        """The alignment as a list of character-pair columns."""
        return list(zip(self.s_aligned, self.t_aligned))

    def matches(self) -> int:
        """Number of identical (match) columns."""
        return sum(
            1 for a, b in zip(self.s_aligned, self.t_aligned) if a == b and a != GAP
        )

    def mismatches(self) -> int:
        """Number of substitution (mismatch, non-gap) columns."""
        return sum(
            1
            for a, b in zip(self.s_aligned, self.t_aligned)
            if a != b and a != GAP and b != GAP
        )

    def gaps(self) -> int:
        """Number of gap characters across both rows."""
        return self.s_aligned.count(GAP) + self.t_aligned.count(GAP)

    def identity(self) -> float:
        """Fraction of columns that are matches (0.0 for empty)."""
        return self.matches() / len(self) if len(self) else 0.0

    def cigar(self) -> str:
        """Compact CIGAR string: ``M`` match/mismatch, ``I`` insertion
        in s (gap in t), ``D`` deletion from s (gap in s)."""
        ops: list[str] = []
        for a, b in zip(self.s_aligned, self.t_aligned):
            if a == GAP:
                ops.append("D")
            elif b == GAP:
                ops.append("I")
            else:
                ops.append("M")
        out: list[str] = []
        i = 0
        while i < len(ops):
            j = i
            while j < len(ops) and ops[j] == ops[i]:
                j += 1
            out.append(f"{j - i}{ops[i]}")
            i = j
        return "".join(out)

    # ------------------------------------------------------------------
    # Auditing
    # ------------------------------------------------------------------
    def audit_score(
        self, scheme: "LinearScoring | AffineScoring | SubstitutionMatrix"
    ) -> int:
        """Recompute the score of this alignment from its columns.

        Handles both linear and affine schemes: for affine schemes a
        run of ``k`` gaps costs ``gap_open + (k - 1) * gap_extend``.
        """
        from .scoring import AffineScoring  # local import avoids a cycle

        total = 0
        if isinstance(scheme, AffineScoring):
            in_gap_s = in_gap_t = False
            for a, b in zip(self.s_aligned, self.t_aligned):
                if a == GAP:
                    total += scheme.gap_extend if in_gap_s else scheme.gap_open
                    in_gap_s, in_gap_t = True, False
                elif b == GAP:
                    total += scheme.gap_extend if in_gap_t else scheme.gap_open
                    in_gap_s, in_gap_t = False, True
                else:
                    total += scheme.pair(a, b)
                    in_gap_s = in_gap_t = False
            return total
        for a, b in zip(self.s_aligned, self.t_aligned):
            if a == GAP or b == GAP:
                total += scheme.gap
            else:
                total += scheme.pair(a, b)
        return total

    def validate(self, s: str, t: str) -> None:
        """Check internal consistency against the original sequences.

        Raises ``ValueError`` on the first inconsistency: coordinates
        out of range, or gapped strings that do not reproduce the
        claimed slices of ``s`` and ``t``.
        """
        s, t = s.upper(), t.upper()
        if not (0 <= self.s_start <= self.s_end <= len(s)):
            raise ValueError(
                f"s coordinates [{self.s_start}, {self.s_end}) out of range for |s|={len(s)}"
            )
        if not (0 <= self.t_start <= self.t_end <= len(t)):
            raise ValueError(
                f"t coordinates [{self.t_start}, {self.t_end}) out of range for |t|={len(t)}"
            )
        if self.s_slice != s[self.s_start : self.s_end]:
            raise ValueError(
                "s side of alignment does not match s[%d:%d]"
                % (self.s_start, self.s_end)
            )
        if self.t_slice != t[self.t_start : self.t_end]:
            raise ValueError(
                "t side of alignment does not match t[%d:%d]"
                % (self.t_start, self.t_end)
            )

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def midline(self) -> str:
        """The classic midline: ``|`` match, ``.`` mismatch, space gap."""
        out = []
        for a, b in zip(self.s_aligned, self.t_aligned):
            if a == GAP or b == GAP:
                out.append(" ")
            elif a == b:
                out.append("|")
            else:
                out.append(".")
        return "".join(out)

    def pretty(self, width: int = 60) -> str:
        """Multi-line rendering in blocks of ``width`` columns.

        Mirrors figure 1 of the paper (sequences above one another with
        the score); coordinates shown are 1-based positions in the
        original sequences, the convention of the similarity matrix.
        """
        mid = self.midline()
        blocks: list[str] = []
        s_pos, t_pos = self.s_start, self.t_start
        for off in range(0, max(len(self), 1), width):
            sa = self.s_aligned[off : off + width]
            ta = self.t_aligned[off : off + width]
            ml = mid[off : off + width]
            s_adv = len(sa) - sa.count(GAP)
            t_adv = len(ta) - ta.count(GAP)
            blocks.append(
                "\n".join(
                    (
                        f"s {s_pos + 1:>8}  {sa}",
                        f"            {ml}",
                        f"t {t_pos + 1:>8}  {ta}",
                    )
                )
            )
            s_pos += s_adv
            t_pos += t_adv
        header = (
            f"score={self.score}  s[{self.s_start + 1}..{self.s_end}]"
            f"  t[{self.t_start + 1}..{self.t_end}]"
            f"  identity={self.identity():.1%}  cigar={self.cigar()}"
        )
        return header + "\n" + "\n\n".join(blocks)

    def __str__(self) -> str:  # pragma: no cover - delegation
        return self.pretty()
