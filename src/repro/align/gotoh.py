"""Gotoh's affine-gap alignment (paper reference [11]).

The paper's own hardware scores with a *linear* gap model, but the
systems it positions itself against — Z-align [3], the cluster
algorithm of [4], the XC2V6000 design [32/2] — use the affine model
``g(k) = gap_open + (k - 1) * gap_extend``.  This module provides that
substrate so the baselines and the Table 1 models can be exercised
with the same gap semantics those papers report.

Three DP matrices (Gotoh 1982):

* ``D[i, j]`` — best score ending with ``s[i]`` aligned to ``t[j]`` or
  a higher-level max (the "main" matrix),
* ``E[i, j]`` — best score ending with a gap in ``s`` (horizontal run),
* ``F[i, j]`` — best score ending with a gap in ``t`` (vertical run).

The linear-space locate kernel vectorizes the within-row dependency of
``E`` with the affine variant of the max-plus scan:

    ``E[i, j] = max_{k < j} ( D[i, k] + open + (j - 1 - k) * extend )``
              ``= cummax( D[i, k] - k * extend )[j-1] + open + (j - 1) * extend``

which again needs one :func:`numpy.maximum.accumulate` per row.
"""

from __future__ import annotations

import numpy as np

from .scoring import AffineScoring, encode
from .smith_waterman import LocalHit
from .traceback import GAP, Alignment

__all__ = ["gotoh_locate_best", "gotoh_score", "gotoh_align"]

_NEG = np.int64(-(1 << 40))  # effectively -infinity, safe from overflow


def gotoh_locate_best(
    s: str | np.ndarray, t: str | np.ndarray, scheme: AffineScoring
) -> LocalHit:
    """Best affine-gap local score and end coordinates, linear space.

    The affine analogue of
    :func:`repro.align.smith_waterman.sw_locate_best`; same coordinate
    and tie-break conventions (1-based, smallest ``i`` then ``j``).
    """
    s_codes = encode(s)
    t_codes = encode(t)
    m, n = len(s_codes), len(t_codes)
    if m == 0 or n == 0:
        return LocalHit(0, 0, 0)
    open_, ext = scheme.gap_open, scheme.gap_extend
    prev_d = np.zeros(n + 1, dtype=np.int64)
    prev_f = np.full(n + 1, _NEG, dtype=np.int64)
    k_steps = ext * np.arange(0, n + 1, dtype=np.int64)  # k * extend
    best = LocalHit(0, 0, 0)
    hk = np.empty(n + 1, dtype=np.int64)
    for i in range(1, m + 1):
        pair_row = scheme.pair_vector(int(s_codes[i - 1]), t_codes)
        # F: vertical gap runs — column-independent, fully vectorized.
        f = np.maximum(prev_d + open_, prev_f + ext)
        # Tentative cell values before horizontal (E) competition:
        # h[j] = max(0, diagonal, F).  Clamping here is exact because a
        # gap run never usefully re-opens from an E-derived value
        # (open <= extend), so E's scan only needs these h sources.
        h = np.maximum(prev_d[:-1] + pair_row, f[1:])
        np.maximum(h, 0, out=h)
        # E[j] = max_{k<j}(D[k] + open + (j-1-k)*ext) with D-sources h
        # (plus D[i,0] = 0): one cumulative-max scan per row.
        hk[0] = 0
        hk[1:] = h
        cum = np.maximum.accumulate(hk - k_steps)
        d = np.empty(n + 1, dtype=np.int64)
        d[0] = 0
        e = cum[:-1] + open_ + k_steps[:-1]  # k_steps[j-1] supplies (j-1)*ext
        d[1:] = np.maximum(h, e)
        row_best_j = int(np.argmax(d[1:])) + 1
        row_best = int(d[row_best_j])
        if row_best > best.score:
            best = LocalHit(row_best, i, row_best_j)
        prev_d, prev_f = d, f
    return best


def gotoh_score(s: str, t: str, scheme: AffineScoring) -> int:
    """Best affine-gap local alignment score, linear space."""
    return gotoh_locate_best(s, t, scheme).score


def gotoh_align(s: str, t: str, scheme: AffineScoring, local: bool = True) -> Alignment:
    """Optimal affine-gap alignment with traceback (quadratic space).

    ``local=True`` gives the Smith-Waterman-style local variant (zero
    clamp, traceback from the maximum cell to the first zero);
    ``local=False`` gives the global variant (corner to corner).
    """
    s = str(s).upper()
    t = str(t).upper()
    s_codes = encode(s)
    t_codes = encode(t)
    m, n = len(s_codes), len(t_codes)
    open_, ext = scheme.gap_open, scheme.gap_extend

    D = np.full((m + 1, n + 1), _NEG, dtype=np.int64)
    E = np.full((m + 1, n + 1), _NEG, dtype=np.int64)  # gap in s (left moves)
    F = np.full((m + 1, n + 1), _NEG, dtype=np.int64)  # gap in t (up moves)
    D[0, 0] = 0
    if local:
        D[0, :] = 0
        D[:, 0] = 0
    else:
        for j in range(1, n + 1):
            E[0, j] = open_ + (j - 1) * ext
            D[0, j] = E[0, j]
        for i in range(1, m + 1):
            F[i, 0] = open_ + (i - 1) * ext
            D[i, 0] = F[i, 0]

    for i in range(1, m + 1):
        pair_row = scheme.pair_vector(int(s_codes[i - 1]), t_codes)
        for j in range(1, n + 1):
            E[i, j] = max(D[i, j - 1] + open_, E[i, j - 1] + ext)
            F[i, j] = max(D[i - 1, j] + open_, F[i - 1, j] + ext)
            diag = D[i - 1, j - 1] + pair_row[j - 1]
            v = max(diag, E[i, j], F[i, j])
            if local and v < 0:
                v = 0
            D[i, j] = v

    if local:
        flat = int(np.argmax(D))
        bi, bj = divmod(flat, n + 1)
        score = int(D[bi, bj])
    else:
        bi, bj = m, n
        score = int(D[m, n])

    # Traceback across the three matrices.  State 'D' means the score
    # came from the main matrix; 'E'/'F' mean we are inside a gap run.
    s_frag: list[str] = []
    t_frag: list[str] = []
    i, j, state = bi, bj, "D"
    while True:
        if local and state == "D" and D[i, j] == 0:
            break
        if i == 0 and j == 0:
            break
        if state == "D":
            if not local and i == 0:
                state = "E"
                continue
            if not local and j == 0:
                state = "F"
                continue
            pair = scheme.pair(int(s_codes[i - 1]), int(t_codes[j - 1])) if i and j else _NEG
            if i and j and D[i, j] == D[i - 1, j - 1] + pair:
                s_frag.append(s[i - 1])
                t_frag.append(t[j - 1])
                i, j = i - 1, j - 1
            elif D[i, j] == F[i, j]:
                state = "F"
            elif D[i, j] == E[i, j]:
                state = "E"
            else:  # pragma: no cover - recurrence guarantees a source
                raise RuntimeError(f"broken traceback at D[{i},{j}]")
        elif state == "E":  # gap in s, consume t[j]
            s_frag.append(GAP)
            t_frag.append(t[j - 1])
            came_open = D[i, j - 1] + open_
            j -= 1
            if E[i, j + 1] == came_open:
                state = "D"
        else:  # state == "F": gap in t, consume s[i]
            s_frag.append(s[i - 1])
            t_frag.append(GAP)
            came_open = D[i - 1, j] + open_
            i -= 1
            if F[i + 1, j] == came_open:
                state = "D"
    return Alignment(
        s_aligned="".join(reversed(s_frag)),
        t_aligned="".join(reversed(t_frag)),
        score=score,
        s_start=i,
        t_start=j,
    )
