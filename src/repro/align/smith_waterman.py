"""Smith-Waterman local alignment: full-matrix and linear-space kernels.

Two families of entry points:

* :func:`sw_align` / :func:`sw_score` — quadratic-space reference built
  on :class:`~repro.align.matrix.SimilarityMatrix`; used for ground
  truth and alignment retrieval on small inputs.
* :func:`sw_locate_best` — the **linear-space score + coordinates**
  computation that is the subject of the paper: it sweeps the matrix
  one row at a time, keeping only the previous row, and returns the
  best score together with its ``(i, j)`` position.  This is exactly
  the work the FPGA systolic array performs (phase one of section 2.3);
  the software version here doubles as the paper's "optimized C
  program" baseline (see :mod:`repro.baselines.software`).

The row sweep is vectorized with the max-plus prefix-scan identity: for
a linear gap penalty ``g < 0``, with ``H[j] = max(0, diag_j, up_j)``
computed elementwise,

    ``D[i, j] = max_{k <= j} ( H[k] + (j - k) * g )``

because expanding the within-row dependency ``D[i, j-1] + g``
recursively yields exactly that maximum, zero-clamped paths being
dominated by the ``k = j`` term (``H[j] >= 0``).  The scan is computed
as ``cummax(H - j*g) + j*g`` — one :func:`numpy.maximum.accumulate`
per row, no Python-level inner loop.

Coordinate and tie-break convention (repo-wide): coordinates are
1-based indices into the similarity matrix (``i in 1..m`` rows of
``s``, ``j in 1..n`` columns of ``t``); among equal best scores the
smallest ``i`` wins, then the smallest ``j``.  Every implementation in
the repository (oracle matrix, NumPy emulator, RTL systolic simulator)
resolves ties identically, so coordinates can be compared exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .matrix import SimilarityMatrix
from .scoring import DEFAULT_DNA, LinearScoring, SubstitutionMatrix, encode
from .traceback import Alignment

__all__ = ["LocalHit", "sw_score", "sw_align", "sw_locate_best", "sw_row_sweep"]


@dataclass(frozen=True, order=True)
class LocalHit:
    """Best-score location: the accelerator's three-word output.

    ``score`` is the similarity of the best local alignment; ``i`` and
    ``j`` are the 1-based similarity-matrix coordinates of the cell
    where it ends (``i`` indexes ``s``, ``j`` indexes ``t``).  This is
    precisely the information the paper's circuit ships back to the
    host over the PCI bus ("only a few bytes", section 6).
    """

    score: int
    i: int
    j: int

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.score, self.i, self.j)


def sw_score(s: str, t: str, scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA) -> int:
    """Best local-alignment score (linear space)."""
    return sw_locate_best(s, t, scheme).score


def sw_align(
    s: str, t: str, scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA
) -> Alignment:
    """Best local alignment via the full-matrix oracle.

    Quadratic space — intended for small inputs and testing.  For long
    sequences use :func:`repro.align.local_linear.local_align_linear`,
    which retrieves the same alignment in linear space.
    """
    return SimilarityMatrix(s, t, scheme, local=True).best_alignment()


def sw_row_sweep(
    s_codes: np.ndarray,
    t_codes: np.ndarray,
    scheme: LinearScoring | SubstitutionMatrix,
    initial_row: np.ndarray | None = None,
) -> tuple[np.ndarray, LocalHit]:
    """Sweep the local-alignment recurrence row by row.

    Parameters
    ----------
    s_codes, t_codes:
        Encoded sequences (see :func:`repro.align.scoring.encode`).
    scheme:
        Scoring scheme with a linear ``gap`` penalty.
    initial_row:
        Row 0 of the sweep region (length ``len(t_codes) + 1``).  The
        default is all zeros (fresh SW).  The query-partitioning logic
        of the accelerator passes the boundary row of the previous
        chunk here, which is what makes chunked evaluation exact
        (figure 7 of the paper).

    Returns
    -------
    (last_row, hit):
        The final DP row (needed to chain partitions) and the best
        :class:`LocalHit` *within the swept rows* — ``hit.i`` counts
        from 1 at the first swept row.
    """
    m, n = len(s_codes), len(t_codes)
    gap = scheme.gap
    if initial_row is None:
        prev = np.zeros(n + 1, dtype=np.int64)
    else:
        prev = np.asarray(initial_row, dtype=np.int64)
        if prev.shape != (n + 1,):
            raise ValueError(
                f"initial_row must have length {n + 1}, got {prev.shape}"
            )
    best_score = 0
    best_i = 0
    best_j = 0
    if n == 0 or m == 0:
        # Degenerate sweeps (empty segment or empty chunk) preserve
        # the boundary row unchanged and contribute no candidates.
        return prev.copy(), LocalHit(0, 0, 0)
    offsets = gap * np.arange(1, n + 1, dtype=np.int64)
    cur = np.zeros(n + 1, dtype=np.int64)
    for i in range(1, m + 1):
        pair_row = scheme.pair_vector(int(s_codes[i - 1]), t_codes)
        # H[j] = max(0, diagonal, up) for j = 1..n (elementwise).
        h = np.maximum(prev[:-1] + pair_row, prev[1:] + gap)
        np.maximum(h, 0, out=h)
        # Horizontal propagation via the max-plus prefix scan.
        cur[0] = 0
        cur[1:] = np.maximum.accumulate(h - offsets) + offsets
        row_best_j = int(np.argmax(cur[1:])) + 1
        row_best = int(cur[row_best_j])
        if row_best > best_score:
            best_score, best_i, best_j = row_best, i, row_best_j
        prev, cur = cur, prev
    return prev.copy(), LocalHit(best_score, best_i, best_j)


def sw_locate_best(
    s: str | np.ndarray,
    t: str | np.ndarray,
    scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
) -> LocalHit:
    """Best local-alignment score and end coordinates, in linear space.

    This is phase one of the paper's section 2.3 pipeline — the
    operation the FPGA accelerates.  Memory use is ``O(n)`` regardless
    of ``m`` (two DP rows).  Empty sequences yield ``LocalHit(0, 0, 0)``.
    """
    s_codes = encode(s)
    t_codes = encode(t)
    if len(s_codes) == 0 or len(t_codes) == 0:
        return LocalHit(0, 0, 0)
    _, hit = sw_row_sweep(s_codes, t_codes, scheme)
    return hit
