"""Local alignment retrieval in linear space (paper section 2.3).

This module implements the complete hardware/software pipeline the
paper's architecture is designed for:

1. **Forward locate** — compute the whole similarity matrix in linear
   space, keeping only the best score and its *end* coordinates
   ``(i_end, j_end)``.  In the paper this is the phase offloaded to the
   FPGA; in software it is
   :func:`~repro.align.smith_waterman.sw_locate_best`.
2. **Reverse locate** — repeat over the *reversed prefixes*
   ``rev(s[:i_end])``, ``rev(t[:j_end])``; the best hit's coordinates
   map back to the *start* ``(a, b)`` of an optimal local alignment
   ("the similarity array is re-calculated from the highest score
   position over the reverses of the sequences").  The same systolic
   array executes this pass unchanged.
3. **End anchoring** — the reverse pass proves ``(a, b)`` starts *some*
   optimal alignment, but that alignment's end need not be
   ``(i_end, j_end)`` when several optima exist.  A linear-space
   anchored sweep (:func:`~repro.align.needleman_wunsch.nw_cells_argmax`
   over the suffixes ``s[a:i_end]``, ``t[b:j_end]``) finds the exact
   end ``(e_i, e_j)`` of the alignment starting at ``(a, b)``.
4. **Hirschberg retrieval** — with both endpoints known, "this problem
   is transformed into a global alignment problem and Hirschberg's
   algorithm can be used": globally align ``s[a:e_i]`` vs
   ``t[b:e_j]`` in linear space.

Every step is ``O(min-side)`` memory; the returned alignment's audited
score equals the Smith-Waterman optimum (verified by property tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from .hirschberg import hirschberg_align
from .needleman_wunsch import nw_cells_argmax
from .scoring import DEFAULT_DNA, LinearScoring, SubstitutionMatrix
from .smith_waterman import LocalHit, sw_locate_best
from .traceback import Alignment

__all__ = ["LocateFn", "LocalPipelineResult", "locate_span", "local_align_linear"]


class LocateFn(Protocol):
    """Signature of a locate kernel: best score + end coordinates.

    Both the software kernel
    (:func:`~repro.align.smith_waterman.sw_locate_best`) and the
    accelerator front-end
    (:meth:`repro.core.accelerator.SWAccelerator.locate`) satisfy this,
    which is how the hardware plugs into the software pipeline.
    """

    def __call__(
        self, s: str, t: str, scheme: LinearScoring | SubstitutionMatrix
    ) -> LocalHit: ...


@dataclass(frozen=True)
class LocalPipelineResult:
    """Everything the four-phase pipeline produced.

    ``alignment`` carries the final answer; the intermediate hits are
    kept because they are the quantities the paper's hardware actually
    emits (and the tests assert about them).
    """

    alignment: Alignment
    forward_hit: LocalHit
    reverse_hit: LocalHit
    span: tuple[int, int, int, int]  # (s_start, s_end, t_start, t_end), 0-based half-open


def locate_span(
    s: str,
    t: str,
    scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
    locate: Callable[..., LocalHit] | None = None,
) -> tuple[LocalHit, LocalHit, tuple[int, int, int, int]]:
    """Phases 1-3: find the exact span of an optimal local alignment.

    Returns ``(forward_hit, reverse_hit, (a, e_i, b, e_j))`` with the
    span in 0-based half-open coordinates: the optimal alignment covers
    ``s[a:e_i]`` and ``t[b:e_j]``.  A zero-score forward hit (no
    positive-scoring alignment exists) yields the empty span
    ``(0, 0, 0, 0)``.
    """
    if locate is None:
        locate = sw_locate_best
    s = s.upper()
    t = t.upper()
    forward = locate(s, t, scheme)
    if forward.score <= 0:
        return forward, LocalHit(0, 0, 0), (0, 0, 0, 0)
    i_end, j_end = forward.i, forward.j
    # Phase 2: the same kernel over the reversed prefixes.
    s_rev = s[:i_end][::-1]
    t_rev = t[:j_end][::-1]
    reverse = locate(s_rev, t_rev, scheme)
    if reverse.score != forward.score:
        raise AssertionError(
            "reverse-pass duality violated: forward score "
            f"{forward.score} != reverse score {reverse.score}"
        )
    a = i_end - reverse.i  # 0-based start in s
    b = j_end - reverse.j  # 0-based start in t
    # Phase 3: anchor the end of the alignment that starts at (a, b).
    anchored = nw_cells_argmax(s[a:i_end], t[b:j_end], scheme)
    if anchored.score != forward.score:
        raise AssertionError(
            "anchored sweep lost the optimum: expected "
            f"{forward.score}, got {anchored.score}"
        )
    e_i = a + anchored.i
    e_j = b + anchored.j
    return forward, reverse, (a, e_i, b, e_j)


def local_align_linear(
    s: str,
    t: str,
    scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
    locate: Callable[..., LocalHit] | None = None,
) -> LocalPipelineResult:
    """Optimal local alignment of ``s`` vs ``t`` in linear space.

    ``locate`` selects the phase-1/2 kernel — pass
    ``SWAccelerator(...).locate`` to run those phases on the simulated
    FPGA exactly as the paper's co-design intends, or leave the default
    to run fully in software.  The result's audited score equals
    ``sw_score(s, t, scheme)``.
    """
    s = s.upper()
    t = t.upper()
    forward, reverse, (a, e_i, b, e_j) = locate_span(s, t, scheme, locate)
    if forward.score <= 0:
        empty = Alignment("", "", score=0)
        return LocalPipelineResult(empty, forward, reverse, (0, 0, 0, 0))
    inner = hirschberg_align(s[a:e_i], t[b:e_j], scheme)
    if inner.score != forward.score:
        raise AssertionError(
            "Hirschberg retrieval score mismatch: expected "
            f"{forward.score}, got {inner.score}"
        )
    aligned = Alignment(
        s_aligned=inner.s_aligned,
        t_aligned=inner.t_aligned,
        score=inner.score,
        s_start=a,
        t_start=b,
    )
    return LocalPipelineResult(aligned, forward, reverse, (a, e_i, b, e_j))
