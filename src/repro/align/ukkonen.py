"""Ukkonen's band-doubling edit distance — O(n·d) exact computation.

The third classic attack on the DP dependency structure, alongside the
paper's spatial parallelism and Myers' word parallelism: *don't
compute cells that cannot matter*.  For unit-cost edit distance, every
cell further than ``d`` diagonals from the main diagonal exceeds
distance ``d``, so evaluating a band of width ``2t+1`` and doubling
``t`` until the result is internally consistent costs ``O(n * d)``
instead of ``O(n * m)`` — a huge win for similar sequences.

This rounds out the repository's survey of how the same recurrence is
accelerated in hardware (systolic array), in word-parallel software
(:mod:`repro.baselines.bitparallel`) and in work-sparing software
(here); the S2 benchmark family compares them on one workload.

Validated against :func:`repro.align.generic_dp.edit_distance` by
property tests; the band accounting is exposed so tests can verify the
O(n·d) cell bound actually holds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .scoring import encode

__all__ = ["UkkonenResult", "ukkonen_edit_distance"]

_BIG = 1 << 30


@dataclass(frozen=True)
class UkkonenResult:
    """Distance plus the work accounting of the doubling search."""

    distance: int
    band_radius: int  # final threshold t
    cells_evaluated: int
    rounds: int

    def cell_bound_ok(self, m: int, n: int) -> bool:
        """The O(n·d) promise: cells <= c * max(m, n) * (d + 1)."""
        longest = max(m, n, 1)
        return self.cells_evaluated <= 8 * longest * (self.distance + 1)


def _banded_distance(
    s_codes: np.ndarray, t_codes: np.ndarray, t_limit: int
) -> tuple[int, int]:
    """Edit distance within band ``|j - i| <= t_limit``.

    Returns ``(distance, cells)``; the distance is exact when it is
    ``<= t_limit`` (otherwise the band may have clipped the optimum,
    and the caller doubles the threshold).
    """
    m, n = len(s_codes), len(t_codes)
    prev = np.full(n + 1, _BIG, dtype=np.int64)
    lo0 = 0
    hi0 = min(n, t_limit)
    prev[lo0 : hi0 + 1] = np.arange(lo0, hi0 + 1)
    cells = hi0 - lo0 + 1
    for i in range(1, m + 1):
        cur = np.full(n + 1, _BIG, dtype=np.int64)
        lo = max(0, i - t_limit)
        hi = min(n, i + t_limit)
        if lo > hi:
            return _BIG, cells
        for j in range(lo, hi + 1):
            if j == 0:
                cur[0] = i
            else:
                cost = 0 if s_codes[i - 1] == t_codes[j - 1] else 1
                cur[j] = min(prev[j - 1] + cost, prev[j] + 1, cur[j - 1] + 1)
        cells += hi - lo + 1
        prev = cur
    return int(prev[n]), cells


def ukkonen_edit_distance(s: str, t: str) -> UkkonenResult:
    """Exact Levenshtein distance by band doubling.

    Starts from a threshold covering the unavoidable length
    difference, doubles until the banded result is itself within the
    band (then it is provably exact).  Equal sequences cost one O(n)
    sweep.
    """
    s_codes = encode(s)
    t_codes = encode(t)
    m, n = len(s_codes), len(t_codes)
    if m == 0 or n == 0:
        return UkkonenResult(distance=max(m, n), band_radius=0, cells_evaluated=0, rounds=0)
    t_limit = max(1, abs(n - m))
    total_cells = 0
    rounds = 0
    while True:
        rounds += 1
        distance, cells = _banded_distance(s_codes, t_codes, t_limit)
        total_cells += cells
        # Exact when within the threshold, or when the band already
        # covered the whole matrix (nothing was clipped).
        if distance <= t_limit or t_limit >= max(m, n):
            return UkkonenResult(
                distance=distance,
                band_radius=t_limit,
                cells_evaluated=total_cells,
                rounds=rounds,
            )
        t_limit = min(t_limit * 2, max(m, n))
