"""Scoring schemes for pairwise sequence alignment.

The paper (section 2.1) uses a *linear gap* model with the classic
DNA scoring of +1 for a match, -1 for a mismatch and -2 per gap
character.  The hardware datapath of figure 6 carries exactly these
three constants as the ``Co`` (coincidence), ``Su`` (substitution) and
``In/Re`` (insertion/removal) inputs of each processing element, so the
:class:`LinearScoring` scheme is the one the accelerator implements.

For the software substrate we additionally provide

* :class:`AffineScoring` — the Gotoh affine-gap model ``g(k) = open +
  (k-1) * extend`` used by several of the related-work architectures
  the paper compares against, and
* :class:`SubstitutionMatrix` — general alphabet-indexed substitution
  scores (unitary DNA matrix, BLOSUM62 for proteins), so that the
  protein workloads of Table 1 (SAMBA, PROSIDIS) can be expressed.

All schemes are immutable value objects; they can be shared freely
between the software algorithms, the NumPy emulator and the
cycle-accurate RTL simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

__all__ = [
    "DNA_ALPHABET",
    "PROTEIN_ALPHABET",
    "LinearScoring",
    "AffineScoring",
    "SubstitutionMatrix",
    "DEFAULT_DNA",
    "blosum62",
    "encode",
    "decode",
]

#: Canonical nucleotide alphabet used by the generators and examples.
DNA_ALPHABET = "ACGT"

#: The 20 standard amino acids, in the conventional BLOSUM ordering.
PROTEIN_ALPHABET = "ARNDCQEGHILKMFPSTWYV"


def encode(seq: str | bytes | np.ndarray) -> np.ndarray:
    """Encode a sequence as a NumPy ``uint8`` array of ASCII codes.

    Encoding once up front lets every inner DP kernel compare raw bytes
    with vectorized ``==`` instead of Python-level character compares.
    ``str`` input is upper-cased first, so ``"acgt"`` and ``"ACGT"``
    encode identically.  NumPy arrays pass through (cast to ``uint8``).
    """
    if isinstance(seq, np.ndarray):
        return np.ascontiguousarray(seq, dtype=np.uint8)
    if isinstance(seq, str):
        seq = seq.upper().encode("ascii")
    return np.frombuffer(bytes(seq), dtype=np.uint8).copy()


def decode(arr: np.ndarray) -> str:
    """Inverse of :func:`encode`: ASCII codes back to a Python string."""
    return bytes(np.asarray(arr, dtype=np.uint8)).decode("ascii")


@dataclass(frozen=True)
class LinearScoring:
    """Match / mismatch / linear-gap scoring (paper equation (1)).

    Attributes
    ----------
    match:
        Score added when the two characters are identical (``Co`` in
        figure 6).  Must be positive for local alignment to be
        meaningful.
    mismatch:
        Score added when the characters differ (``Su``).  Normally
        negative.
    gap:
        Score added per gap character (``In/Re``).  Normally negative;
        stored as the signed value, i.e. the paper's "-2 gap penalty"
        is ``gap=-2``.
    """

    match: int = 1
    mismatch: int = -1
    gap: int = -2

    def __post_init__(self) -> None:
        if self.match <= 0:
            raise ValueError(f"match score must be positive, got {self.match}")
        if self.mismatch >= self.match:
            raise ValueError(
                f"mismatch score ({self.mismatch}) must be below match ({self.match})"
            )
        if self.gap >= 0:
            raise ValueError(f"gap penalty must be negative, got {self.gap}")

    def pair(self, a: int | str, b: int | str) -> int:
        """Score of aligning character ``a`` against character ``b``."""
        if isinstance(a, str):
            a = ord(a.upper())
        if isinstance(b, str):
            b = ord(b.upper())
        return self.match if a == b else self.mismatch

    def pair_vector(self, a: int, t: np.ndarray) -> np.ndarray:
        """Vector of pair scores of one character against a sequence."""
        return np.where(t == a, self.match, self.mismatch).astype(np.int64)

    def substitution_rows(self, s: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Dense ``len(s) x len(t)`` substitution-score matrix.

        Used by the row-sweeping NumPy kernels; for very long ``t`` the
        kernels call :meth:`pair_vector` per row instead to stay in
        linear memory.
        """
        return np.where(
            s[:, None] == t[None, :], self.match, self.mismatch
        ).astype(np.int64)


@dataclass(frozen=True)
class AffineScoring:
    """Affine-gap scoring ``g(k) = gap_open + (k - 1) * gap_extend``.

    ``gap_open`` is the (negative) cost of the *first* gap character of
    a run and ``gap_extend`` the cost of each subsequent one.  With
    ``gap_open == gap_extend`` this degenerates to :class:`LinearScoring`
    — a property the test-suite checks against the Gotoh implementation.
    """

    match: int = 1
    mismatch: int = -1
    gap_open: int = -3
    gap_extend: int = -1

    def __post_init__(self) -> None:
        if self.match <= 0:
            raise ValueError(f"match score must be positive, got {self.match}")
        if self.gap_open >= 0 or self.gap_extend >= 0:
            raise ValueError(
                "gap_open and gap_extend must be negative, got "
                f"{self.gap_open}/{self.gap_extend}"
            )
        if self.gap_extend < self.gap_open:
            raise ValueError(
                "gap_extend must not be more costly than gap_open "
                f"(got open={self.gap_open}, extend={self.gap_extend})"
            )

    def pair(self, a: int | str, b: int | str) -> int:
        if isinstance(a, str):
            a = ord(a.upper())
        if isinstance(b, str):
            b = ord(b.upper())
        return self.match if a == b else self.mismatch

    def pair_vector(self, a: int, t: np.ndarray) -> np.ndarray:
        return np.where(t == a, self.match, self.mismatch).astype(np.int64)

    def linear_equivalent(self) -> LinearScoring:
        """The linear scheme this degenerates to when open == extend.

        Raises ``ValueError`` when the scheme is genuinely affine.
        """
        if self.gap_open != self.gap_extend:
            raise ValueError(
                "affine scheme with open != extend has no linear equivalent"
            )
        return LinearScoring(self.match, self.mismatch, self.gap_open)


class SubstitutionMatrix:
    """Alphabet-indexed substitution scores with a linear gap penalty.

    Generalizes :class:`LinearScoring` to arbitrary per-pair scores
    (e.g. BLOSUM62).  Internally stored as a dense 256x256 ``int64``
    lookup table indexed by ASCII code, so the DP kernels can gather
    scores with plain NumPy fancy indexing.
    """

    def __init__(
        self,
        alphabet: str,
        scores: Mapping[tuple[str, str], int],
        gap: int = -2,
        name: str = "custom",
    ) -> None:
        if gap >= 0:
            raise ValueError(f"gap penalty must be negative, got {gap}")
        self.alphabet = alphabet
        self.gap = gap
        self.name = name
        table = np.zeros((256, 256), dtype=np.int64)
        seen = set()
        for (a, b), v in scores.items():
            ia, ib = ord(a.upper()), ord(b.upper())
            table[ia, ib] = v
            table[ib, ia] = v
            seen.add(a.upper())
            seen.add(b.upper())
        missing = set(alphabet.upper()) - seen
        if missing:
            raise ValueError(f"no scores provided for alphabet symbols {sorted(missing)}")
        self._table = table

    def pair(self, a: int | str, b: int | str) -> int:
        if isinstance(a, str):
            a = ord(a.upper())
        if isinstance(b, str):
            b = ord(b.upper())
        return int(self._table[a, b])

    def pair_vector(self, a: int, t: np.ndarray) -> np.ndarray:
        return self._table[a, t]

    def substitution_rows(self, s: np.ndarray, t: np.ndarray) -> np.ndarray:
        return self._table[s[:, None], t[None, :]]

    def max_score(self) -> int:
        """Largest pair score over the declared alphabet (for bounds)."""
        codes = encode(self.alphabet)
        return int(self._table[np.ix_(codes, codes)].max())

    def with_mask_penalty(self, chars: str, penalty: int | None = None) -> "SubstitutionMatrix":
        """A copy where ``chars`` score ``penalty`` against everything.

        Used by the near-best iteration to make mask sentinels
        unalignable: the default table scores unknown characters 0,
        which would let alignments cross masked spans for free.  The
        default penalty is one below the most negative alphabet score.
        """
        if penalty is None:
            codes = encode(self.alphabet)
            penalty = int(self._table[np.ix_(codes, codes)].min()) - 1
        if penalty >= 0:
            raise ValueError(f"mask penalty must be negative, got {penalty}")
        clone = SubstitutionMatrix.__new__(SubstitutionMatrix)
        clone.alphabet = self.alphabet
        clone.gap = self.gap
        clone.name = f"{self.name}+mask"
        table = self._table.copy()
        for ch in chars:
            code = ord(ch.upper())
            table[code, :] = penalty
            table[:, code] = penalty
        clone._table = table
        return clone

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SubstitutionMatrix({self.name!r}, |alphabet|={len(self.alphabet)}, gap={self.gap})"


#: The scheme used throughout the paper: +1 / -1 / -2.
DEFAULT_DNA = LinearScoring(match=1, mismatch=-1, gap=-2)


# BLOSUM62 in compact row-major upper-triangle form, standard ordering
# ARNDCQEGHILKMFPSTWYV.  Values from Henikoff & Henikoff (1992).
_BLOSUM62_ROWS = [
    # A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
    [4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0],
    [-1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3],
    [-2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3],
    [-2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3],
    [0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1],
    [-1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2],
    [-1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2],
    [0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3],
    [-2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3],
    [-1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3],
    [-1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1],
    [-1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2],
    [-1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1],
    [-2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1],
    [-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2],
    [1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2],
    [0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0],
    [-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3],
    [-2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -2],
    [0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -2, 4],
]


def blosum62(gap: int = -8) -> SubstitutionMatrix:
    """The BLOSUM62 substitution matrix with a linear gap penalty.

    The related-work protein architectures of Table 1 (SAMBA, PROSIDIS)
    score amino-acid comparisons; this gives the software substrate the
    same vocabulary.  ``gap=-8`` is a conventional linear penalty used
    with BLOSUM62.
    """
    scores: dict[tuple[str, str], int] = {}
    for i, a in enumerate(PROTEIN_ALPHABET):
        for j, b in enumerate(PROTEIN_ALPHABET):
            if j < i:
                continue
            scores[(a, b)] = _BLOSUM62_ROWS[i][j]
    return SubstitutionMatrix(PROTEIN_ALPHABET, scores, gap=gap, name="BLOSUM62")
