"""General dynamic programming over the wavefront structure (ref [17]).

The paper's own group frames the systolic array as an instance of a
broader family: "Reconfigurable systems for sequence alignment and for
general dynamic programming" (reference [17]).  Any recurrence of the
form

    ``D[i, j] = f( D[i-1, j-1], D[i-1, j], D[i, j-1], s[i], t[j] )``

with boundary generators for row 0 and column 0 has the same
anti-diagonal dependency structure and therefore maps onto the same
wavefront/systolic machinery.  This module captures that family:

* :class:`Recurrence` — the cell function plus boundaries and the
  reduction that defines the problem's "answer";
* :func:`sweep` — a linear-space evaluator for any instance;
* ready-made instances: Smith-Waterman (cross-checked against the
  dedicated kernel), Needleman-Wunsch, **edit distance** and **longest
  common subsequence** — the two classic non-alignment members of the
  family, each validated against an independent implementation.

The point is architectural: everything in :mod:`repro.core` that made
Smith-Waterman systolic (anti-diagonal parallelism, row-boundary
partitioning) applies verbatim to any :class:`Recurrence`, which is
how the paper's architecture earns the "general dynamic programming"
claim of its lineage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .scoring import DEFAULT_DNA, LinearScoring, encode

__all__ = [
    "Recurrence",
    "SweepResult",
    "sweep",
    "smith_waterman_recurrence",
    "needleman_wunsch_recurrence",
    "edit_distance_recurrence",
    "lcs_recurrence",
    "edit_distance",
    "lcs_length",
]


@dataclass(frozen=True)
class Recurrence:
    """One member of the wavefront-DP family.

    ``cell(diag, up, left, a, b)`` computes ``D[i, j]`` from its three
    predecessors and the two characters (ASCII codes).  ``row0(j)``
    and ``col0(i)`` generate the boundaries.  ``better(x, y)`` returns
    True when ``x`` is a better answer than ``y`` (maximization for
    similarity, minimization for distance); ``answer`` selects what
    the sweep reports: ``"best"`` (best cell anywhere, local-style) or
    ``"corner"`` (bottom-right, global-style).
    """

    name: str
    cell: Callable[[int, int, int, int, int], int]
    row0: Callable[[int], int]
    col0: Callable[[int], int]
    better: Callable[[int, int], bool]
    answer: str = "corner"

    def __post_init__(self) -> None:
        if self.answer not in ("best", "corner"):
            raise ValueError(f"answer must be 'best' or 'corner', got {self.answer!r}")


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one linear-space sweep."""

    value: int
    i: int
    j: int
    last_row: np.ndarray


def sweep(recurrence: Recurrence, s: str, t: str) -> SweepResult:
    """Evaluate a recurrence over ``s`` x ``t`` in linear space.

    Python-looped on purpose: the cell function is arbitrary, so there
    is no generic vectorization — exactly the situation where the
    paper's architecture (one cell function synthesized per element)
    shines over a CPU.
    """
    s_codes = encode(s)
    t_codes = encode(t)
    m, n = len(s_codes), len(t_codes)
    prev = np.array([recurrence.row0(j) for j in range(n + 1)], dtype=np.int64)
    if m == 0:
        value, j = _reduce_row(recurrence, prev, 0)
        if recurrence.answer == "corner":
            return SweepResult(int(prev[n]), 0, n, prev)
        return SweepResult(value, 0, j, prev)
    best_value = None
    best_i = best_j = 0
    cur = np.empty(n + 1, dtype=np.int64)
    for i in range(1, m + 1):
        cur[0] = recurrence.col0(i)
        a = int(s_codes[i - 1])
        for j in range(1, n + 1):
            cur[j] = recurrence.cell(
                int(prev[j - 1]), int(prev[j]), int(cur[j - 1]), a, int(t_codes[j - 1])
            )
        if recurrence.answer == "best":
            value, j = _reduce_row(recurrence, cur, i)
            if best_value is None or recurrence.better(value, best_value):
                best_value, best_i, best_j = value, i, j
        prev, cur = cur.copy(), prev
    if recurrence.answer == "corner":
        return SweepResult(int(prev[n]), m, n, prev)
    assert best_value is not None
    return SweepResult(best_value, best_i, best_j, prev)


def _reduce_row(recurrence: Recurrence, row: np.ndarray, i: int) -> tuple[int, int]:
    best = int(row[0])
    best_j = 0
    for j in range(1, len(row)):
        if recurrence.better(int(row[j]), best):
            best = int(row[j])
            best_j = j
    return best, best_j


# ----------------------------------------------------------------------
# Instances
# ----------------------------------------------------------------------
def smith_waterman_recurrence(scheme: LinearScoring = DEFAULT_DNA) -> Recurrence:
    """Equation (1) of the paper as a :class:`Recurrence` instance."""

    def cell(diag: int, up: int, left: int, a: int, b: int) -> int:
        p = scheme.match if a == b else scheme.mismatch
        return max(0, diag + p, up + scheme.gap, left + scheme.gap)

    return Recurrence(
        name="smith-waterman",
        cell=cell,
        row0=lambda j: 0,
        col0=lambda i: 0,
        better=lambda x, y: x > y,
        answer="best",
    )


def needleman_wunsch_recurrence(scheme: LinearScoring = DEFAULT_DNA) -> Recurrence:
    """Global alignment as an instance."""

    def cell(diag: int, up: int, left: int, a: int, b: int) -> int:
        p = scheme.match if a == b else scheme.mismatch
        return max(diag + p, up + scheme.gap, left + scheme.gap)

    return Recurrence(
        name="needleman-wunsch",
        cell=cell,
        row0=lambda j: scheme.gap * j,
        col0=lambda i: scheme.gap * i,
        better=lambda x, y: x > y,
        answer="corner",
    )


def edit_distance_recurrence() -> Recurrence:
    """Levenshtein distance (minimization)."""

    def cell(diag: int, up: int, left: int, a: int, b: int) -> int:
        return min(diag + (0 if a == b else 1), up + 1, left + 1)

    return Recurrence(
        name="edit-distance",
        cell=cell,
        row0=lambda j: j,
        col0=lambda i: i,
        better=lambda x, y: x < y,
        answer="corner",
    )


def lcs_recurrence() -> Recurrence:
    """Longest common subsequence length."""

    def cell(diag: int, up: int, left: int, a: int, b: int) -> int:
        if a == b:
            return diag + 1
        return max(up, left)

    return Recurrence(
        name="lcs",
        cell=cell,
        row0=lambda j: 0,
        col0=lambda i: 0,
        better=lambda x, y: x > y,
        answer="corner",
    )


def edit_distance(s: str, t: str) -> int:
    """Levenshtein distance via the generic sweep."""
    return sweep(edit_distance_recurrence(), s, t).value


def lcs_length(s: str, t: str) -> int:
    """LCS length via the generic sweep."""
    return sweep(lcs_recurrence(), s, t).value
