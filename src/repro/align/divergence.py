"""Divergence-bounded alignment retrieval (Z-align [3], phase 4).

Section 2.4 on Z-align: "In this phase, the number of diagonals needed
to obtain the alignments (superior and inferior divergences) is also
calculated.  ...the alignment is retrieved using the superior and
inferior divergences.  This phase executes in user-restricted memory
space."

The idea: while sweeping the matrix in linear space, also track, for
the best path into each cell, how far above (*superior*) and below
(*inferior*) its start diagonal it wanders.  Retrieval then runs a
**banded** global alignment confined to those diagonals — memory
``O(band x length)`` instead of ``O(m x n)``, with the band chosen by
measurement rather than guesswork, which is what lets the user cap
memory ("user-restricted") without losing exactness.

Provided here:

* :func:`locate_with_divergence` — linear-space locate that also
  returns the best path's diagonal envelope;
* :func:`banded_global_align` — exact global DP restricted to a
  diagonal band, with traceback and memory accounting;
* :func:`local_align_banded` — the full pipeline: forward locate with
  divergences, reverse locate for the start, banded retrieval; the
  result's audited score equals the Smith-Waterman optimum
  (property-tested), using a fraction of the quadratic memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .scoring import DEFAULT_DNA, LinearScoring, SubstitutionMatrix, encode
from .smith_waterman import LocalHit, sw_locate_best
from .traceback import GAP, Alignment

__all__ = [
    "DivergenceHit",
    "locate_with_divergence",
    "banded_global_align",
    "local_align_banded",
]

_NEG = -(1 << 40)


@dataclass(frozen=True)
class DivergenceHit:
    """A locate result plus the best path's diagonal envelope.

    ``sup``/``inf`` are the superior and inferior divergences: the
    maximum excursion of the best path's diagonal ``j - i`` above and
    below the diagonal of its *endpoint*.  The optimal alignment's
    path is guaranteed to stay within ``[end_diag - inf, end_diag +
    sup]``.
    """

    hit: LocalHit
    sup: int
    inf: int

    @property
    def band_width(self) -> int:
        """Diagonals the retrieval band must cover."""
        return self.sup + self.inf + 1


def locate_with_divergence(
    s: str,
    t: str,
    scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
) -> DivergenceHit:
    """Linear-space locate that also measures path divergences.

    Tracks, per cell, the min/max diagonal along the best path into
    that cell (ties resolved with the repo-wide preference diag > up >
    left, matching the traceback).  Memory: four rows.  Time: O(mn)
    with a per-cell Python loop — the metadata breaks the scan
    vectorization, which is precisely why Z-align computes this on a
    cluster; our workloads are simulator-scale.
    """
    s = s.upper()
    t = t.upper()
    s_codes = encode(s)
    t_codes = encode(t)
    m, n = len(s_codes), len(t_codes)
    if m == 0 or n == 0:
        return DivergenceHit(LocalHit(0, 0, 0), 0, 0)
    gap = scheme.gap
    prev = np.zeros(n + 1, dtype=np.int64)
    prev_lo = np.zeros(n + 1, dtype=np.int64)  # min diagonal on best path
    prev_hi = np.zeros(n + 1, dtype=np.int64)  # max diagonal on best path
    best = LocalHit(0, 0, 0)
    best_lo = best_hi = 0
    for i in range(1, m + 1):
        cur = np.zeros(n + 1, dtype=np.int64)
        cur_lo = np.zeros(n + 1, dtype=np.int64)
        cur_hi = np.zeros(n + 1, dtype=np.int64)
        pair_row = scheme.pair_vector(int(s_codes[i - 1]), t_codes)
        for j in range(1, n + 1):
            diag_score = prev[j - 1] + pair_row[j - 1]
            up_score = prev[j] + gap
            left_score = cur[j - 1] + gap
            k = j - i  # this cell's diagonal
            v = max(int(diag_score), int(up_score), int(left_score), 0)
            cur[j] = v
            if v == 0:
                cur_lo[j] = k
                cur_hi[j] = k
            elif v == diag_score:
                cur_lo[j] = min(prev_lo[j - 1], k)
                cur_hi[j] = max(prev_hi[j - 1], k)
            elif v == up_score:
                cur_lo[j] = min(prev_lo[j], k)
                cur_hi[j] = max(prev_hi[j], k)
            else:
                cur_lo[j] = min(cur_lo[j - 1], k)
                cur_hi[j] = max(cur_hi[j - 1], k)
            if v > best.score:
                best = LocalHit(v, i, j)
                best_lo = int(cur_lo[j])
                best_hi = int(cur_hi[j])
        prev, prev_lo, prev_hi = cur, cur_lo, cur_hi
    if best.score == 0:
        return DivergenceHit(best, 0, 0)
    end_diag = best.j - best.i
    return DivergenceHit(best, sup=best_hi - end_diag, inf=end_diag - best_lo)


@dataclass(frozen=True)
class BandedResult:
    """Banded retrieval output with its memory accounting."""

    alignment: Alignment
    band_lo: int
    band_hi: int
    memory_cells: int

    @property
    def band_width(self) -> int:
        return self.band_hi - self.band_lo + 1


def banded_global_align(
    s: str,
    t: str,
    band_lo: int,
    band_hi: int,
    scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
) -> BandedResult:
    """Exact global alignment restricted to diagonals ``j - i`` in
    ``[band_lo, band_hi]``.

    Stores only the band (``(m + 1) x width`` cells plus pointers) —
    the "user-restricted memory space" of the title.  Raises
    ``ValueError`` when the band cannot connect the origin to the
    corner (it must contain diagonal 0 or be reachable through gaps;
    concretely: ``band_lo <= n - m <= band_hi`` and ``band_lo <= 0``,
    ``band_hi >= 0`` are required for a global path to exist).
    """
    s = s.upper()
    t = t.upper()
    s_codes = encode(s)
    t_codes = encode(t)
    m, n = len(s_codes), len(t_codes)
    if band_lo > band_hi:
        raise ValueError(f"empty band [{band_lo}, {band_hi}]")
    if not (band_lo <= 0 <= band_hi) or not (band_lo <= n - m <= band_hi):
        raise ValueError(
            f"band [{band_lo}, {band_hi}] cannot connect (0,0) to ({m},{n})"
        )
    width = band_hi - band_lo + 1
    gap = scheme.gap
    # D[i][w] with w = (j - i) - band_lo in [0, width).
    D = np.full((m + 1, width), _NEG, dtype=np.int64)
    P = np.zeros((m + 1, width), dtype=np.uint8)  # 1 diag, 2 up, 4 left

    def w_of(i: int, j: int) -> int:
        return (j - i) - band_lo

    for j in range(0, min(n, band_hi) + 1):
        D[0, w_of(0, j)] = gap * j
        if j:
            P[0, w_of(0, j)] = 4
    for i in range(1, m + 1):
        j_lo = max(0, i + band_lo)
        j_hi = min(n, i + band_hi)
        for j in range(j_lo, j_hi + 1):
            w = w_of(i, j)
            if j == 0:
                D[i, w] = gap * i
                P[i, w] = 2
                continue
            cand_diag = (
                D[i - 1, w] + scheme.pair(int(s_codes[i - 1]), int(t_codes[j - 1]))
                if 0 <= w < width
                else _NEG
            )
            # up: cell (i-1, j) has w+1; left: cell (i, j-1) has w-1.
            cand_up = D[i - 1, w + 1] + gap if w + 1 < width else _NEG
            cand_left = D[i, w - 1] + gap if w - 1 >= 0 else _NEG
            v = max(cand_diag, cand_up, cand_left)
            D[i, w] = v
            if v == cand_diag:
                P[i, w] = 1
            elif v == cand_up:
                P[i, w] = 2
            else:
                P[i, w] = 4
    end_w = w_of(m, n)
    score = int(D[m, end_w])
    # Traceback within the band.
    i, j = m, n
    s_frag: list[str] = []
    t_frag: list[str] = []
    while i > 0 or j > 0:
        ptr = int(P[i, w_of(i, j)])
        if ptr == 1:
            s_frag.append(s[i - 1])
            t_frag.append(t[j - 1])
            i, j = i - 1, j - 1
        elif ptr == 2:
            s_frag.append(s[i - 1])
            t_frag.append(GAP)
            i -= 1
        elif ptr == 4:
            s_frag.append(GAP)
            t_frag.append(t[j - 1])
            j -= 1
        else:  # pragma: no cover - band guaranteed connected
            raise RuntimeError(f"banded traceback stuck at ({i}, {j})")
    alignment = Alignment(
        s_aligned="".join(reversed(s_frag)),
        t_aligned="".join(reversed(t_frag)),
        score=score,
    )
    return BandedResult(
        alignment=alignment,
        band_lo=band_lo,
        band_hi=band_hi,
        memory_cells=int(D.size),
    )


def local_align_banded(
    s: str,
    t: str,
    scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
) -> tuple[Alignment, BandedResult, DivergenceHit]:
    """Full Z-align-style retrieval: divergences -> banded traceback.

    1. Forward locate with divergence tracking -> end + band.
    2. Reverse locate -> start of an optimal alignment.
    3. Banded global alignment of the bracketed region, band taken
       from the measured divergences (relative to the region's corner
       diagonal), widened to include the region's own corner diagonal.

    The returned alignment's audited score equals the Smith-Waterman
    optimum; the banded matrix typically holds a small fraction of the
    full region (reported via ``BandedResult.memory_cells``).
    """
    s = s.upper()
    t = t.upper()
    forward = locate_with_divergence(s, t, scheme)
    if forward.hit.score <= 0:
        empty = Alignment("", "", 0)
        return empty, BandedResult(empty, 0, 0, 0), forward
    i_end, j_end = forward.hit.i, forward.hit.j
    reverse = sw_locate_best(s[:i_end][::-1], t[:j_end][::-1], scheme)
    a = i_end - reverse.i
    b = j_end - reverse.j
    sub_s = s[a:i_end]
    sub_t = t[b:j_end]
    # The measured envelope is in absolute diagonals (j - i); shift to
    # the subproblem's coordinates where the path runs corner to
    # corner.  Widen to satisfy the band-connectivity requirements.
    end_diag = j_end - i_end
    lo = (end_diag - forward.inf) - (b - a)
    hi = (end_diag + forward.sup) - (b - a)
    corner = len(sub_t) - len(sub_s)
    lo = min(lo, 0, corner)
    hi = max(hi, 0, corner)
    # The measured envelope belongs to the *forward* best path; when
    # several optima exist the reverse pass may bracket a different
    # one, so widen geometrically until the optimum is inside (at most
    # log attempts, worst case the full region — still exact).
    while True:
        banded = banded_global_align(sub_s, sub_t, lo, hi, scheme)
        if banded.alignment.score == forward.hit.score:
            break
        if lo <= -len(sub_s) and hi >= len(sub_t):
            raise AssertionError(
                "banded retrieval lost the optimum even unbanded: "
                f"{banded.alignment.score} != {forward.hit.score}"
            )
        span = hi - lo + 1
        lo = max(lo - span, -len(sub_s))
        hi = min(hi + span, len(sub_t))
    final = Alignment(
        banded.alignment.s_aligned,
        banded.alignment.t_aligned,
        banded.alignment.score,
        s_start=a,
        t_start=b,
    )
    return final, banded, forward
