"""Near-best (top-K) non-overlapping local alignments.

Section 2.4's reference [6] (Chen & Schmidt) extends the linear-space
machinery from *the* best alignment to a set of best and near-best
non-overlapping alignments — the realistic genomics use-case (a query
gene family hits a chromosome several times).  The paper's
architecture supports this directly: each lane's ``(Bs, Bc)`` readout
is a per-row candidate, so the controller can ship the K best lane
candidates instead of one.

This module implements the exact software version by masked
iteration (Waterman-Eggert style, simplified to span masking):

1. run the full linear-space pipeline -> best alignment + exact span;
2. mask the span in both sequences with side-specific sentinels that
   can never match anything (so no later alignment may reuse those
   positions, and no alignment can profitably cross them);
3. repeat until K alignments are found or scores fall below
   ``min_score``.

Returned alignments are disjoint in *both* sequences, sorted by score
(non-increasing), each validated against the original sequences.
"""

from __future__ import annotations

from typing import Callable

from .local_linear import local_align_linear
from .scoring import DEFAULT_DNA, LinearScoring, SubstitutionMatrix
from .smith_waterman import LocalHit
from .traceback import Alignment

__all__ = ["near_best_alignments", "lane_candidates"]

#: Side-specific mask sentinels: chosen outside every biological
#: alphabet and different from each other, so a masked position can
#: match nothing (not even another masked position).
_MASK_S = "#"
_MASK_T = "%"


def near_best_alignments(
    s: str,
    t: str,
    k: int = 3,
    min_score: int = 1,
    scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
    locate: Callable[..., LocalHit] | None = None,
) -> list[Alignment]:
    """The K best mutually non-overlapping local alignments.

    ``locate`` selects the phase-1/2 kernel exactly as in
    :func:`~repro.align.local_linear.local_align_linear` — pass an
    accelerator's ``locate`` to run each round's sweeps on the
    simulated hardware.  Guarantees: the first alignment is the global
    optimum; scores are non-increasing; spans are pairwise disjoint in
    both ``s`` and ``t``; every alignment validates against the
    *original* sequences.
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    if min_score < 1:
        raise ValueError(f"min_score must be at least 1, got {min_score}")
    if isinstance(scheme, SubstitutionMatrix):
        # Substitution tables score unknown characters 0 by default;
        # make the sentinels strictly unalignable instead.
        scheme = scheme.with_mask_penalty(_MASK_S + _MASK_T)
    s_work = list(s.upper())
    t_work = list(t.upper())
    results: list[Alignment] = []
    for _ in range(k):
        res = local_align_linear("".join(s_work), "".join(t_work), scheme, locate)
        if res.alignment.score < min_score or len(res.alignment) == 0:
            break
        a, e_i, b, e_j = res.span
        results.append(res.alignment)
        for i in range(a, e_i):
            s_work[i] = _MASK_S
        for j in range(b, e_j):
            t_work[j] = _MASK_T
    # Each alignment was retrieved from a masked copy, but its span
    # contains no masked characters (spans are disjoint), so it
    # validates against the originals.
    for aln in results:
        aln.validate(s, t)
    return results


def lane_candidates(lane_bests, k: int = 3) -> list[LocalHit]:
    """The hardware's near-best primitive: top-K lane readouts.

    Takes the per-lane ``(row, Bs, column)`` readouts of one
    accelerator pass (one candidate per query row, each the best cell
    of its row) and returns the K highest as :class:`LocalHit` end
    coordinates, tie-broken by the repo convention.  These are
    *candidate ends*, not full alignments — reference [6]'s phase 1;
    the software phases above turn any of them into alignments.
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    hits = [
        LocalHit(b.score, b.row, b.column)
        for b in lane_bests
        if b.score > 0
    ]
    hits.sort(key=lambda h: (-h.score, h.i, h.j))
    return hits[:k]
