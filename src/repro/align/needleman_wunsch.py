"""Needleman-Wunsch global alignment: full-matrix and linear-space sweeps.

The global recurrence is the substrate of two parts of the paper's
pipeline:

* **Hirschberg's algorithm** (section 2.3, reference [15]) needs the
  *last row* of the global DP matrix of each half, in linear space —
  :func:`nw_last_row`.
* The **anchored reverse/forward passes** that convert the
  accelerator's coordinates into exact alignment endpoints need the
  maximum over *all* cells of a global DP matrix (the best
  end-anchored prefix alignment) — :func:`nw_cells_argmax`.

Both use the same max-plus prefix scan as the local kernel (see
:mod:`repro.align.smith_waterman`), without the zero clamp.  The scan
identity also holds globally: with ``H[0] = cur[0]`` (the row boundary)
and ``H[j] = max(diag_j, up_j)``,

    ``D[i, j] = max_{0 <= k <= j} ( H[k] + (j - k) * gap )``.
"""

from __future__ import annotations

import numpy as np

from .matrix import SimilarityMatrix
from .scoring import DEFAULT_DNA, LinearScoring, SubstitutionMatrix, encode
from .smith_waterman import LocalHit
from .traceback import Alignment

__all__ = ["nw_score", "nw_align", "nw_last_row", "nw_cells_argmax"]


def nw_align(
    s: str, t: str, scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA
) -> Alignment:
    """Optimal global alignment via the full-matrix oracle.

    Quadratic space; used for small inputs, testing, and as the base
    case of Hirschberg's recursion.
    """
    return SimilarityMatrix(s, t, scheme, local=False).best_alignment()


def nw_score(
    s: str, t: str, scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA
) -> int:
    """Optimal global alignment score, in linear space."""
    return int(nw_last_row(encode(s), encode(t), scheme)[-1])


def _nw_sweep(
    s_codes: np.ndarray,
    t_codes: np.ndarray,
    scheme: LinearScoring | SubstitutionMatrix,
    track_argmax: bool,
) -> tuple[np.ndarray, LocalHit | None]:
    """Shared linear-space global sweep.

    Returns the last DP row and, when ``track_argmax`` is set, the
    maximum cell over the whole matrix *excluding row 0 and column 0*
    (boundary cells describe empty alignments; the anchored passes that
    consume this maximum treat "empty" separately).  Tie-break matches
    the repo convention: smallest ``i``, then smallest ``j``.
    """
    m, n = len(s_codes), len(t_codes)
    gap = scheme.gap
    steps = gap * np.arange(0, n + 1, dtype=np.int64)
    prev = steps.copy()  # row 0: 0, g, 2g, ...
    cur = np.empty(n + 1, dtype=np.int64)
    h = np.empty(n + 1, dtype=np.int64)
    best: LocalHit | None = None
    if track_argmax and n > 0:
        best = LocalHit(-(1 << 62), 0, 0)
    for i in range(1, m + 1):
        pair_row = scheme.pair_vector(int(s_codes[i - 1]), t_codes)
        h[0] = gap * i
        np.maximum(prev[:-1] + pair_row, prev[1:] + gap, out=h[1:])
        cur[:] = np.maximum.accumulate(h - steps) + steps
        if best is not None:
            row_best_j = int(np.argmax(cur[1:])) + 1
            row_best = int(cur[row_best_j])
            if row_best > best.score:
                best = LocalHit(row_best, i, row_best_j)
        prev, cur = cur, prev
    return prev.copy(), best


def nw_last_row(
    s_codes: np.ndarray,
    t_codes: np.ndarray,
    scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
) -> np.ndarray:
    """Last row of the global DP matrix, ``O(n)`` space.

    ``result[j] == score of globally aligning all of s with t[:j]``.
    This is the quantity Hirschberg's divide-and-conquer combines from
    the two halves.
    """
    row, _ = _nw_sweep(s_codes, t_codes, scheme, track_argmax=False)
    return row


def nw_cells_argmax(
    s: str | np.ndarray,
    t: str | np.ndarray,
    scheme: LinearScoring | SubstitutionMatrix = DEFAULT_DNA,
) -> LocalHit:
    """Maximum over all interior cells of the global DP matrix.

    ``nw_cells_argmax(s, t).score`` is the best score of an alignment
    that consumes *prefixes* ``s[:i]`` and ``t[:j]`` entirely (an
    end-anchored alignment when applied to reversed suffixes).  Used by
    :mod:`repro.align.local_linear` to turn accelerator coordinates
    into exact alignment spans.  Empty inputs return ``LocalHit(0,0,0)``
    (the empty alignment).
    """
    s_codes = encode(s)
    t_codes = encode(t)
    if len(s_codes) == 0 or len(t_codes) == 0:
        return LocalHit(0, 0, 0)
    _, best = _nw_sweep(s_codes, t_codes, scheme, track_argmax=True)
    assert best is not None
    return best
