"""NCBI-format substitution matrix I/O.

Protein scoring matrices ship as whitespace-formatted text (the NCBI
``BLOSUM62`` file format: ``#`` comments, a header row of residues,
one labelled row per residue).  Reading them makes the repository
interoperable with the standard matrix collections; writing them lets
users export the built-in BLOSUM62 (or any custom
:class:`~repro.align.scoring.SubstitutionMatrix`) for other tools.

The parser is strict where it matters: square shape, symmetric values,
consistent labels — a malformed matrix fails loudly rather than
silently mis-scoring alignments.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

from ..align.scoring import SubstitutionMatrix

__all__ = ["parse_matrix", "read_matrix", "write_matrix"]


def parse_matrix(
    stream: TextIO, gap: int = -8, name: str = "custom"
) -> SubstitutionMatrix:
    """Parse an NCBI-format matrix from an open stream.

    ``gap`` supplies the linear gap penalty (matrix files carry only
    pair scores).  The ``*`` (any) column, when present, is dropped.
    """
    header: list[str] | None = None
    rows: dict[str, list[int]] = {}
    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if header is None:
            if any(len(p) != 1 for p in parts):
                raise ValueError(
                    f"line {lineno}: header must be single-letter residues, got {parts[:4]}"
                )
            header = [p.upper() for p in parts]
            continue
        label = parts[0].upper()
        if len(label) != 1:
            raise ValueError(f"line {lineno}: row label must be one residue, got {label!r}")
        try:
            values = [int(v) for v in parts[1:]]
        except ValueError as exc:
            raise ValueError(f"line {lineno}: non-integer score ({exc})") from None
        if len(values) != len(header):
            raise ValueError(
                f"line {lineno}: row {label} has {len(values)} scores for "
                f"{len(header)} columns"
            )
        rows[label] = values
    if header is None:
        raise ValueError("no header row found")
    missing = [h for h in header if h not in rows]
    if missing:
        raise ValueError(f"rows missing for columns: {missing}")
    # Drop the '*' any-residue column if present.
    keep = [i for i, h in enumerate(header) if h != "*"]
    alphabet = "".join(header[i] for i in keep)
    scores: dict[tuple[str, str], int] = {}
    for a in alphabet:
        for idx in keep:
            b = header[idx]
            value = rows[a][idx]
            mirrored = rows[b][header.index(a)]
            if value != mirrored:
                raise ValueError(
                    f"matrix not symmetric at ({a}, {b}): {value} vs {mirrored}"
                )
            scores[(a, b)] = value
    return SubstitutionMatrix(alphabet, scores, gap=gap, name=name)


def read_matrix(path: str | Path, gap: int = -8) -> SubstitutionMatrix:
    """Read an NCBI-format matrix file."""
    path = Path(path)
    with open(path, "r", encoding="ascii") as fh:
        return parse_matrix(fh, gap=gap, name=path.stem)


def write_matrix(
    matrix: SubstitutionMatrix, path: str | Path | None = None
) -> str:
    """Serialize a matrix in NCBI format; returns the text."""
    alphabet = matrix.alphabet.upper()
    out = io.StringIO()
    out.write(f"# {matrix.name} (gap {matrix.gap}), written by repro\n")
    out.write("   " + "  ".join(alphabet) + "\n")
    for a in alphabet:
        row = " ".join(f"{matrix.pair(a, b):>2}" for b in alphabet)
        out.write(f"{a}  {row}\n")
    text = out.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="ascii")
    return text
