"""Workload I/O: FASTA files, seeded synthetic generators, and the
crash-safe :func:`atomic_write` every on-disk writer shares."""

from .atomic import atomic_write
from .fasta import FastaRecord, parse_fasta, read_fasta, stream_fasta, write_fasta
from .matrices import parse_matrix, read_matrix, write_matrix
from .sam import mapq_from_gap, to_sam
from .generate import (
    PlantedPair,
    adversarial_pairs,
    mutate,
    mutated_pair,
    planted_multi,
    planted_pair,
    random_dna,
    random_protein,
)

__all__ = [
    "atomic_write",
    "FastaRecord",
    "parse_fasta",
    "read_fasta",
    "stream_fasta",
    "write_fasta",
    "random_dna",
    "random_protein",
    "mutate",
    "mutated_pair",
    "PlantedPair",
    "planted_pair",
    "planted_multi",
    "adversarial_pairs",
    "to_sam",
    "mapq_from_gap",
    "parse_matrix",
    "read_matrix",
    "write_matrix",
]
