"""Seeded synthetic workload generators.

The paper evaluates on DNA sequences whose *content* is irrelevant to
performance (every matrix cell is computed regardless) but matters for
correctness.  These generators produce:

* uniform random DNA/protein of a given length (performance
  workloads),
* **mutated pairs** — a sequence and a noisy copy, the realistic
  correctness workload where strong local alignments exist,
* **planted-alignment pairs** — two unrelated sequences sharing one
  implanted common fragment, so tests know roughly where the best
  local alignment must fall,
* adversarial inputs (all-same-letter, alternating, shared-prefix)
  that historically break DP bookkeeping.

Everything takes an explicit ``seed`` and uses a private
``numpy.random.Generator``, so workloads are reproducible across
machines and no generator touches global random state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..align.scoring import DNA_ALPHABET, PROTEIN_ALPHABET

__all__ = [
    "random_dna",
    "random_protein",
    "mutate",
    "mutated_pair",
    "PlantedPair",
    "planted_pair",
    "adversarial_pairs",
]


def _random_seq(length: int, alphabet: str, rng: np.random.Generator) -> str:
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    if length == 0:
        return ""
    codes = rng.integers(0, len(alphabet), size=length)
    return "".join(alphabet[c] for c in codes)


def random_dna(length: int, seed: int = 0) -> str:
    """Uniform random DNA of ``length`` bases."""
    return _random_seq(length, DNA_ALPHABET, np.random.default_rng(seed))


def random_protein(length: int, seed: int = 0) -> str:
    """Uniform random protein of ``length`` residues."""
    return _random_seq(length, PROTEIN_ALPHABET, np.random.default_rng(seed))


def mutate(
    sequence: str,
    rate: float = 0.1,
    indel_fraction: float = 0.3,
    seed: int = 0,
    alphabet: str = DNA_ALPHABET,
) -> str:
    """A noisy copy of ``sequence``.

    Each position independently mutates with probability ``rate``; a
    mutation is an insertion or deletion with probability
    ``indel_fraction`` (split evenly), otherwise a substitution to a
    different letter.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    if not 0.0 <= indel_fraction <= 1.0:
        raise ValueError(f"indel_fraction must be in [0, 1], got {indel_fraction}")
    rng = np.random.default_rng(seed)
    out: list[str] = []
    for ch in sequence:
        if rng.random() >= rate:
            out.append(ch)
            continue
        kind = rng.random()
        if kind < indel_fraction / 2:  # deletion
            continue
        if kind < indel_fraction:  # insertion (keep original too)
            out.append(alphabet[rng.integers(0, len(alphabet))])
            out.append(ch)
            continue
        # substitution to a *different* letter
        choices = [c for c in alphabet if c != ch]
        out.append(choices[rng.integers(0, len(choices))])
    return "".join(out)


def mutated_pair(
    length: int, rate: float = 0.1, seed: int = 0, alphabet: str = DNA_ALPHABET
) -> tuple[str, str]:
    """A random sequence and a mutated copy (correctness workload)."""
    rng = np.random.default_rng(seed)
    s = _random_seq(length, alphabet, rng)
    t = mutate(s, rate=rate, seed=seed + 1, alphabet=alphabet)
    return s, t


@dataclass(frozen=True)
class PlantedPair:
    """Two sequences sharing one implanted fragment.

    ``s_pos``/``t_pos`` are the 0-based offsets of the fragment in
    each sequence; the best local alignment is expected to overlap
    these spans (exactly, when the background is mismatch-rich).
    """

    s: str
    t: str
    fragment: str
    s_pos: int
    t_pos: int


def planted_pair(
    s_len: int,
    t_len: int,
    fragment_len: int,
    seed: int = 0,
    mutation_rate: float = 0.0,
) -> PlantedPair:
    """Unrelated backgrounds with one shared fragment planted in each.

    The fragment copy in ``t`` can optionally be mutated to exercise
    near-exact repeats.  Fragment length must fit in both sequences.
    """
    if fragment_len > min(s_len, t_len):
        raise ValueError(
            f"fragment of {fragment_len} does not fit in {s_len}/{t_len}"
        )
    rng = np.random.default_rng(seed)
    fragment = _random_seq(fragment_len, DNA_ALPHABET, rng)
    s_bg = _random_seq(s_len, DNA_ALPHABET, rng)
    t_bg = _random_seq(t_len, DNA_ALPHABET, rng)
    s_pos = int(rng.integers(0, s_len - fragment_len + 1))
    t_pos = int(rng.integers(0, t_len - fragment_len + 1))
    t_fragment = (
        mutate(fragment, rate=mutation_rate, seed=seed + 7)
        if mutation_rate > 0
        else fragment
    )
    s = s_bg[:s_pos] + fragment + s_bg[s_pos + fragment_len :]
    t = t_bg[:t_pos] + t_fragment + t_bg[t_pos + len(t_fragment) :]
    # Clamp t if the mutated fragment changed length.
    t = t[:t_len] if len(t) > t_len else t
    return PlantedPair(s=s, t=t, fragment=fragment, s_pos=s_pos, t_pos=t_pos)


def planted_multi(
    s_len: int,
    t_len: int,
    fragment_lens: tuple[int, ...] = (40, 30),
    seed: int = 0,
) -> tuple[str, str, list[tuple[str, int, int]]]:
    """Two sequences sharing several disjoint implanted fragments.

    The near-best workload: each fragment appears once in ``s`` and
    once in ``t``.  Fragments are placed in *opposite orders* in the
    two sequences (first fragment early in ``s`` but late in ``t``),
    so no single alignment — which must be monotone in both
    coordinates — can chain two fragments together; each one is a
    separate local optimum.  Returns ``(s, t, plants)`` with
    ``plants`` a list of ``(fragment, s_pos, t_pos)``.
    """
    total = sum(fragment_lens) + 4 * len(fragment_lens)
    if total > min(s_len, t_len):
        raise ValueError(
            f"fragments of total {total} (with spacing) do not fit in {s_len}/{t_len}"
        )
    rng = np.random.default_rng(seed)
    s = list(_random_seq(s_len, DNA_ALPHABET, rng))
    t = list(_random_seq(t_len, DNA_ALPHABET, rng))
    fragments = [_random_seq(length, DNA_ALPHABET, rng) for length in fragment_lens]
    s_positions: list[int] = []
    cursor = 2
    for fragment in fragments:
        s[cursor : cursor + len(fragment)] = fragment
        s_positions.append(cursor)
        cursor += len(fragment) + 4
    t_positions: list[int] = [0] * len(fragments)
    cursor = 2
    for idx in reversed(range(len(fragments))):
        fragment = fragments[idx]
        t[cursor : cursor + len(fragment)] = fragment
        t_positions[idx] = cursor
        cursor += len(fragment) + 4
    plants = [
        (fragment, s_pos, t_pos)
        for fragment, s_pos, t_pos in zip(fragments, s_positions, t_positions)
    ]
    return "".join(s), "".join(t), plants


def adversarial_pairs() -> list[tuple[str, str, str]]:
    """Named inputs that stress DP bookkeeping edge cases.

    Returned as ``(name, s, t)`` triples; used by parametrized tests
    across every implementation (oracle, kernels, emulator, RTL).
    """
    return [
        ("paper_fig1", "ACTTGTCCG", "ATTGTCAGG"),
        ("paper_fig2", "TATGGAC", "TAGTGACT"),
        ("paper_fig5", "ACGC", "ACTA"),
        ("identical", "ACGTACGT", "ACGTACGT"),
        ("disjoint", "AAAA", "GGGG"),
        ("all_same_both", "AAAAAA", "AAAA"),
        ("single_vs_single_match", "A", "A"),
        ("single_vs_single_miss", "A", "C"),
        ("alternating", "ACACACACAC", "CACACACA"),
        ("prefix", "ACGTACGTAA", "ACGT"),
        ("suffix", "TTACGT", "ACGT"),
        ("t_longer", "ACG", "TTTTACGTTTT"),
        ("s_longer", "TTTTACGTTTT", "ACG"),
        ("repeat_rich", "ATATATATGCGCGCGC", "TATATATACGCGCGCG"),
        ("late_best", "GGGGGGACGT", "TTTTTTACGT"),
        ("homopolymer_vs_mixed", "AAAAAAAAAAAA", "AAGAAGAAGAAG"),
        ("period_phase_shift", "ACGACGACGACG", "CGACGACGACGA"),
        ("palindrome", "ACGTTGCA", "ACGTTGCA"[::-1]),
        ("single_long", "A", "ACACACACACACACACAC"),
        ("two_islands", "ACGTTTTTGGCC", "ACGAAAAAGGCC"),
        ("gap_ladder", "ACGT", "AXCXGXTX".replace("X", "T")),
    ]
