"""Crash-safe file replacement shared by every on-disk writer.

A plain ``write_text``/``write_bytes`` has two windows where a crash
(or a full disk) leaves garbage behind: mid-write the file holds a
prefix of the new content, and even after the write returns the bytes
may still sit in the page cache.  Every writer in this repo that
persists something another process will read — index files, metrics
snapshots, cluster manifests, chaos event logs, ingest manifests —
routes through :func:`atomic_write` instead, which follows the
standard journaling discipline:

1. write the full content to a temp file *in the same directory*
   (same filesystem, so the rename below is atomic);
2. ``fsync`` the temp file, so the bytes are durable before the name
   is;
3. ``os.replace`` the temp file onto the target — readers see either
   the complete old file or the complete new file, never a prefix;
4. ``fsync`` the directory, so the rename itself survives a crash.

A failure at any step leaves the previous file intact; the temp file
may survive (suffixed ``.tmp``) and is harmless — recovery code
ignores and removes them.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["atomic_write"]

#: Suffix used for the not-yet-renamed temp file.  Recovery scanners
#: (and humans) can recognise and delete leftovers after a crash.
TMP_SUFFIX = ".tmp"


def atomic_write(path: str | Path, data: bytes | str, fsync: bool = True) -> Path:
    """Atomically replace ``path`` with ``data``; returns the path.

    ``data`` may be ``bytes`` or ``str`` (encoded UTF-8).  With
    ``fsync=True`` (the default) the content and the rename are both
    durable when this returns; ``fsync=False`` keeps the atomic
    visibility guarantee (readers never see a torn file) but lets the
    OS schedule the flush — appropriate for throwaway artifacts like
    periodic metrics snapshots where losing the last seconds on a
    power cut is acceptable.
    """
    target = Path(path)
    payload = data.encode("utf-8") if isinstance(data, str) else bytes(data)
    tmp = target.with_name(target.name + TMP_SUFFIX)
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, payload)
        if fsync:
            os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, target)
    if fsync:
        _fsync_dir(target.parent)
    return target


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry (rename durability); best-effort on
    platforms that refuse to open directories."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
