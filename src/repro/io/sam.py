"""SAM output for mapping results.

The de-facto interchange format for read placements; emitting it makes
:mod:`repro.mapping` a drop-in data producer for downstream genomics
tooling (samtools, IGV).  Only the subset the mapper produces is
written: header (``@HD``, ``@SQ``, ``@PG``), one alignment line per
read with flag 0/16 (strand) or 4 (unmapped), 1-based ``POS``, a MAPQ
derived from the score margin, and the CIGAR from the actual
alignment.
"""

from __future__ import annotations

from typing import Iterable

from ..mapping import MappedRead

__all__ = ["mapq_from_gap", "to_sam"]

#: SAM flag bits used here.
FLAG_UNMAPPED = 4
FLAG_REVERSE = 16


def mapq_from_gap(score_gap: int, cap: int = 60) -> int:
    """Mapping quality from the best-vs-second score margin.

    The standard semantics (MAPQ = -10 log10 P(misplaced)) need a
    probability model; the universal engineering approximation scales
    the score margin and caps at 60.  A zero margin (perfect repeat)
    maps to 0, matching the convention that MAPQ 0 = ambiguous.
    """
    if score_gap <= 0:
        return 0
    return min(cap, 3 * score_gap)


def to_sam(
    reads: Iterable[MappedRead],
    reference_name: str = "ref",
    reference_length: int = 0,
    program: str = "repro-map",
) -> str:
    """Serialize mapped reads as SAM text.

    ``reference_length`` belongs in the ``@SQ`` header; pass the real
    length (0 is tolerated but non-conformant, flagged in tests).
    """
    lines = [
        "@HD\tVN:1.6\tSO:unknown",
        f"@SQ\tSN:{reference_name}\tLN:{reference_length}",
        f"@PG\tID:{program}\tPN:{program}",
    ]
    for read in reads:
        if not read.mapped:
            lines.append(
                "\t".join(
                    (
                        read.name or "*",
                        str(FLAG_UNMAPPED),
                        "*",
                        "0",
                        "0",
                        "*",
                        "*",
                        "0",
                        "0",
                        "*",
                        "*",
                    )
                )
            )
            continue
        flag = FLAG_REVERSE if read.strand == "-" else 0
        cigar = read.alignment.cigar() if read.alignment is not None else "*"
        seq = read.alignment.s_slice if read.alignment is not None else "*"
        lines.append(
            "\t".join(
                (
                    read.name or "*",
                    str(flag),
                    reference_name,
                    str(read.position + 1),  # SAM POS is 1-based
                    str(mapq_from_gap(read.mapq_gap)),
                    cigar,
                    "*",
                    "0",
                    "0",
                    seq,
                    "*",
                    f"AS:i:{read.score}",
                )
            )
        )
    return "\n".join(lines) + "\n"
