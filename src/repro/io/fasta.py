"""Minimal FASTA reader/writer.

The paper's workloads are "a query sequence of size 100 BP ... compared
with a database of size 10 MBP"; real inputs arrive as FASTA.  This is
a dependency-free parser good enough for the examples and benchmark
harness: it handles multi-record files, wrapped lines, comments (``;``)
and blank lines, validates characters against an optional alphabet,
and streams records so a multi-megabase database never needs a second
copy in memory.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, TextIO

__all__ = ["FastaRecord", "read_fasta", "parse_fasta", "stream_fasta", "write_fasta"]


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA record: ``>header`` plus the concatenated sequence."""

    header: str
    sequence: str

    @property
    def identifier(self) -> str:
        """First whitespace-delimited token of the header."""
        return self.header.split()[0] if self.header.split() else ""

    def __len__(self) -> int:
        return len(self.sequence)


def _logical_lines(stream: TextIO) -> Iterator[str]:
    """Iterate lines under any newline convention (LF, CRLF, bare CR).

    A stream opened through :func:`open` already translates newlines,
    but :func:`parse_fasta` accepts arbitrary text streams (StringIO,
    sockets, pipes) where ``\\r\\n`` and classic-Mac ``\\r`` endings
    arrive verbatim — without this, a bare-CR file would collapse into
    one giant "line" and the header would swallow the sequence.
    """
    for raw in stream:
        yield from raw.replace("\r\n", "\n").replace("\r", "\n").split("\n")


def parse_fasta(stream: TextIO, alphabet: str | None = None) -> Iterator[FastaRecord]:
    """Yield records from an open FASTA stream.

    ``alphabet``, when given, restricts sequence characters (case-
    insensitive); a violation raises ``ValueError`` naming the record
    and offending character.  Text before the first ``>`` that is not
    a comment or blank line is an error, and so is a final record with
    a header but no sequence data — that is the signature of a file
    truncated mid-write (a torn ``>header`` line with the sequence
    lost), and silently yielding an empty record would let a torn
    database into an index.  CRLF and bare-CR line endings are
    accepted on any stream, not just ones opened in text mode.
    """
    allowed = set(alphabet.upper()) if alphabet is not None else None
    header: str | None = None
    chunks: list[str] = []

    def emit() -> FastaRecord:
        seq = "".join(chunks).upper()
        if allowed is not None:
            bad = set(seq) - allowed
            if bad:
                raise ValueError(
                    f"record {header!r}: characters {sorted(bad)} outside "
                    f"alphabet {alphabet!r}"
                )
        return FastaRecord(header=header or "", sequence=seq)

    for raw in _logical_lines(stream):
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        if line.startswith(">"):
            if header is not None:
                yield emit()
            header = line[1:].strip()
            chunks = []
        else:
            if header is None:
                raise ValueError(f"sequence data before any '>' header: {line[:40]!r}")
            chunks.append(line)
    if header is not None:
        if not chunks:
            raise ValueError(
                f"truncated FASTA: final record {header!r} has a header but no "
                "sequence lines"
            )
        yield emit()


def read_fasta(path: str | Path, alphabet: str | None = None) -> list[FastaRecord]:
    """Read all records of a FASTA file."""
    with open(path, "r", encoding="ascii") as fh:
        return list(parse_fasta(fh, alphabet))


def stream_fasta(path: str | Path, alphabet: str | None = None) -> Iterator[FastaRecord]:
    """Yield records of a FASTA file one at a time.

    Unlike :func:`read_fasta` this never materializes the whole file's
    record list, so the service-layer index builder can encode a
    multi-megabase database shard by shard with only one record's text
    alive at a time.  CRLF/CR files parse identically to LF ones, and
    a file truncated after a ``>header`` line raises ``ValueError``
    rather than yielding a garbage empty record.
    """
    with open(path, "r", encoding="ascii") as fh:
        yield from parse_fasta(fh, alphabet)


def write_fasta(
    records: Iterable[FastaRecord] | Iterable[tuple[str, str]],
    path: str | Path | None = None,
    width: int = 70,
) -> str:
    """Write records as FASTA; returns the text (and writes ``path``).

    Accepts :class:`FastaRecord` objects or plain ``(header,
    sequence)`` tuples.  Lines are wrapped at ``width`` characters,
    the conventional 70.
    """
    if width < 1:
        raise ValueError(f"line width must be positive, got {width}")
    out = io.StringIO()
    for rec in records:
        if isinstance(rec, FastaRecord):
            header, seq = rec.header, rec.sequence
        else:
            header, seq = rec
        out.write(f">{header}\n")
        for off in range(0, len(seq), width):
            out.write(seq[off : off + width] + "\n")
    text = out.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="ascii")
    return text
