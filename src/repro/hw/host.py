"""Host CPU model — the software side of every speedup in the paper.

Speedups in Table 1 and section 6 are always "FPGA versus an optimized
software implementation on some host".  The host model captures a
named CPU together with its measured Smith-Waterman throughput in
CUPS, so speedup predictions are explicit about their baseline (the
paper's own fairness rule: "Only the CPU time must be taken in
account... The software must do the same work as the FPGA").

:data:`PAPER_HOST` is the paper's Pentium 4 3 GHz: 1e9 cells in
~207 s -> 4.83 MCUPS, derived from the reported 246.9x speedup and
the "more than 3 minutes" software time.  :func:`measure_host` times
this machine's own NumPy baseline so measured-vs-modeled comparisons
in EXPERIMENTS.md use a real number.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = [
    "HostCPU",
    "PAPER_HOST",
    "DEC_ALPHA_150",
    "PENTIUM_III_1G",
    "PENTIUM_4_1_6G",
    "measure_host",
]


@dataclass(frozen=True)
class HostCPU:
    """A named host with a calibrated software alignment throughput.

    ``sw_cups`` is cell updates per second for the *score-and-
    coordinates only* computation (the work the FPGA does — no
    traceback, no I/O), the like-for-like baseline the paper insists
    on.
    """

    name: str
    clock_ghz: float
    sw_cups: float

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0 or self.sw_cups <= 0:
            raise ValueError(f"{self.name}: clock and throughput must be positive")

    def seconds_for_cells(self, cells: int) -> float:
        """Predicted software wall-clock for ``cells`` matrix cells."""
        if cells < 0:
            raise ValueError("cell count cannot be negative")
        return cells / self.sw_cups

    def speedup_against(self, accelerator_seconds: float, cells: int) -> float:
        """Speedup of an accelerator run over this host."""
        if accelerator_seconds <= 0:
            raise ValueError("accelerator time must be positive")
        return self.seconds_for_cells(cells) / accelerator_seconds


#: Section 6 baseline: optimized C on a Pentium 4 3 GHz, 512 MB.
#: 4.83 MCUPS = 1e9 cells / 207.1 s (back-computed; see module docs).
PAPER_HOST = HostCPU(name="Pentium 4 3 GHz", clock_ghz=3.0, sw_cups=4.83e6)

#: Table 1 hosts (throughputs back-computed from each row's reported
#: speedup and the corresponding design's throughput — see
#: :mod:`repro.hw.catalog` for the derivations).
DEC_ALPHA_150 = HostCPU(name="DEC Alpha 150 MHz", clock_ghz=0.15, sw_cups=3.75e5)
PENTIUM_III_1G = HostCPU(name="Pentium III 1 GHz", clock_ghz=1.0, sw_cups=11.7e6)
PENTIUM_4_1_6G = HostCPU(name="Pentium 4 1.6 GHz", clock_ghz=1.6, sw_cups=8.2e6)


def measure_host(cells_target: int = 4_000_000, name: str = "this machine") -> HostCPU:
    """Measure this machine's software locate throughput.

    Times :func:`repro.baselines.software.locate_numpy` on a synthetic
    pair sized to roughly ``cells_target`` cells and returns a
    :class:`HostCPU` with the measured CUPS.  Used by the E1 benchmark
    so the "software side" of the reproduced speedup is a genuine
    measurement, not a constant.
    """
    from ..baselines.software import locate_numpy
    from ..io.generate import random_dna

    m = 100
    n = max(1, cells_target // m)
    s = random_dna(m, seed=17)
    t = random_dna(n, seed=23)
    start = time.perf_counter()
    locate_numpy(s, t)
    elapsed = time.perf_counter() - start
    cups = (m * n) / max(elapsed, 1e-9)
    return HostCPU(name=name, clock_ghz=1.0, sw_cups=cups)
