"""Board model: FPGA device + on-board SRAM + host bus.

The unit of deployment in the paper — the accelerator object owns one
of these and charges every host interaction against it: shipping the
query and database down once, and the three-word result back up.  The
E1 benchmark uses the accounting to reproduce the paper's section 6
argument that transfers are milliseconds against a sub-second compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .bus import PCI_32_33, HostBus
from .device import XC2VP70, FPGADevice
from .sram import BoardSRAM

__all__ = ["Board", "TransferLog", "prototype_board"]


@dataclass
class TransferLog:
    """Accumulated host-board traffic for one comparison."""

    bytes_down: int = 0  # host -> board (sequences)
    bytes_up: int = 0  # board -> host (score + coordinates)
    transfers: int = 0

    def reset(self) -> None:
        self.bytes_down = 0
        self.bytes_up = 0
        self.transfers = 0


@dataclass
class Board:
    """One FPGA board as the host sees it."""

    device: FPGADevice = XC2VP70
    sram: BoardSRAM = field(default_factory=BoardSRAM)
    bus: HostBus = PCI_32_33
    log: TransferLog = field(default_factory=TransferLog)

    def download(self, n_bytes: int) -> float:
        """Send ``n_bytes`` host -> board; returns modeled seconds."""
        self.log.bytes_down += n_bytes
        self.log.transfers += 1
        return self.bus.transfer_seconds(n_bytes)

    def upload(self, n_bytes: int) -> float:
        """Send ``n_bytes`` board -> host; returns modeled seconds."""
        self.log.bytes_up += n_bytes
        self.log.transfers += 1
        return self.bus.transfer_seconds(n_bytes)

    def check_database_fits(self, n_bases: int, partitioned: bool) -> None:
        """Raise if the database segment cannot live in board SRAM.

        The paper's design streams the database from on-board SRAM, so
        a segment that does not fit must be split by the caller (with
        column-boundary state the prototype does not implement); we
        surface that limit instead of silently mismodelling it.
        """
        if not self.sram.fits(n_bases, partitioned):
            raise ValueError(
                f"database segment of {n_bases} bases does not fit board SRAM "
                f"({self.sram.capacity_bytes} bytes"
                f"{' incl. boundary row' if partitioned else ''}); "
                f"max segment is {self.sram.max_segment(partitioned)} bases"
            )


def prototype_board(sram_mib: int = 8) -> Board:
    """The paper's prototype: xc2vp70 + several-MB SRAM + PCI 32/33."""
    return Board(
        device=XC2VP70,
        sram=BoardSRAM(capacity_bytes=sram_mib * 1024 * 1024),
        bus=PCI_32_33,
    )
