"""FPGA device catalog.

Capacity figures for the devices the paper and its related work
synthesize on (section 4, Table 1 and section 6).  Values are the
vendor datasheet totals for the usual prototyping packages; they are
the denominators of the utilization percentages in Table 2, so the
resource model (:mod:`repro.core.resources`) reads its capacities from
here.

Sources: Xilinx Virtex-II Pro (DS083), Virtex-II (DS031) and Virtex-E
(DS022) datasheets.  Each Virtex-family slice carries two 4-input LUTs
and two flip-flops, hence ``flipflops == luts == 2 * slices`` for
every catalog entry.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FPGADevice", "XC2VP70", "XC2V6000", "XCV2000E", "XCV812E", "DEVICES"]


@dataclass(frozen=True)
class FPGADevice:
    """Capacity of one FPGA part.

    ``slices``/``flipflops``/``luts`` are the programmable-logic
    totals; ``iobs`` the user I/O blocks of the reference package;
    ``gclks`` the global clock buffers; ``bram_kbits`` the block-RAM
    capacity (relevant to on-chip boundary-row storage).
    """

    name: str
    family: str
    slices: int
    flipflops: int
    luts: int
    iobs: int
    gclks: int
    bram_kbits: int

    def __post_init__(self) -> None:
        if min(self.slices, self.flipflops, self.luts, self.iobs, self.gclks) <= 0:
            raise ValueError(f"{self.name}: capacities must be positive")

    def utilization(self, used: "ResourceVector") -> dict[str, float]:
        """Fractional utilization of each resource class (0.0-1.0+)."""
        return {
            "slices": used.slices / self.slices,
            "flipflops": used.flipflops / self.flipflops,
            "luts": used.luts / self.luts,
            "iobs": used.iobs / self.iobs,
            "gclks": used.gclks / self.gclks,
            "bram": used.bram_kbits / self.bram_kbits,
        }

    def fits(self, used: "ResourceVector") -> bool:
        """True when every resource class fits on the device."""
        return all(v <= 1.0 for v in self.utilization(used).values())


@dataclass(frozen=True)
class ResourceVector:
    """An amount of FPGA resources (used by a design).

    ``bram_kbits`` covers block-RAM usage (protein substitution
    tables, on-chip boundary rows); zero for the pure-logic DNA
    element of the paper.
    """

    slices: int = 0
    flipflops: int = 0
    luts: int = 0
    iobs: int = 0
    gclks: int = 0
    bram_kbits: int = 0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.slices + other.slices,
            self.flipflops + other.flipflops,
            self.luts + other.luts,
            self.iobs + other.iobs,
            self.gclks + other.gclks,
            self.bram_kbits + other.bram_kbits,
        )

    def scale(self, k: int) -> "ResourceVector":
        """``k`` copies of this resource amount (k instances)."""
        return ResourceVector(
            self.slices * k,
            self.flipflops * k,
            self.luts * k,
            self.iobs * k,
            self.gclks * k,
            self.bram_kbits * k,
        )


#: The paper's prototype device (section 6): Virtex-II Pro 70.
XC2VP70 = FPGADevice(
    name="xc2vp70",
    family="Virtex-II Pro",
    slices=33_088,
    flipflops=66_176,
    luts=66_176,
    iobs=996,
    gclks=16,
    bram_kbits=5_904,
)

#: Device of the affine-gap design [2]/[32] in Table 1.
XC2V6000 = FPGADevice(
    name="xc2v6000",
    family="Virtex-II",
    slices=33_792,
    flipflops=67_584,
    luts=67_584,
    iobs=1_104,
    gclks=16,
    bram_kbits=2_592,
)

#: Device of the multithreaded design [37] in Table 1.
XCV2000E = FPGADevice(
    name="xcv2000e",
    family="Virtex-E",
    slices=19_200,
    flipflops=38_400,
    luts=38_400,
    iobs=804,
    gclks=4,
    bram_kbits=655,
)

#: Device of PROSIDIS [23] in Table 1 ("Xilinx XV" = Virtex-E 812).
XCV812E = FPGADevice(
    name="xcv812e",
    family="Virtex-E EM",
    slices=9_408,
    flipflops=18_816,
    luts=18_816,
    iobs=556,
    gclks=4,
    bram_kbits=1_120,
)

#: Catalog by name, for configuration files and CLI-style lookup.
DEVICES: dict[str, FPGADevice] = {
    d.name: d for d in (XC2VP70, XC2V6000, XCV2000E, XCV812E)
}
