"""Hardware platform substrate: devices, boards, buses, hosts.

Everything here is a *model* of the physical platform the paper
prototypes on — capacity, bandwidth and throughput accounting that the
accelerator simulator charges its runs against (see the substitution
table in DESIGN.md).
"""

from .board import Board, TransferLog, prototype_board
from .bus import PCI_32_33, PCI_64_66, HostBus
from .catalog import TABLE1_ROWS, THIS_PAPER, ArchitectureModel
from .device import DEVICES, XC2V6000, XC2VP70, XCV812E, XCV2000E, FPGADevice
from .device import ResourceVector
from .host import (
    DEC_ALPHA_150,
    PAPER_HOST,
    PENTIUM_4_1_6G,
    PENTIUM_III_1G,
    HostCPU,
    measure_host,
)
from .sram import BoardSRAM

__all__ = [
    "Board",
    "TransferLog",
    "prototype_board",
    "HostBus",
    "PCI_32_33",
    "PCI_64_66",
    "ArchitectureModel",
    "TABLE1_ROWS",
    "THIS_PAPER",
    "FPGADevice",
    "ResourceVector",
    "DEVICES",
    "XC2VP70",
    "XC2V6000",
    "XCV2000E",
    "XCV812E",
    "HostCPU",
    "PAPER_HOST",
    "DEC_ALPHA_150",
    "PENTIUM_III_1G",
    "PENTIUM_4_1_6G",
    "measure_host",
    "BoardSRAM",
]
