"""Host-board bus model (PCI in the paper's era).

Section 3 names the host link as the classic FPGA bottleneck ("the
communication speed is limited by the channel data rate (in many
cases, the PCI)"), and section 6 argues the proposed design sidesteps
it: the sequences go to the board once, and "only a few bytes need to
be transferred to the host, and that can be done in few milliseconds
through the PCI bus".  This model makes that argument quantitative —
the E1 benchmark uses it to show transfer time is negligible against
compute for the accelerator but would dominate for designs that ship
the whole matrix back (the RC-BLAST failure mode of [19]).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HostBus", "PCI_32_33", "PCI_64_66"]


@dataclass(frozen=True)
class HostBus:
    """Bandwidth/latency model of the host-board channel.

    ``bandwidth_bytes_s`` is the sustained unidirectional rate;
    ``latency_s`` the fixed per-transfer setup cost (driver + DMA
    programming), which dominates for the accelerator's three-word
    result messages.
    """

    name: str
    bandwidth_bytes_s: float
    latency_s: float = 10e-6

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_s <= 0:
            raise ValueError("bus bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("bus latency cannot be negative")

    def transfer_seconds(self, n_bytes: int) -> float:
        """Time to move ``n_bytes`` in one transfer."""
        if n_bytes < 0:
            raise ValueError("cannot transfer a negative number of bytes")
        if n_bytes == 0:
            return 0.0
        return self.latency_s + n_bytes / self.bandwidth_bytes_s


#: Plain 32-bit/33 MHz PCI — the paper-era default (133 MB/s peak,
#: ~90 MB/s sustained).
PCI_32_33 = HostBus(name="PCI 32/33", bandwidth_bytes_s=90e6, latency_s=10e-6)

#: 64-bit/66 MHz PCI, the "higher speed slots" of section 4's outlook.
PCI_64_66 = HostBus(name="PCI 64/66", bandwidth_bytes_s=400e6, latency_s=10e-6)
