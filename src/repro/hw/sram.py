"""Board SRAM model.

Section 5: "a large database sequence can be put in the FPGA board
SRAM memory that can handle several megabytes in most modern models".
The SRAM plays two roles in the design:

* it holds the streamed database segment (one byte per base here; the
  real design could pack 2-bit DNA codes, which the model exposes via
  ``bits_per_base``), and
* when the query is partitioned, it holds the **boundary row** of
  scores between chunk passes (figure 7) — the linear-space state that
  replaces the quadratic matrix.

The model does capacity accounting and read-stream timing; it does not
simulate cell-level storage (contents are carried by the simulator's
NumPy arrays).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BoardSRAM"]


@dataclass(frozen=True)
class BoardSRAM:
    """Capacity/bandwidth model of the on-board SRAM.

    ``capacity_bytes`` defaults to 8 MiB ("several megabytes");
    ``words_per_cycle`` is how many database bases the memory can feed
    the array per clock — 1 sustains the systolic stream, which is why
    the architecture never starves.
    """

    capacity_bytes: int = 8 * 1024 * 1024
    words_per_cycle: float = 1.0
    bits_per_base: int = 8

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("SRAM capacity must be positive")
        if self.words_per_cycle <= 0:
            raise ValueError("SRAM must supply at least a fraction of a word per cycle")
        if self.bits_per_base not in (2, 4, 8):
            raise ValueError(f"bits_per_base must be 2, 4 or 8, got {self.bits_per_base}")

    def database_bytes(self, n_bases: int) -> int:
        """Bytes needed to store an ``n_bases`` database segment."""
        return (n_bases * self.bits_per_base + 7) // 8

    def boundary_row_bytes(self, n_bases: int, bytes_per_score: int = 4) -> int:
        """Bytes for the inter-chunk boundary row (figure 7)."""
        return (n_bases + 1) * bytes_per_score

    def fits(self, n_bases: int, partitioned: bool, bytes_per_score: int = 4) -> bool:
        """Can a database segment (plus boundary row if partitioned)
        live on board?"""
        need = self.database_bytes(n_bases)
        if partitioned:
            need += self.boundary_row_bytes(n_bases, bytes_per_score)
        return need <= self.capacity_bytes

    def max_segment(self, partitioned: bool, bytes_per_score: int = 4) -> int:
        """Largest database segment the board can hold at once."""
        if not partitioned:
            return self.capacity_bytes * 8 // self.bits_per_base
        # bases * bits/8 + (bases + 1) * bytes_per_score <= capacity
        per_base = self.bits_per_base / 8 + bytes_per_score
        return int((self.capacity_bytes - bytes_per_score) / per_base)

    def stream_cycles(self, n_bases: int) -> int:
        """Clocks to stream a segment into the array once."""
        return int(-(-n_bases // self.words_per_cycle))
