"""Analytic models of the Table 1 related-work architectures.

Table 1 of the paper compares four published FPGA designs (plus,
implicitly, the paper's own) by device, sequence sizes, splicing
support, speedup, baseline host, and whether an actual alignment is
produced.  We cannot synthesize those boards either, so each row is an
:class:`ArchitectureModel` built from the numbers its own publication
reports (clock, element count, throughput, wall-clock), with derived
quantities — implied host throughput, implied array efficiency —
computed from first principles.  The T1 benchmark regenerates the
table from these models and checks the derived columns are mutually
consistent (ordering of speedups, efficiencies in (0, 1], hosts of the
same CPU agreeing across rows).

Derivations recorded here:

* SAMBA [21]: 128 processors; 3 KBP x 2.1 MBP = 6.3e9 cells; software
  280 min on a DEC Alpha 150 -> 0.375 MCUPS; speedup 83 -> SAMBA
  ~202 s -> 31 MCUPS effective.
* PROSIDIS [23]: 24 BP x 2 MBP; speedup 5.6 over a Pentium III 1 GHz.
* Anish [2] (Table 1 row "[32]"): XC2V6000, affine gaps, 1.39 GCUPS
  reported; speedup 170 over a Pentium 4 1.6 GHz -> host 8.2 MCUPS.
* Yu et al. [37]: XCV2000E, 2 KBP x 64 MBP in 34 s -> 3.85 GCUPS
  effective (their 5.76 GCUPS figure is the peak rate); speedup 330
  over a Pentium III 1 GHz -> host 11.7 MCUPS.
* This paper: xc2vp70, 100 elements at 144.9 MHz (14.49 GCUPS peak);
  10 MBP x 100 BP in ~0.84 s -> 1.19 GCUPS effective; speedup 246.9
  over a Pentium 4 3 GHz -> host 4.83 MCUPS.
"""

from __future__ import annotations

from dataclasses import dataclass

from .host import DEC_ALPHA_150, PAPER_HOST, PENTIUM_4_1_6G, PENTIUM_III_1G, HostCPU

__all__ = ["ArchitectureModel", "TABLE1_ROWS", "THIS_PAPER"]


@dataclass(frozen=True)
class ArchitectureModel:
    """One FPGA sequence-comparison design, as published.

    ``effective_gcups`` is throughput on the row's actual workload
    (wall-clock-derived); ``peak_gcups`` the elements x clock bound
    where the element count and clock are public (else ``None``).
    """

    name: str
    reference: str
    device: str
    query_len: int
    database_len: int
    splicing: bool
    produces_alignment: bool
    reported_speedup: float
    host: HostCPU
    effective_gcups: float
    elements: int | None = None
    clock_mhz: float | None = None

    def __post_init__(self) -> None:
        if self.reported_speedup <= 0 or self.effective_gcups <= 0:
            raise ValueError(f"{self.name}: speedup and throughput must be positive")

    @property
    def cells(self) -> int:
        """Matrix cells of the row's workload."""
        return self.query_len * self.database_len

    @property
    def peak_gcups(self) -> float | None:
        """Elements x clock upper bound, when both are published."""
        if self.elements is None or self.clock_mhz is None:
            return None
        return self.elements * self.clock_mhz * 1e6 / 1e9

    @property
    def efficiency(self) -> float | None:
        """Effective / peak throughput — array utilization."""
        peak = self.peak_gcups
        if peak is None:
            return None
        return self.effective_gcups / peak

    @property
    def fpga_seconds(self) -> float:
        """Wall-clock on the row's workload at the effective rate."""
        return self.cells / (self.effective_gcups * 1e9)

    @property
    def implied_host_cups(self) -> float:
        """Host throughput implied by the reported speedup."""
        return self.effective_gcups * 1e9 / self.reported_speedup

    def host_consistency(self) -> float:
        """Ratio implied-host / catalog-host (1.0 = fully consistent).

        The T1 benchmark asserts this stays within a small band — it
        is the cross-check that the table's columns cohere.
        """
        return self.implied_host_cups / self.host.sw_cups


#: The four related-work rows of Table 1, top to bottom.
TABLE1_ROWS: tuple[ArchitectureModel, ...] = (
    ArchitectureModel(
        name="SAMBA",
        reference="[21] Lavenier 1998",
        device="SAMBA board",
        query_len=3_000,
        database_len=2_100_000,
        splicing=True,
        produces_alignment=False,
        reported_speedup=83.0,
        host=DEC_ALPHA_150,
        effective_gcups=0.0312,  # 6.3e9 cells / 202 s
        elements=128,
        clock_mhz=10.0,
    ),
    ArchitectureModel(
        name="PROSIDIS",
        reference="[23] Marongiu et al. 2003",
        device="xcv812e",
        query_len=24,
        database_len=2_000_000,
        splicing=False,
        produces_alignment=False,
        reported_speedup=5.6,
        host=PENTIUM_III_1G,
        effective_gcups=0.0655,  # 5.6 x 11.7 MCUPS
        elements=24,
        clock_mhz=50.0,
    ),
    ArchitectureModel(
        name="Affine-gap systolic",
        reference="[2]/[32] Anish 2003",
        device="xc2v6000",
        query_len=1_512,
        database_len=4_000_000,
        splicing=True,
        produces_alignment=False,
        reported_speedup=170.0,
        host=PENTIUM_4_1_6G,
        effective_gcups=1.39,
        elements=None,
        clock_mhz=None,
    ),
    ArchitectureModel(
        name="Multithreaded systolic",
        reference="[37] Yu et al. 2003",
        device="xcv2000e",
        query_len=2_048,
        database_len=64_000_000,
        splicing=True,
        produces_alignment=True,
        reported_speedup=330.0,
        host=PENTIUM_III_1G,
        effective_gcups=3.85,  # 1.31e11 cells / 34 s
        elements=None,
        clock_mhz=None,
    ),
)

#: The paper's own design, modelled the same way for the T1 bench's
#: final row (not part of the published table, but the natural
#: comparison the section-6 numbers support).
THIS_PAPER = ArchitectureModel(
    name="This paper",
    reference="Boukerche et al. 2007",
    device="xc2vp70",
    query_len=100,
    database_len=10_000_000,
    splicing=True,
    produces_alignment=False,
    reported_speedup=246.9,
    host=PAPER_HOST,
    effective_gcups=1.192,  # 1e9 cells / 0.839 s
    elements=100,
    clock_mhz=144.9,
)
