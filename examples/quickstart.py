#!/usr/bin/env python3
"""Quickstart: align two DNA sequences with the simulated accelerator.

Runs the paper's full hardware/software co-design on a small pair:

1. the (simulated) FPGA systolic array computes the best local score
   and its matrix coordinates in linear space — forward and reverse
   passes (section 2.3, phases 1-2);
2. the host software anchors the exact span and retrieves the actual
   alignment with Hirschberg's algorithm (phases 3-4);
3. the result is printed with the per-run hardware accounting.

Usage::

    python examples/quickstart.py [query] [database]
"""

import sys

from repro import SWAccelerator, local_align_linear
from repro.analysis.figures import figure2_matrix


def main() -> None:
    query = sys.argv[1] if len(sys.argv) > 1 else "TATGGAC"
    database = sys.argv[2] if len(sys.argv) > 2 else "TAGTGACT"

    print(f"query    : {query}")
    print(f"database : {database}")
    print()

    # The similarity matrix the hardware sweeps without storing
    # (figure 2 of the paper).
    print(figure2_matrix(query, database))
    print()

    # The co-design: the accelerator's locate() plugs into the
    # software retrieval pipeline.
    accelerator = SWAccelerator(elements=100)
    result = local_align_linear(query, database, locate=accelerator.locate)

    print("accelerator output (forward pass):",
          f"score={result.forward_hit.score}",
          f"end=({result.forward_hit.i}, {result.forward_hit.j})")
    print("reverse-pass output:",
          f"score={result.reverse_hit.score}",
          f"end=({result.reverse_hit.i}, {result.reverse_hit.j})")
    a, e_i, b, e_j = result.span
    print(f"alignment span: s[{a + 1}..{e_i}] x t[{b + 1}..{e_j}]")
    print()
    print(result.alignment.pretty())
    print()
    log = accelerator.board.log
    print(f"host <-> board traffic: {log.bytes_down} bytes down, "
          f"{log.bytes_up} bytes up in {log.transfers} transfers")


if __name__ == "__main__":
    main()
