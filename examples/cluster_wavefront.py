#!/usr/bin/env python3
"""Cluster wavefront + Z-align: the parallel software the accelerator
serves (sections 2.4 and 5).

Simulates the figure-3 cluster on a mutated pair, sweeps the
processor count, then runs the four-phase Z-align algorithm and shows
its per-phase time ledger and linear memory footprint — the
"user-restricted memory space" context the paper's title refers to.

Usage::

    python examples/cluster_wavefront.py [length_bp]
"""

import sys

from repro.align.smith_waterman import sw_score
from repro.analysis.figures import figure3_wavefront
from repro.analysis.report import render_kv, render_table
from repro.io.generate import mutated_pair
from repro.parallel.wavefront_cluster import ClusterConfig, WavefrontCluster
from repro.parallel.zalign import zalign


def main() -> None:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    s, t = mutated_pair(length, rate=0.12, seed=7)
    expected = sw_score(s, t)

    print(figure3_wavefront())
    print()

    rows = []
    for processors in (1, 2, 4, 8):
        cfg = ClusterConfig(processors=processors, row_block=64)
        run = WavefrontCluster(cfg).run(s, t)
        assert run.hit.score == expected, "decomposition must stay exact"
        rows.append(
            [
                processors,
                f"{run.makespan_seconds * 1e3:.2f}",
                f"{run.speedup:.2f}",
                len(run.messages),
                f"{run.bytes_communicated:,}",
            ]
        )
    print(
        render_table(
            ["processors", "makespan (ms)", "speedup", "messages", "bytes moved"],
            rows,
            title=f"wavefront cluster on a {length} bp mutated pair (score {expected})",
        )
    )
    print()

    z = zalign(s, t, ClusterConfig(processors=4, row_block=64))
    z.alignment.validate(s, t)
    print(render_kv(
        [(k, f"{v * 1e3:.3f} ms") for k, v in z.phase_seconds.items()]
        + [
            ("alignment score", z.score),
            ("peak node memory", f"{z.peak_node_memory_bytes:,} bytes"),
            ("quadratic matrix would be", f"{len(s) * len(t) * 4:,} bytes"),
        ],
        title="Z-align four-phase run (4 nodes)",
    ))
    print()
    print(z.alignment.pretty()[:800])


if __name__ == "__main__":
    main()
