#!/usr/bin/env python3
"""Database scan: the paper's headline workload at laptop scale.

Generates a synthetic database with a mutated copy of the query
planted in it (the realistic "find the gene" scenario the intro
motivates), then:

* scans it with the simulated accelerator (query fixed in the array,
  database streamed from board SRAM),
* scans it with the optimized software baseline — verifying both find
  the same score at the same coordinates,
* prints the performance model next to the live measurement, scaled
  up to the paper's 10 MBP configuration.

Usage::

    python examples/database_scan.py [db_kbp] [query_bp]
"""

import sys
import time

from repro.analysis.cups import format_cups
from repro.analysis.report import render_kv
from repro.baselines.software import locate_numpy
from repro.core.accelerator import SWAccelerator
from repro.core.timing import PAPER_CLOCK, estimate_run
from repro.hw.host import PAPER_HOST
from repro.io.generate import mutate, random_dna


def main() -> None:
    db_kbp = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    query_bp = int(sys.argv[2]) if len(sys.argv) > 2 else 100

    query = random_dna(query_bp, seed=1)
    background = random_dna(db_kbp * 1000, seed=2)
    planted = mutate(query, rate=0.05, seed=3)
    pos = len(background) // 3
    database = background[:pos] + planted + background[pos + len(planted):]

    print(f"scanning {len(database):,} bp database with a {query_bp} bp query")
    print(f"(a 5%-mutated copy of the query is planted at position {pos:,})")
    print()

    # Software baseline (measured).
    start = time.perf_counter()
    sw_hit = locate_numpy(query, database)
    sw_seconds = time.perf_counter() - start

    # Simulated accelerator (same result, modeled device time).
    accelerator = SWAccelerator(elements=100, clock=PAPER_CLOCK)
    run = accelerator.run(query, database)
    assert run.hit == sw_hit, "hardware and software must agree exactly"

    cells = run.cells
    print(render_kv(
        [
            ("best score", run.hit.score),
            ("end coordinates (i, j)", f"({run.hit.i}, {run.hit.j})"),
            ("hit near the plant?", "yes" if abs(run.hit.j - pos) < 2 * query_bp else "no"),
        ],
        title="result (identical from both engines)",
    ))
    print()
    print(render_kv(
        [
            ("matrix cells", f"{cells:,}"),
            ("software (measured here)", f"{sw_seconds:.3f} s = {format_cups(cells / sw_seconds)}"),
            ("FPGA model (paper clock)", f"{run.device_seconds * 1e3:.2f} ms = {format_cups(cells / run.device_seconds)}"),
            ("bus transfers", f"{run.download_seconds * 1e3:.2f} ms down, {run.upload_seconds * 1e3:.3f} ms up"),
        ],
        title="performance",
    ))
    print()

    # Scale the model to the paper's configuration.
    full = estimate_run(100, 10_000_000, 100, PAPER_CLOCK)
    software_full = PAPER_HOST.seconds_for_cells(full.cells)
    print(render_kv(
        [
            ("FPGA time (modeled)", f"{full.total_seconds:.3f} s"),
            ("software on Pentium 4 3 GHz", f"{software_full:.1f} s"),
            ("speedup", f"{software_full / full.total_seconds:.1f}x (paper: 246.9x)"),
        ],
        title="extrapolated to the paper's 100 BP x 10 MBP workload",
    ))


if __name__ == "__main__":
    main()
