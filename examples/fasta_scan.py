#!/usr/bin/env python3
"""FASTA database scan: the end-user search workflow.

Builds a small synthetic FASTA database (with two records containing
mutated copies of the query), writes it to disk, scans it with the
simulated accelerator, and prints an SSEARCH-style ranked report with
retrieved alignments — the workflow a bioinformatician would run
against the paper's board.

Usage::

    python examples/fasta_scan.py [records] [record_bp]
"""

import sys
import tempfile
from pathlib import Path

from repro.core.accelerator import SWAccelerator
from repro.io.fasta import FastaRecord, read_fasta, write_fasta
from repro.io.generate import mutate, random_dna
from repro.scan import scan_database


def build_database(query: str, n_records: int, record_bp: int) -> list[FastaRecord]:
    records = []
    for i in range(n_records):
        seq = random_dna(record_bp, seed=1000 + i)
        if i in (2, n_records - 2):
            rate = 0.05 if i == 2 else 0.20
            planted = mutate(query, rate=rate, seed=2000 + i)
            pos = record_bp // 4
            seq = seq[:pos] + planted + seq[pos + len(planted):]
            records.append(FastaRecord(f"seq{i} (planted, {rate:.0%} mutated)", seq))
        else:
            records.append(FastaRecord(f"seq{i}", seq))
    return records


def main() -> None:
    n_records = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    record_bp = int(sys.argv[2]) if len(sys.argv) > 2 else 2000
    query = random_dna(80, seed=11)

    with tempfile.TemporaryDirectory() as tmp:
        db_path = Path(tmp) / "database.fasta"
        write_fasta(build_database(query, n_records, record_bp), db_path)
        records = read_fasta(db_path, alphabet="ACGT")
        print(f"database: {db_path.name}, {len(records)} records of ~{record_bp} bp")
        print(f"query   : {len(query)} bp\n")

        accelerator = SWAccelerator(elements=100)
        report = scan_database(
            query, records, locate=accelerator.locate, top=5, retrieve=2
        )
        print(report.render())
        for hit in report.hits:
            if hit.alignment is not None:
                print(f"\n>{hit.record}")
                print(hit.alignment.pretty())


if __name__ == "__main__":
    main()
