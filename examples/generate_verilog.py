#!/usr/bin/env python3
"""Hardware generation: emit the synthesizable Verilog of the design.

Reproduces the paper's implementation flow (section 6: SystemC design
-> simulation -> Forte translation -> Verilog -> ISE synthesis) with
the repository's miniature toolchain:

1. build the figure-6 element and an N-element array as RTL IR;
2. simulate the IR for a few cycles and cross-check against the
   behavioural Python model;
3. emit Verilog-2001, lint it, and write it next to a VCD waveform of
   the run (openable in GTKWave).

Usage::

    python examples/generate_verilog.py [elements] [out_dir]
"""

import sys
from pathlib import Path

from repro.align.scoring import DEFAULT_DNA
from repro.core.systolic import SystolicArray
from repro.core.waveform import record_pass, write_vcd
from repro.core.widths import required_cycle_width, required_score_width
from repro.hdl.builders import build_array_module, build_pe_module
from repro.hdl.simulate import IRSimulator
from repro.hdl.verilog import emit_verilog, lint_verilog


def main() -> None:
    elements = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    out_dir = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("generated")
    out_dir.mkdir(exist_ok=True)

    # Width analysis drives the generated register sizes.
    score_w = required_score_width(elements, 10_000_000, DEFAULT_DNA)
    cycle_w = required_cycle_width(10_000_000, elements)
    print(f"width analysis: score registers {score_w} bits, "
          f"cycle counter {cycle_w} bits (10 MBP stream)")

    # Cross-check generated vs behavioural on a tiny pass.
    query = "ACGTACGT"[:elements].ljust(elements, "A")[:elements]
    db = "ACTAGCTA"
    module = build_array_module(elements, score_width=score_w, cycle_width=cycle_w)
    sim = IRSimulator(module)
    load = {"load_en": 1, "valid_in": 0, "sb_in": 0, "c_in": 0, "cycle": 0}
    for k, ch in enumerate(query, start=1):
        load[f"pe{k}_load_base"] = ord(ch)
    sim.step(load)
    array = SystolicArray(elements)
    array.load_query(query)
    result = array.run_pass(db)
    for cycle in range(1, len(db) + elements):
        vec = {"load_en": 0, "valid_in": 0, "sb_in": 0, "c_in": 0, "cycle": cycle}
        for k in range(1, elements + 1):
            vec[f"pe{k}_load_base"] = 0
        if cycle <= len(db):
            vec["valid_in"] = 1
            vec["sb_in"] = ord(db[cycle - 1])
        sim.step(vec)
    mismatches = sum(
        1
        for k, element in enumerate(array.elements, start=1)
        if (sim.peek(f"pe{k}_bs"), sim.peek(f"pe{k}_bc")) != (element.bs, element.bc)
    )
    print(f"equivalence check vs behavioural model: "
          f"{elements - mismatches}/{elements} lanes bit-exact")
    assert mismatches == 0

    # Emit artifacts.
    pe_text = emit_verilog(build_pe_module(score_width=score_w, cycle_width=cycle_w))
    array_text = emit_verilog(module)
    (out_dir / "sw_pe.v").write_text(pe_text)
    (out_dir / "sw_array.v").write_text(array_text)
    from repro.hdl.testbench import pe_selfcheck_testbench

    _, tb_text = pe_selfcheck_testbench("A", db, score_width=score_w)
    (out_dir / "sw_pe_tb.v").write_text(tb_text)
    vcd = write_vcd(record_pass(query, db), out_dir / "sw_array.vcd")
    print(f"\nwrote {out_dir}/sw_pe.v      ({pe_text.count(chr(10))} lines, "
          f"lint: {lint_verilog(pe_text) or 'clean'})")
    print(f"wrote {out_dir}/sw_array.v   ({array_text.count(chr(10))} lines, "
          f"lint: {lint_verilog(array_text) or 'clean'})")
    print(f"wrote {out_dir}/sw_pe_tb.v   ({tb_text.count(chr(10))} lines; "
          "self-checking, run with iverilog)")
    print(f"wrote {out_dir}/sw_array.vcd ({vcd.count(chr(10))} lines; open in GTKWave)")
    print("\nfirst lines of the element module:")
    print("\n".join(pe_text.splitlines()[:14]))


if __name__ == "__main__":
    main()
