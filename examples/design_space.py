#!/usr/bin/env python3
"""Design-space exploration: the paper's synthesis loop as a model.

Sweeps the element count on the xc2vp70 (and the related-work
devices), printing Table-2-style resource rows, the predicted clock,
ideal throughput, and each device's capacity limit — the quantitative
version of the paper's "there is space to add much more elements"
(figure 8) and of Table 1's device column.

Usage::

    python examples/design_space.py
"""

from repro.analysis.report import render_table
from repro.core.datapath import critical_path, netlist_summary, pe_resource_counts
from repro.core.resources import PROTOTYPE_MODEL, ResourceModel
from repro.core.timing import ClockModel, estimate_run
from repro.hw.device import DEVICES


def main() -> None:
    # Per-element implementation data (figure 6's datapath).
    path, delay = critical_path()
    counts = pe_resource_counts()
    print("element datapath:")
    print(f"  critical path : {' -> '.join(path)}")
    print(f"  delay         : {delay:.2f} ns ({1e3 / delay:.1f} MHz gate-level bound)")
    print(f"  hand-mapped   : {counts['luts']} LUTs, {counts['ffs']} FFs")
    print(f"  calibrated    : {PROTOTYPE_MODEL.per_element.luts} LUTs, "
          f"{PROTOTYPE_MODEL.per_element.flipflops} FFs (Table 2 / Forte flow)")
    print()

    rows = []
    for n in (25, 50, 100, 125, PROTOTYPE_MODEL.max_elements()):
        t2 = PROTOTYPE_MODEL.table2(n)
        f = PROTOTYPE_MODEL.frequency_mhz(n)
        timing = estimate_run(n, 1_000_000, n, ClockModel(frequency_mhz=f))
        rows.append(
            [
                n,
                f"{t2['slices_pct']}%",
                f"{t2['flipflops_pct']}%",
                f"{t2['luts_pct']}%",
                t2["frequency_mhz"],
                round(timing.gcups, 2),
            ]
        )
    print(
        render_table(
            ["elements", "slices", "FFs", "LUTs", "clock (MHz)", "ideal GCUPS"],
            rows,
            title="xc2vp70 design space (paper prototype = 100 elements)",
        )
    )
    print()

    rows = []
    for name, device in sorted(DEVICES.items()):
        model = ResourceModel(device=device)
        n_max = model.max_elements()
        rows.append(
            [
                name,
                device.family,
                f"{device.slices:,}",
                n_max,
                round(model.frequency_mhz(n_max), 1),
                round(n_max * model.frequency_mhz(n_max) * 1e6 / 1e9, 1),
            ]
        )
    print(
        render_table(
            ["device", "family", "slices", "max elements", "clock (MHz)", "peak GCUPS"],
            rows,
            title="capacity across the catalog (paper element cost)",
        )
    )
    print()
    print(netlist_summary(100))


if __name__ == "__main__":
    main()
