#!/usr/bin/env python3
"""Read mapping: the intro's motivating workload, end to end.

Simulates a tiny sequencing experiment: draws reads from a synthetic
reference (both strands, with sequencing errors), maps them back with
exact semi-global alignment — the DP mode the paper's array computes
natively with the whole read held in the elements — and reports
accuracy against the known truth.

Usage::

    python examples/read_mapping.py [reference_bp] [n_reads] [read_bp]
"""

import sys

import numpy as np

from repro.analysis.report import render_kv, render_table
from repro.io.generate import mutate, random_dna
from repro.mapping import map_reads, reverse_complement


def main() -> None:
    ref_bp = int(sys.argv[1]) if len(sys.argv) > 1 else 5_000
    n_reads = int(sys.argv[2]) if len(sys.argv) > 2 else 25
    read_bp = int(sys.argv[3]) if len(sys.argv) > 3 else 60

    reference = random_dna(ref_bp, seed=42)
    rng = np.random.default_rng(43)
    reads = []
    truth = []
    for k in range(n_reads):
        pos = int(rng.integers(0, ref_bp - read_bp))
        raw = reference[pos : pos + read_bp]
        strand = "+" if rng.random() < 0.5 else "-"
        oriented = raw if strand == "+" else reverse_complement(raw)
        noisy = mutate(oriented, rate=0.05, seed=100 + k)
        reads.append((f"read{k:02d}", noisy))
        truth.append((pos, strand))

    report = map_reads(reads, reference)

    rows = []
    correct = 0
    for read, (true_pos, true_strand) in zip(report.reads, truth):
        ok = (
            read.mapped
            and read.strand == true_strand
            and abs(read.position - true_pos) <= 5
        )
        correct += ok
        rows.append(
            [
                read.name,
                read.position if read.mapped else "-",
                read.strand if read.mapped else "-",
                read.score if read.mapped else "-",
                true_pos,
                true_strand,
                "ok" if ok else ("MISS" if read.mapped else "unmapped"),
            ]
        )
    print(
        render_table(
            ["read", "mapped pos", "strand", "score", "true pos", "true strand", "verdict"],
            rows[:15],
            title=f"read mapping: {n_reads} x {read_bp} bp reads, 5% error, "
            f"{ref_bp:,} bp reference",
        )
    )
    if n_reads > 15:
        print(f"  ... {n_reads - 15} more reads")
    print()
    print(render_kv(
        [
            ("mapping rate", f"{report.mapping_rate:.0%}"),
            ("position+strand accuracy", f"{correct / n_reads:.0%}"),
        ],
    ))
    print()
    best = max((r for r in report.reads if r.mapped), key=lambda r: r.score)
    print(f"best-scoring read ({best.name}):")
    print(best.alignment.pretty())


if __name__ == "__main__":
    main()
